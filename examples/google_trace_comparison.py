"""Compare SRPTMS+C against the paper's baselines on the synthetic Google trace.

Run with::

    python examples/google_trace_comparison.py [scale]

This is a scaled-down version of the paper's Figure 4/5/6 evaluation: the
synthetic Google-like trace is replayed against SRPTMS+C, SCA and Mantri (and
a couple of extra reference policies), and the script prints the Figure 6
comparison table plus the small-job CDF of Figure 4.
"""

from __future__ import annotations

import sys

from repro.analysis.cdf import SMALL_JOB_GRID, cdf_comparison, render_cdf_table
from repro.analysis.comparison import ComparisonTable
from repro.experiments import ExperimentConfig, run_scheduler_comparison


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    config = ExperimentConfig(scale=scale, seeds=(0,))
    print(
        f"simulating {config.trace_config().effective_num_jobs} jobs on "
        f"{config.machines} machines (scale={scale:g}) ...\n"
    )

    results = run_scheduler_comparison(config, include_extra=True)

    table = ComparisonTable.from_results(results)
    print(table.render(baseline="Mantri"))
    improvement = table.improvement_over("SRPTMS+C", "Mantri")
    print(f"\nSRPTMS+C vs Mantri (unweighted): {improvement:+.1f}%  "
          f"[paper reports ~25% at full scale]\n")

    curves = cdf_comparison(
        {name: results[name] for name in ("SRPTMS+C", "SCA", "Mantri")},
        SMALL_JOB_GRID,
    )
    print(render_cdf_table(curves, SMALL_JOB_GRID,
                           title="Small-job flowtime CDF (Figure 4 analogue)"))


if __name__ == "__main__":
    main()
