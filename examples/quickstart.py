"""Quickstart: simulate SRPTMS+C on a small synthetic MapReduce workload.

Run with::

    python examples/quickstart.py

It builds a compact online workload (Poisson arrivals, log-normal task
durations), schedules it with the paper's SRPTMS+C algorithm and with plain
FIFO, and prints the headline flowtime metrics of both.
"""

from __future__ import annotations

from repro import FIFOScheduler, SRPTMSCScheduler, run_simulation
from repro.workload import poisson_trace


def main() -> None:
    trace = poisson_trace(
        num_jobs=200,
        arrival_rate=0.4,          # jobs per second
        mean_tasks_per_job=8,
        mean_duration=12.0,        # seconds per task
        cv=0.6,                    # within-job duration variability (stragglers)
        seed=42,
    )
    print(f"workload: {trace}")
    print(f"offered load on 60 machines: {trace.expected_load(60):.2f}\n")

    for scheduler in (SRPTMSCScheduler(epsilon=0.6, r=3.0), FIFOScheduler()):
        result = run_simulation(trace, scheduler, num_machines=60, seed=0)
        print(f"{result.scheduler_name}")
        print(f"  mean flowtime           : {result.mean_flowtime:8.1f} s")
        print(f"  weighted mean flowtime  : {result.weighted_mean_flowtime:8.1f} s")
        print(f"  jobs done within 60 s   : {result.fraction_completed_within(60):8.1%}")
        print(f"  copies per task (clones): {result.cloning_ratio:8.2f}")
        print(f"  redundant work fraction : {result.redundant_work_fraction:8.1%}\n")


if __name__ == "__main__":
    main()
