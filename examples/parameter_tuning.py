"""Tune SRPTMS+C's epsilon and r on the synthetic Google trace (Figures 1-2).

Run with::

    python examples/parameter_tuning.py [scale]

Sweeps the machine-sharing fraction epsilon (with r = 0) and the
standard-deviation weight r (with epsilon = 0.6), printing the same tables
the paper's Figures 1 and 2 plot, and also validates the offline Theorem 1
bound on a deterministic bulk arrival.
"""

from __future__ import annotations

import sys

from repro.experiments import (
    ExperimentConfig,
    run_figure1,
    run_figure2,
    run_offline_bound,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    config = ExperimentConfig(scale=scale, seeds=(0,))

    figure1 = run_figure1(config, epsilons=(0.2, 0.4, 0.6, 0.8, 1.0))
    print(figure1.render())
    print()

    figure2 = run_figure2(config, r_values=(0.0, 1.0, 3.0, 8.0))
    print(figure2.render())
    print()

    bound = run_offline_bound(config)
    print(bound.render())


if __name__ == "__main__":
    main()
