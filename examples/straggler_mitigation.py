"""Straggler mitigation: proactive cloning vs reactive detection vs nothing.

Run with::

    python examples/straggler_mitigation.py

A quarter of the cluster's machines are made 5x slower (the paper's
"partially failing machines" straggler cause).  The script compares:

* SRPTMS+C            -- proactive cloning + SRPT machine sharing,
* SRPTMS (no cloning) -- the same sharing rule with cloning disabled,
* Mantri              -- reactive, detection-based speculative execution,
* Fair                -- no mitigation at all,

showing how much of the straggler-induced flowtime each strategy recovers.
"""

from __future__ import annotations

from repro import FairScheduler, MantriScheduler, SRPTMSCScheduler, run_simulation
from repro.cluster.stragglers import SlowMachines
from repro.workload import bimodal_trace


def main() -> None:
    trace = bimodal_trace(
        num_small_jobs=60,
        num_large_jobs=8,
        small_tasks=4,
        large_tasks=60,
        small_duration=10.0,
        large_duration=40.0,
        cv=0.4,
        horizon=600.0,
        seed=7,
    )
    machines = 80
    print(f"workload: {trace}")
    print(f"straggler model: 25% of the {machines} machines run 5x slower\n")

    schedulers = [
        SRPTMSCScheduler(epsilon=0.6, r=3.0),
        SRPTMSCScheduler(epsilon=0.6, r=3.0, cloning_enabled=False),
        MantriScheduler(),
        FairScheduler(),
    ]
    header = f"{'scheduler':<12} {'mean':>10} {'weighted':>10} {'p95':>10} {'clones':>8}"
    print(header)
    for scheduler in schedulers:
        result = run_simulation(
            trace,
            scheduler,
            num_machines=machines,
            seed=1,
            straggler_model=SlowMachines(fraction=0.25, factor=5.0),
        )
        print(
            f"{result.scheduler_name:<12} {result.mean_flowtime:>10.1f} "
            f"{result.weighted_mean_flowtime:>10.1f} "
            f"{result.percentile_flowtime(95):>10.1f} "
            f"{result.cloning_ratio:>8.2f}"
        )


if __name__ == "__main__":
    main()
