"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package (needed by setuptools' PEP 660 editable builds) is unavailable --
pip then falls back to the classic ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
