#!/usr/bin/env bash
# Cold+warm sweep smoke shared by the CI benchmark job.
#
# Runs a declarative study spec end to end through `repro-mapreduce sweep`
# twice against the same results cache -- first cold (every run executes),
# then warm (every run must be served from the cache) -- and requires the
# two CSV exports to be byte-identical: cache hits are byte-equal replays
# with zero engine runs.
#
# Usage: tools/sweep_smoke.sh <spec.toml> <artifact-name>
#   <spec.toml>      study spec file (examples/studies/*.toml)
#   <artifact-name>  basename for the CSV exports and the cache dir;
#                    the cold CSV lands at <artifact-name>.csv for upload.
set -euo pipefail

if [ "$#" -ne 2 ]; then
    echo "usage: $0 <spec.toml> <artifact-name>" >&2
    exit 2
fi

spec="$1"
name="$2"

python -m repro sweep --spec "$spec" --cache-dir ".${name}-cache" --csv "${name}.csv"
python -m repro sweep --spec "$spec" --cache-dir ".${name}-cache" --csv "${name}-warm.csv"
cmp "${name}.csv" "${name}-warm.csv"
echo "sweep smoke OK: ${name}.csv byte-identical cold vs warm"
