#!/usr/bin/env python
"""CI perf-regression gate over committed benchmark baselines.

Compares a freshly measured benchmark JSON (the file the benchmark run
just rewrote, e.g. ``benchmarks/results/BENCH_engine.json``) against the
committed baseline (a pre-run snapshot of the same file) and **fails**
when any shared throughput metric dropped by more than the tolerance::

    python tools/check_bench_regression.py \
        --baseline /tmp/BENCH_engine.baseline.json \
        --measured benchmarks/results/BENCH_engine.json \
        [--tolerance 0.25]

Comparable metrics are numeric leaves whose key indicates a
higher-is-better throughput figure (``jobs_per_sec``, ``speedup`` and
nested members thereof), present in *both* files.  A measured value below
``baseline * (1 - tolerance)`` is a regression; improvements never fail
and simply move the bar for the next re-baseline.  Finding *nothing*
comparable is itself an error -- a renamed key must not silently disarm
the gate.

The tolerance defaults to 0.25 (25%) and can be set with ``--tolerance``
or the ``BENCH_REGRESSION_TOLERANCE`` environment variable (the CI knob
for noisy shared runners -- see README "Performance gate").
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterator, Tuple

#: Key prefixes of higher-is-better throughput leaves the gate compares.
THROUGHPUT_KEYS = ("jobs_per_sec", "speedup")


def iter_numeric_leaves(payload: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf of ``payload``."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from iter_numeric_leaves(payload[key], path)
    elif isinstance(payload, bool):
        return
    elif isinstance(payload, (int, float)):
        yield prefix, float(payload)


def throughput_leaves(payload: object) -> Dict[str, float]:
    """Numeric leaves whose path names a throughput metric (see module doc)."""
    return {
        path: value
        for path, value in iter_numeric_leaves(payload)
        if any(part.startswith(THROUGHPUT_KEYS) for part in path.split("."))
    }


def check(baseline: dict, measured: dict, tolerance: float) -> int:
    """Print a comparison table; return the number of regressions."""
    base = throughput_leaves(baseline)
    fresh = throughput_leaves(measured)
    shared = sorted(set(base) & set(fresh))
    regressions = 0
    for path in shared:
        floor = base[path] * (1.0 - tolerance)
        ratio = fresh[path] / base[path] if base[path] else float("inf")
        status = "ok"
        if fresh[path] < floor:
            status = "REGRESSION"
            regressions += 1
        print(
            f"  {status:>10}  {path}: baseline={base[path]:g} "
            f"measured={fresh[path]:g} ({ratio:.2%} of baseline, "
            f"floor={floor:g})"
        )
    return regressions


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (pre-run snapshot)")
    parser.add_argument("--measured", required=True,
                        help="freshly measured benchmark JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.25")),
        help="allowed fractional drop before failing "
             "(default 0.25, env BENCH_REGRESSION_TOLERANCE)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.measured) as handle:
        measured = json.load(handle)
    print(
        f"Perf gate: tolerance {args.tolerance:.0%} "
        f"({args.baseline} vs {args.measured})"
    )
    base = throughput_leaves(baseline)
    fresh = throughput_leaves(measured)
    if not set(base) & set(fresh):
        print(
            "ERROR: no comparable throughput metrics shared between baseline "
            "and measured JSON -- the gate would be vacuous.",
            file=sys.stderr,
        )
        return 1
    regressions = check(baseline, measured, args.tolerance)
    if regressions:
        print(
            f"FAILED: {regressions} throughput metric(s) regressed beyond "
            f"{args.tolerance:.0%}. If the drop is expected (slower code "
            "traded for a feature) re-baseline by committing the new JSON; "
            "if the runner is noisy, raise BENCH_REGRESSION_TOLERANCE.",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {len(throughput_leaves(measured))} metrics measured, "
          "no regression beyond tolerance.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
