#!/usr/bin/env python3
"""Offline link checker for the repository's markdown documentation.

Scans every markdown file given on the command line for inline links and
images (``[text](target)`` / ``![alt](target)``) and verifies that each
*local* target exists relative to the linking file (anchors and
``http(s)``/``mailto`` targets are skipped -- CI has no network).  Exits
non-zero listing every broken link.

Usage::

    python tools/check_links.py README.md ROADMAP.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: [text](target) -- target captured lazily so
#: titles ("target \"title\"") and anchors can be stripped afterwards.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the repository and are not checked offline.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def check_file(path: Path) -> list:
    """Return ``(line_number, target)`` pairs of broken local links."""
    broken = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            local = target.split("#", 1)[0]
            if not local:
                continue
            resolved = (path.parent / local).resolve()
            if not resolved.exists():
                broken.append((line_number, target))
    return broken


def main(argv: list) -> int:
    """Check every file in ``argv``; print breakages and return the count."""
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    failures = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for line_number, target in check_file(path):
            print(f"{name}:{line_number}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"\n{failures} broken link(s)", file=sys.stderr)
    else:
        print("all local links resolve")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
