#!/usr/bin/env bash
# Sweep-service smoke shared by the CI benchmark job.
#
# Boots the `repro-mapreduce serve` daemon against a throwaway cache,
# submits a study spec through the HTTP client (`repro-mapreduce submit`),
# polls it to completion and checks the service's guarantees end to end:
#
#   1. the CSV downloaded from the daemon is byte-identical to the same
#      spec executed offline via `repro-mapreduce sweep --spec`;
#   2. resubmitting the identical spec performs ZERO new engine runs
#      (every slot served from the shared results cache) and yields the
#      same bytes again;
#   3. `repro-mapreduce cache stats` sees exactly the entries the daemon
#      persisted, all at the current format version.
#
# Usage: tools/service_smoke.sh <spec.toml> <artifact-name>
#   <spec.toml>      study spec file (examples/studies/*.toml)
#   <artifact-name>  basename for the CSV exports, cache dir and logs;
#                    the served CSV lands at <artifact-name>.csv for upload.
set -euo pipefail

if [ "$#" -ne 2 ]; then
    echo "usage: $0 <spec.toml> <artifact-name>" >&2
    exit 2
fi

spec="$1"
name="$2"
cache=".${name}-cache"
log="${name}-serve.log"

# --port 0 binds an ephemeral port; scrape the actual URL from the
# daemon's startup line so parallel CI jobs can't collide.
python -m repro serve --cache-dir "$cache" --port 0 >"$log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's/^sweep service listening on \(http[^ ]*\).*/\1/p' "$log")
    [ -n "$url" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$log" >&2; exit 1; }
    sleep 0.1
done
if [ -z "$url" ]; then
    echo "service never became ready:" >&2
    cat "$log" >&2
    exit 1
fi
echo "service up at $url"

python -m repro submit --spec "$spec" --url "$url" --csv "${name}.csv" \
    | tee "${name}-submit1.log"

# Offline reference: the same spec through the non-daemon sweep path,
# no cache involved -- pure engine output.
python -m repro sweep --spec "$spec" --csv "${name}-offline.csv" >/dev/null
cmp "${name}.csv" "${name}-offline.csv"
echo "service CSV byte-identical to offline sweep"

# Resubmit the identical spec: the daemon must serve every slot from the
# shared cache (the submit report says "..., 0 executed, ...").
python -m repro submit --spec "$spec" --url "$url" --csv "${name}-resubmit.csv" \
    | tee "${name}-submit2.log"
grep -q ", 0 executed," "${name}-submit2.log" || {
    echo "resubmission performed engine runs -- dedup/cache broken" >&2
    exit 1
}
cmp "${name}.csv" "${name}-resubmit.csv"
echo "resubmission served entirely from cache, bytes identical"

python -m repro cache stats --cache-dir "$cache" | tee "${name}-cache-stats.log"
grep -q "stale entries:  0" "${name}-cache-stats.log"

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
echo "service smoke OK: ${name}.csv served == offline, warm resubmit ran nothing"
