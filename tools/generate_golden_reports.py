"""Regenerate the golden driver reports under ``tests/golden/``.

The golden files freeze the plain-text reports the nine experiment drivers
produce at a tiny smoke configuration; ``tests/test_study_presets.py``
asserts the Study-preset reimplementations reproduce them byte-for-byte.
Regenerate only when a driver's *output format* deliberately changes:

    PYTHONPATH=src python tools/generate_golden_reports.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import (
    ExperimentConfig,
    run_dag_redundancy,
    run_locality,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_offline_bound,
    run_policy_grid,
    run_scenario_sweep,
    run_scheduler_comparison,
    run_table2,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"

#: The exact smoke configuration the golden reports (and their tests) use.
GOLDEN_CONFIG = dict(scale=0.005, seeds=(0,))
GOLDEN_FIGURE1_EPSILONS = (0.2, 0.6, 1.0)
GOLDEN_FIGURE2_R_VALUES = (1.0, 5.0, 10.0)
GOLDEN_FIGURE3_FRACTIONS = (0.5, 1.0)
GOLDEN_SWEEP_SPREADS = (0.0, 0.5)
GOLDEN_SWEEP_RATES = (0.0, 1e-4)


def generate() -> dict:
    """Produce every golden report, keyed by driver name."""
    config = ExperimentConfig(**GOLDEN_CONFIG)
    reports = {
        "table2": run_table2(config).render(),
        "figure1": run_figure1(config, epsilons=GOLDEN_FIGURE1_EPSILONS).render(),
        "figure2": run_figure2(config, r_values=GOLDEN_FIGURE2_R_VALUES).render(),
        "figure3": run_figure3(
            config, machine_fractions=GOLDEN_FIGURE3_FRACTIONS
        ).render(),
        "offline_bound": run_offline_bound(config).render(),
        "scenario_sweep": run_scenario_sweep(
            config,
            speed_spreads=GOLDEN_SWEEP_SPREADS,
            failure_rates=GOLDEN_SWEEP_RATES,
        ).render(),
        "policy_grid": run_policy_grid(config).render(),
        "dag_redundancy": run_dag_redundancy(config).render(),
        "locality": run_locality(config).render(),
    }
    comparison = run_scheduler_comparison(config)
    reports["figure4"] = run_figure4(config, results=comparison).render()
    reports["figure5"] = run_figure5(config, results=comparison).render()
    reports["figure6"] = run_figure6(config, results=comparison).render()
    return reports


def main() -> int:
    """Write the reports to ``tests/golden/<name>.txt``."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, text in generate().items():
        path = GOLDEN_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
