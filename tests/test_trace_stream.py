"""Tests for the streaming workload layer and the engine's lazy arrival path."""

from __future__ import annotations

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation import ExperimentRunner, RunSpec, SchedulerSpec
from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation import run_simulation
from repro.simulation.scheduler_api import LaunchRequest, Scheduler
from repro.workload.distributions import Deterministic
from repro.workload.job import JobSpec
from repro.workload.stream import (
    StreamSpec,
    TraceStream,
    stream_heavy_tail_jobs,
    stream_poisson_jobs,
    stream_uniform_jobs,
)
from repro.workload.trace import Trace


def content_key(spec: JobSpec) -> tuple:
    """Value-level identity of a job spec (distributions compare by moments)."""
    return (
        spec.job_id, spec.arrival_time, spec.weight,
        spec.num_map_tasks, spec.num_reduce_tasks,
        spec.map_duration.mean, spec.map_duration.std,
        spec.reduce_duration.mean, spec.reduce_duration.std,
    )


def poisson_spec(num_jobs=120, seed=3, chunk_size=16, **overrides) -> StreamSpec:
    kwargs = {"arrival_rate": 1.0, "seed": seed, "chunk_size": chunk_size}
    kwargs.update(overrides)
    return StreamSpec(
        factory=stream_poisson_jobs, num_jobs=num_jobs, kwargs=kwargs,
        name=f"poisson-{num_jobs}",
    )


class TestStreamSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSpec(factory=stream_poisson_jobs, num_jobs=0)
        with pytest.raises(TypeError):
            StreamSpec(factory="not-callable", num_jobs=5)

    def test_build_returns_fresh_stream(self):
        spec = poisson_spec(num_jobs=10)
        a, b = spec.build(), spec.build()
        assert isinstance(a, TraceStream) and a is not b
        assert a.num_jobs == 10
        assert a.total_tasks is None

    def test_cache_key_reflects_arguments(self):
        assert poisson_spec(seed=1).cache_key() != poisson_spec(seed=2).cache_key()


class TestTraceStream:
    def test_yields_declared_count_in_arrival_order(self):
        stream = poisson_spec(num_jobs=50).build()
        specs = list(stream)
        assert len(specs) == 50
        assert stream.yielded == 50
        arrivals = [spec.arrival_time for spec in specs]
        assert arrivals == sorted(arrivals)
        assert [spec.job_id for spec in specs] == list(range(50))

    def test_streams_are_one_shot(self):
        stream = poisson_spec(num_jobs=5).build()
        list(stream)
        with pytest.raises(RuntimeError, match="already consumed"):
            iter(stream)

    def test_same_spec_yields_identical_jobs(self):
        spec = poisson_spec(num_jobs=40)
        assert list(map(content_key, spec.build())) == list(
            map(content_key, spec.build())
        )

    def test_chunk_size_is_part_of_the_stream_identity(self):
        """Chunked sampling consumes RNG state per chunk, so ``chunk_size``
        participates in the stream's identity (and in its cache key) --
        different chunkings are distinct, internally consistent streams."""
        fine = poisson_spec(num_jobs=40, chunk_size=7)
        coarse = poisson_spec(num_jobs=40, chunk_size=4096)
        fine_jobs = list(fine.build())
        coarse_jobs = list(coarse.build())
        assert len(fine_jobs) == len(coarse_jobs) == 40
        arrivals = [spec.arrival_time for spec in fine_jobs]
        assert arrivals == sorted(arrivals)
        assert fine.cache_key() != coarse.cache_key()
        # Same chunking replays identically.
        assert list(map(content_key, fine.build())) == list(
            map(content_key, poisson_spec(num_jobs=40, chunk_size=7).build())
        )

    def test_uniform_stream_is_deterministic_and_spaced(self):
        spec = StreamSpec(
            factory=stream_uniform_jobs, num_jobs=6,
            kwargs={"tasks_per_job": 2, "reduce_tasks_per_job": 1,
                    "mean_duration": 5.0, "inter_arrival": 2.0},
        )
        specs = list(spec.build())
        assert [s.arrival_time for s in specs] == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]
        assert all(s.num_map_tasks == 2 and s.num_reduce_tasks == 1 for s in specs)

    def test_heavy_tail_stream_produces_a_tail(self):
        spec = StreamSpec(
            factory=stream_heavy_tail_jobs, num_jobs=400,
            kwargs={"alpha": 1.1, "min_tasks": 1, "max_tasks": 500, "seed": 0},
        )
        sizes = [s.total_tasks for s in spec.build()]
        assert min(sizes) >= 1 and max(sizes) > 20 * sorted(sizes)[len(sizes) // 2]


class TestEngineStreaming:
    def test_stream_run_matches_materialised_run(self):
        """The tentpole equivalence: lazy arrivals == up-front arrivals."""
        spec = poisson_spec(num_jobs=150)
        trace = Trace(list(spec.build()), name="materialised")
        for scheduler_factory in (
            lambda: SRPTMSCScheduler(epsilon=0.6, r=3.0),
            FIFOScheduler,
        ):
            streamed = run_simulation(spec.build(), scheduler_factory(), 24, seed=9)
            materialised = run_simulation(trace, scheduler_factory(), 24, seed=9)
            assert streamed.fingerprint() == materialised.fingerprint()

    def test_total_tasks_accumulated_for_streams(self):
        spec = poisson_spec(num_jobs=30)
        trace = Trace(list(spec.build()), name="materialised")
        result = run_simulation(spec.build(), FIFOScheduler(), 16, seed=1)
        assert result.total_tasks == trace.total_tasks

    def test_engine_does_not_retain_stream_jobs(self):
        """Bounded memory: finished jobs of a stream are dropped."""
        engine = SimulationEngine(
            poisson_spec(num_jobs=60).build(), FIFOScheduler(), 16, seed=2
        )
        result = engine.run()
        assert result.num_jobs == 60
        assert engine._jobs == []
        assert engine._alive == {}

    def test_alive_set_stays_small_while_streaming(self):
        """The engine's working set tracks *alive* jobs, not trace size."""
        peak = {"alive": 0}

        class SpyScheduler(FIFOScheduler):
            def schedule(self, view):
                peak["alive"] = max(peak["alive"], view.num_alive_jobs)
                return super().schedule(view)

        num_jobs = 2000
        spec = StreamSpec(
            factory=stream_uniform_jobs, num_jobs=num_jobs,
            kwargs={"tasks_per_job": 1, "reduce_tasks_per_job": 0,
                    "mean_duration": 10.0, "inter_arrival": 1.0},
        )
        result = run_simulation(spec.build(), SpyScheduler(), 16, seed=0)
        assert result.num_jobs == num_jobs
        # Offered load ~0.6 on 16 machines: the alive set is a tiny, trace-
        # size-independent fraction of the 2000 streamed jobs.
        assert 0 < peak["alive"] < 100

    def test_trace_runs_still_retain_jobs_for_inspection(self):
        trace = Trace(list(poisson_spec(num_jobs=12).build()))
        engine = SimulationEngine(trace, FIFOScheduler(), 8, seed=0)
        engine.run()
        assert len(engine._jobs) == 12
        assert all(job.is_complete for job in engine._jobs)

    def test_under_delivering_stream_raises(self):
        spec = StreamSpec(
            factory=stream_uniform_jobs, num_jobs=10,
            kwargs={"tasks_per_job": 1, "mean_duration": 1.0},
        )
        lying = StreamSpec(
            factory=stream_uniform_jobs, num_jobs=10,
            kwargs={"tasks_per_job": 1, "mean_duration": 1.0},
        )
        stream = lying.build()
        # Truncate the underlying iterator by consuming through a wrapper.
        truncated = iter(list(stream)[:4])

        class Truncated:
            name = "truncated"
            num_jobs = 10
            total_tasks = None

            def __iter__(self):
                return truncated

        with pytest.raises(SimulationError, match="yielded 4 of its declared 10"):
            SimulationEngine(Truncated(), FIFOScheduler(), 4).run()
        del spec

    def test_duplicate_job_id_stream_raises(self):
        duration = Deterministic(5.0)

        class Duplicated:
            name = "duplicated"
            num_jobs = 2
            total_tasks = None

            def __iter__(self):
                spec = JobSpec(job_id=0, arrival_time=0.0, weight=1.0,
                               num_map_tasks=1, num_reduce_tasks=0,
                               map_duration=duration, reduce_duration=duration)
                return iter([spec, spec])

        with pytest.raises(SimulationError, match="duplicate job_id"):
            SimulationEngine(Duplicated(), FIFOScheduler(), 4).run()

    def test_out_of_order_stream_raises(self):
        duration = Deterministic(5.0)

        class Unsorted:
            name = "unsorted"
            num_jobs = 2
            total_tasks = None

            def __iter__(self):
                return iter(
                    [
                        JobSpec(job_id=0, arrival_time=5.0, weight=1.0,
                                num_map_tasks=1, num_reduce_tasks=0,
                                map_duration=duration, reduce_duration=duration),
                        JobSpec(job_id=1, arrival_time=1.0, weight=1.0,
                                num_map_tasks=1, num_reduce_tasks=0,
                                map_duration=duration, reduce_duration=duration),
                    ]
                )

        with pytest.raises(SimulationError, match="out of order"):
            SimulationEngine(Unsorted(), FIFOScheduler(), 4).run()

    def test_simultaneous_stream_arrivals_share_a_batch(self):
        """Lookahead pumping must not split same-instant arrivals."""
        decision_times = []

        class RecordingScheduler(Scheduler):
            name = "recording"

            def schedule(self, view):
                decision_times.append((view.time, view.num_alive_jobs))
                requests = []
                free = view.num_free_machines
                for job in view.alive_jobs:
                    for task in self.eligible_tasks(job):
                        if free <= 0:
                            return requests
                        requests.append(LaunchRequest(task=task, num_copies=1))
                        free -= 1
                return requests

        spec = StreamSpec(
            factory=stream_uniform_jobs, num_jobs=4,
            kwargs={"tasks_per_job": 1, "reduce_tasks_per_job": 0,
                    "mean_duration": 3.0, "inter_arrival": 0.0},
        )
        run_simulation(spec.build(), RecordingScheduler(), 8, seed=0)
        # All four arrivals fire at t=0 in ONE batch: the first scheduler
        # consultation already sees all four alive jobs.
        assert decision_times[0] == (0.0, 4)


class TestRunnerStreaming:
    def test_run_spec_rejects_consumed_stream_instances(self):
        with pytest.raises(TypeError, match="StreamSpec"):
            RunSpec(
                trace=poisson_spec(num_jobs=5).build(),
                scheduler=FIFOScheduler,
                num_machines=4,
            )

    def test_replications_rebuild_the_stream_per_run(self):
        spec = poisson_spec(num_jobs=60)
        runner = ExperimentRunner(workers=1)
        base = RunSpec(
            trace=spec, scheduler=SchedulerSpec(FIFOScheduler), num_machines=16
        )
        results = runner.run([base.with_seed(seed) for seed in (0, 1, 0)])
        assert results[0].fingerprint() == results[2].fingerprint()
        assert results[0].fingerprint() != results[1].fingerprint()

    def test_pooled_stream_execution_is_bit_identical_to_serial(self):
        spec = poisson_spec(num_jobs=80)
        base = RunSpec(
            trace=spec,
            scheduler=SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0}),
            num_machines=16,
        )
        specs = [base.with_seed(seed) for seed in range(4)]
        serial = ExperimentRunner(workers=1).run(specs)
        pooled = ExperimentRunner(workers=2).run(specs)
        assert [r.fingerprint() for r in serial] == [
            r.fingerprint() for r in pooled
        ]
