"""Tests for the analysis layer: CDFs, comparison tables, statistics, theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.cdf import (
    BIG_JOB_GRID,
    SMALL_JOB_GRID,
    cdf_comparison,
    cdf_curve,
    render_cdf_table,
)
from repro.analysis.comparison import ComparisonTable, percentage_improvement
from repro.analysis.stats import confidence_interval, describe, relative_difference
from repro.simulation.metrics import JobRecord, SimulationResult


def make_result(name: str, flowtimes) -> SimulationResult:
    result = SimulationResult(scheduler_name=name, num_machines=10,
                              total_tasks=len(flowtimes))
    for index, flowtime in enumerate(flowtimes):
        result.add_record(
            JobRecord(job_id=index, arrival_time=0.0, completion_time=flowtime,
                      weight=1.0 + index % 2, num_map_tasks=1, num_reduce_tasks=0,
                      copies_launched=1)
        )
    return result


class TestCdf:
    def test_grids_match_paper_axes(self):
        assert SMALL_JOB_GRID[0] == 0.0
        assert SMALL_JOB_GRID[-1] == 300.0
        assert SMALL_JOB_GRID[1] - SMALL_JOB_GRID[0] == 25.0
        assert BIG_JOB_GRID[-1] == 4000.0
        assert BIG_JOB_GRID[1] - BIG_JOB_GRID[0] == 500.0

    def test_curve_is_monotone_and_bounded(self):
        result = make_result("a", [10.0, 60.0, 120.0, 500.0])
        curve = cdf_curve(result, SMALL_JOB_GRID)
        assert np.all(np.diff(curve) >= 0)
        assert curve[0] == 0.0
        assert curve[-1] == pytest.approx(0.75)

    def test_curve_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            cdf_curve(make_result("a", [1.0]), [])

    def test_comparison_keys(self):
        results = {"a": make_result("a", [10.0]), "b": make_result("b", [20.0])}
        curves = cdf_comparison(results, [15.0])
        assert curves["a"][0] == 1.0
        assert curves["b"][0] == 0.0

    def test_render_contains_all_columns(self):
        curves = {"a": [0.1, 0.2], "b": [0.3, 0.4]}
        text = render_cdf_table(curves, [10.0, 20.0], title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "0.400" in text


class TestComparisonTable:
    def test_from_results_and_improvement(self):
        table = ComparisonTable.from_results(
            {
                "SRPTMS+C": make_result("SRPTMS+C", [75.0, 75.0]),
                "Mantri": make_result("Mantri", [100.0, 100.0]),
            }
        )
        assert table.improvement_over("SRPTMS+C", "Mantri") == pytest.approx(25.0)
        assert table.improvement_over("SRPTMS+C", "Mantri", weighted=True) == (
            pytest.approx(25.0)
        )

    def test_unknown_row_raises(self):
        table = ComparisonTable.from_results({"a": make_result("a", [1.0])})
        with pytest.raises(KeyError):
            table.row("missing")

    def test_render_mentions_schedulers(self):
        table = ComparisonTable.from_results(
            {"a": make_result("a", [1.0]), "b": make_result("b", [2.0])}
        )
        text = table.render(baseline="b")
        assert "a" in text and "b" in text
        assert "%" in text

    def test_percentage_improvement_validation(self):
        with pytest.raises(ValueError):
            percentage_improvement(1.0, 0.0)


class TestStats:
    def test_describe(self):
        stats = describe([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == 2.5
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["count"] == 4
        with pytest.raises(ValueError):
            describe([])

    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval([10.0, 12.0, 11.0, 13.0])
        assert low < 11.5 < high

    def test_confidence_interval_single_sample(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_relative_difference(self):
        assert relative_difference(75.0, 100.0) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            relative_difference(1.0, 0.0)
