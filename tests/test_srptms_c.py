"""Tests for the SRPTMS+C online scheduler (the paper's Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.simulation.engine import SimulationEngine
from repro.simulation import run_simulation
from repro.workload.distributions import Deterministic, LogNormal
from repro.workload.generators import bulk_arrival_trace, uniform_trace
from repro.workload.job import JobSpec
from repro.workload.trace import Trace


def single_job_trace(maps=2, reduces=1, mean=10.0, cv=0.0, weight=1.0) -> Trace:
    duration = Deterministic(mean) if cv == 0 else LogNormal(mean, cv * mean)
    return Trace(
        [
            JobSpec(
                job_id=0,
                arrival_time=0.0,
                weight=weight,
                num_map_tasks=maps,
                num_reduce_tasks=reduces,
                map_duration=duration,
                reduce_duration=duration,
            )
        ]
    )


class TestConstruction:
    @pytest.mark.parametrize("epsilon", [0.0, -0.1, 1.5])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(ValueError):
            SRPTMSCScheduler(epsilon=epsilon)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            SRPTMSCScheduler(r=-1.0)

    def test_invalid_copy_cap(self):
        with pytest.raises(ValueError):
            SRPTMSCScheduler(max_copies_per_task=-1)

    def test_name_reflects_cloning_switch(self):
        assert SRPTMSCScheduler().name == "SRPTMS+C"
        assert SRPTMSCScheduler(cloning_enabled=False).name == "SRPTMS"


class TestCloningBehaviour:
    def test_single_job_clones_to_fill_its_share(self):
        # One alive job owns the whole cluster; with 8 machines and 3 tasks it
        # should clone tasks so that all 8 machines are used.
        trace = single_job_trace(maps=3, reduces=0)
        engine = SimulationEngine(trace, SRPTMSCScheduler(epsilon=0.6, r=0.0),
                                  num_machines=8)
        result = engine.run()
        assert result.total_copies == 8
        assert result.cloning_ratio == pytest.approx(8.0 / 3.0)

    def test_cloning_disabled_launches_single_copies(self):
        trace = single_job_trace(maps=3, reduces=0)
        scheduler = SRPTMSCScheduler(epsilon=0.6, r=0.0, cloning_enabled=False)
        result = run_simulation(trace, scheduler, num_machines=8)
        assert result.total_copies == 3
        assert result.cloning_ratio == pytest.approx(1.0)

    def test_copy_cap_limits_clones(self):
        trace = single_job_trace(maps=2, reduces=0)
        scheduler = SRPTMSCScheduler(epsilon=0.6, r=0.0, max_copies_per_task=2)
        result = run_simulation(trace, scheduler, num_machines=10)
        assert result.total_copies <= 4

    def test_no_cloning_while_tasks_exceed_allocation(self):
        # 10 deterministic tasks on 4 machines: the first two waves (8 tasks)
        # run as single copies because pending tasks exceed the allocation;
        # only the final 2-task wave is cloned to fill the 4 machines.
        trace = single_job_trace(maps=10, reduces=0)
        engine = SimulationEngine(trace, SRPTMSCScheduler(epsilon=0.6, r=0.0),
                                  num_machines=4)
        result = engine.run()
        assert result.total_copies == 12
        job = engine._jobs[0]
        early_copies = [copy for task in job.map_tasks for copy in task.copies
                        if copy.launch_time < 20.0]
        assert len(early_copies) == 8  # one copy per task in the first two waves

    def test_cloning_reduces_flowtime_under_high_variance(self):
        # With heavy within-job variance and spare machines, cloning should
        # beat the no-cloning variant on average.
        trace = uniform_trace(4, tasks_per_job=4, reduce_tasks_per_job=0,
                              mean_duration=20.0, cv=1.0, inter_arrival=0.0)
        with_clones = run_simulation(
            trace, SRPTMSCScheduler(epsilon=0.6, r=0.0), num_machines=64, seed=3
        )
        without = run_simulation(
            trace,
            SRPTMSCScheduler(epsilon=0.6, r=0.0, cloning_enabled=False),
            num_machines=64,
            seed=3,
        )
        assert with_clones.mean_flowtime < without.mean_flowtime


class TestSharingBehaviour:
    def test_reduce_waits_for_map_completion_by_default(self):
        trace = single_job_trace(maps=2, reduces=2)
        engine = SimulationEngine(trace, SRPTMSCScheduler(epsilon=0.6, r=0.0),
                                  num_machines=8)
        engine.run()
        job = engine._jobs[0]
        for task in job.reduce_tasks:
            for copy in task.copies:
                assert copy.launch_time >= job.map_phase_completion_time

    def test_epsilon_small_prioritises_smallest_job(self):
        # With a tiny epsilon only the highest-priority (smallest) job runs.
        trace = bulk_arrival_trace([2, 20], mean_duration=10.0, cv=0.0)
        result = run_simulation(trace, SRPTMSCScheduler(epsilon=0.05, r=0.0),
                                num_machines=4)
        flowtimes = {record.job_id: record.flowtime for record in result.records}
        assert flowtimes[0] < flowtimes[1]

    def test_epsilon_one_shares_by_weight(self):
        # Two identical jobs, weights 3:1, epsilon=1: the heavy job gets
        # three quarters of the machines and finishes earlier.
        trace = bulk_arrival_trace([8, 8], mean_duration=10.0, cv=0.0,
                                   weights=[3.0, 1.0])
        result = run_simulation(trace, SRPTMSCScheduler(epsilon=1.0, r=0.0),
                                num_machines=4)
        completion = {record.job_id: record.completion_time
                      for record in result.records}
        assert completion[0] < completion[1]

    def test_non_preemption_lets_running_copies_finish(self):
        # A big job is running everywhere when a tiny job arrives; the tiny
        # job must wait for machines to free up (no preemption), but must be
        # served as soon as one frees.
        big = JobSpec(job_id=0, arrival_time=0.0, weight=1.0, num_map_tasks=4,
                      num_reduce_tasks=0, map_duration=Deterministic(30.0),
                      reduce_duration=Deterministic(30.0))
        small = JobSpec(job_id=1, arrival_time=1.0, weight=1.0, num_map_tasks=1,
                        num_reduce_tasks=0, map_duration=Deterministic(5.0),
                        reduce_duration=Deterministic(5.0))
        trace = Trace([big, small])
        result = run_simulation(trace, SRPTMSCScheduler(epsilon=0.6, r=0.0),
                                num_machines=4)
        flowtimes = {record.job_id: record.flowtime for record in result.records}
        # The small job waits for the big job's 30 s tasks, then runs 5 s.
        assert flowtimes[1] == pytest.approx(34.0)
        assert result.over_requests == 0

    def test_never_over_requests(self, small_online_trace):
        result = run_simulation(small_online_trace,
                                SRPTMSCScheduler(epsilon=0.6, r=3.0),
                                num_machines=16, seed=2)
        assert result.over_requests == 0

    def test_all_jobs_complete_under_scarce_machines(self, small_online_trace):
        result = run_simulation(small_online_trace,
                                SRPTMSCScheduler(epsilon=0.6, r=3.0),
                                num_machines=4, seed=2)
        assert result.num_jobs == small_online_trace.num_jobs

    def test_park_reduce_option(self):
        # Job 0 has a long map task; when job 1 arrives at t=5 a scheduling
        # decision happens while job 0's map is still running, so with the
        # park option its reduce task is placed early (and waits), whereas by
        # default it is only launched after the map phase completes.
        long_map = JobSpec(job_id=0, arrival_time=0.0, weight=1.0,
                           num_map_tasks=1, num_reduce_tasks=1,
                           map_duration=Deterministic(30.0),
                           reduce_duration=Deterministic(10.0))
        other = JobSpec(job_id=1, arrival_time=5.0, weight=1.0, num_map_tasks=1,
                        num_reduce_tasks=0, map_duration=Deterministic(5.0),
                        reduce_duration=Deterministic(5.0))
        trace = Trace([long_map, other])

        def reduce_launch_time(park: bool) -> float:
            scheduler = SRPTMSCScheduler(
                epsilon=1.0, r=0.0, cloning_enabled=False,
                schedule_reduce_before_map_completion=park,
            )
            engine = SimulationEngine(trace, scheduler, num_machines=3)
            engine.run()
            job = engine._jobs[0]
            return min(copy.launch_time for copy in job.reduce_tasks[0].copies)

        assert reduce_launch_time(park=True) < 30.0
        assert reduce_launch_time(park=False) >= 30.0


class TestComparisonAgainstSimplePolicies:
    def test_beats_fifo_on_weighted_flowtime(self):
        # Small weighted jobs arriving behind a huge job: SRPTMS+C should
        # easily beat FIFO on the weighted metric.
        from repro.schedulers.fifo import FIFOScheduler
        from repro.workload.generators import bimodal_trace

        trace = bimodal_trace(12, 2, small_tasks=2, large_tasks=60,
                              small_duration=5.0, large_duration=60.0,
                              cv=0.3, horizon=50.0, seed=5)
        srpt = run_simulation(trace, SRPTMSCScheduler(epsilon=0.6, r=1.0),
                              num_machines=20, seed=0)
        fifo = run_simulation(trace, FIFOScheduler(), num_machines=20, seed=0)
        assert srpt.mean_flowtime < fifo.mean_flowtime
