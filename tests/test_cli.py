"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _scenario_from_args, build_parser, main
from repro.scenarios import scenario_preset


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.scale == 0.02
        assert args.seeds == [0, 1]
        assert args.epsilon == 0.6

    def test_overrides(self):
        args = build_parser().parse_args(
            ["figure6", "--scale", "0.01", "--seeds", "3", "4", "--epsilon", "0.4",
             "--r", "2", "--machines", "99"]
        )
        assert args.scale == 0.01
        assert args.seeds == [3, 4]
        assert args.epsilon == 0.4
        assert args.r == 2.0
        assert args.machines == 99

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure6", "--scenario", "bogus"])


class TestScenarioFlags:
    def _scenario(self, *flags, experiment="figure6"):
        return _scenario_from_args(build_parser().parse_args([experiment, *flags]))

    def test_no_flags_is_homogeneous(self):
        assert self._scenario() is None

    def test_preset_selected(self):
        assert self._scenario("--scenario", "failures") == scenario_preset("failures")

    def test_detail_flags_override_preset(self):
        spec = self._scenario("--scenario", "failures", "--repair-time", "5")
        assert spec.failures.mean_repair == 5.0
        assert spec.failures.rate == scenario_preset("failures").failures.rate
        spec = self._scenario(
            "--scenario", "dynamic-stragglers", "--slowdown-factor", "8"
        )
        assert spec.stragglers.factor == 8.0

    def test_rate_flags_create_processes(self):
        spec = self._scenario(
            "--failure-rate", "1e-4", "--slowdown-rate", "1e-3",
            "--slowdown-duration", "30", "--speed-spread", "0.5",
        )
        assert spec.failures.rate == 1e-4
        assert spec.stragglers.mean_duration == 30.0
        assert spec.speeds.low == 0.5 and spec.speeds.high == 1.5
        assert spec.normalize_mean_speed

    def test_zero_rate_disables_preset_process(self):
        assert self._scenario("--scenario", "failures", "--failure-rate", "0") is None

    def test_orphan_detail_flags_rejected(self):
        with pytest.raises(SystemExit):
            self._scenario("--repair-time", "5")
        with pytest.raises(SystemExit):
            self._scenario("--slowdown-duration", "5")
        with pytest.raises(SystemExit):
            self._scenario("--speed-spread", "1.5")

    def test_invalid_process_values_exit_cleanly(self):
        """Spec validation errors surface as SystemExit, not tracebacks."""
        with pytest.raises(SystemExit):
            self._scenario("--failure-rate", "-1")
        with pytest.raises(SystemExit):
            self._scenario("--slowdown-rate", "1e-3", "--slowdown-factor", "0.5")
        with pytest.raises(SystemExit):
            self._scenario("--scenario", "failures", "--repair-time", "0")

    def test_scenario_sweep_allows_bare_repair_time(self):
        assert self._scenario(
            "--repair-time", "5", experiment="scenario-sweep"
        ) is None

    def test_scenario_rejected_for_non_simulating_experiments(self):
        for experiment in ("table2", "offline-bound", "scenario-sweep", "all"):
            with pytest.raises(SystemExit):
                main([experiment, "--scenario", "failures"])


class TestMain:
    def test_table2_prints_report(self, capsys):
        exit_code = main(["table2", "--scale", "0.005", "--seeds", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table II" in output

    def test_offline_bound_prints_report(self, capsys):
        exit_code = main(["offline-bound", "--scale", "0.005", "--seeds", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "competitive ratio" in output

    def test_figure6_prints_comparison(self, capsys):
        exit_code = main(["figure6", "--scale", "0.005", "--seeds", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SRPTMS+C" in output and "Mantri" in output


class TestProfileCommand:
    def test_profile_smoke_names_engine_frames(self, capsys, tmp_path):
        dump = tmp_path / "engine.prof"
        exit_code = main(
            [
                "profile",
                "--workload",
                "stream:2000",
                "--scheduler",
                "fifo",
                "--top",
                "15",
                "--dump",
                str(dump),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        # The cumulative table must surface the engine hot path by name.
        assert "cumulative" in output
        assert "engine.py" in output
        assert "_run" in output
        assert "2000 jobs" in output
        # And the raw pstats dump must be loadable.
        assert dump.exists()
        import pstats

        stats = pstats.Stats(str(dump))
        assert any("engine.py" in key[0] for key in stats.stats)

    def test_profile_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["profile", "--workload", "nonsense"])
