"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.scale == 0.02
        assert args.seeds == [0, 1]
        assert args.epsilon == 0.6

    def test_overrides(self):
        args = build_parser().parse_args(
            ["figure6", "--scale", "0.01", "--seeds", "3", "4", "--epsilon", "0.4",
             "--r", "2", "--machines", "99"]
        )
        assert args.scale == 0.01
        assert args.seeds == [3, 4]
        assert args.epsilon == 0.4
        assert args.r == 2.0
        assert args.machines == 99

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])


class TestMain:
    def test_table2_prints_report(self, capsys):
        exit_code = main(["table2", "--scale", "0.005", "--seeds", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table II" in output

    def test_offline_bound_prints_report(self, capsys):
        exit_code = main(["offline-bound", "--scale", "0.005", "--seeds", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "competitive ratio" in output

    def test_figure6_prints_comparison(self, capsys):
        exit_code = main(["figure6", "--scale", "0.005", "--seeds", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SRPTMS+C" in output and "Mantri" in output
