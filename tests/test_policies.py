"""The policy kernel: gating, compositions, bit-identity, redundancy counter.

The heart of this suite is the bit-identity contract: every legacy
scheduler name maps to an ordering x allocation x redundancy composition
(:data:`repro.policies.NAMED_COMPOSITIONS`), and running the legacy class
and an explicitly composed :class:`ComposedScheduler` over the same spec
produces byte-identical :class:`SimulationResult`s -- serially, on a
process pool, and under adversity scenarios.
"""

from __future__ import annotations

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.policies import (
    ALLOCATION_POLICIES,
    NAMED_COMPOSITIONS,
    ORDERING_POLICIES,
    REDUNDANCY_POLICIES,
    EpsilonShareAllocation,
    LATESpeculation,
    MantriSpeculation,
    NoRedundancy,
    PaperCloning,
    SCACloning,
    SRPTOrdering,
    composition_label,
    has_launchable_tasks,
    launchable_tasks,
    make_allocation,
    make_ordering,
    make_redundancy,
    parse_composition,
    schedulable_jobs,
)
from repro.scenarios import scenario_preset
from repro.schedulers import (
    FairScheduler,
    FIFOScheduler,
    LATEScheduler,
    MantriScheduler,
    SCAScheduler,
    SRPTScheduler,
)
from repro.simulation import (
    ExperimentRunner,
    RunSpec,
    SchedulerSpec,
    run_simulation,
)
from repro.simulation.scheduler_api import ComposedScheduler
from repro.workload.generators import bulk_arrival_trace
from repro.workload.job import Job, JobSpec, Phase
from repro.workload.distributions import Deterministic, LogNormal
from repro.workload.trace import Trace


#: Legacy scheduler name -> (legacy kwargs, composed kwargs).  The composed
#: side pins the legacy result-table name so the fingerprints (which include
#: ``scheduler_name``) are comparable bit for bit.
LEGACY_EQUIVALENTS = {
    "fifo": (SchedulerSpec(FIFOScheduler), {"name": "FIFO"}),
    "fair": (SchedulerSpec(FairScheduler), {"name": "Fair"}),
    "srpt": (SchedulerSpec(SRPTScheduler, {"r": 2.0}), {"r": 2.0, "name": "SRPT"}),
    "sca": (SchedulerSpec(SCAScheduler), {"name": "SCA"}),
    "late": (SchedulerSpec(LATEScheduler), {"name": "LATE"}),
    "mantri": (SchedulerSpec(MantriScheduler), {"name": "Mantri"}),
    "srptms_c": (
        SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0}),
        {"epsilon": 0.6, "r": 3.0, "name": "SRPTMS+C"},
    ),
}


def composed_spec(legacy_name: str) -> SchedulerSpec:
    """The ComposedScheduler spec equivalent to one legacy scheduler name."""
    ordering, allocation, redundancy = NAMED_COMPOSITIONS[legacy_name]
    _, kwargs = LEGACY_EQUIVALENTS[legacy_name]
    return SchedulerSpec(
        ComposedScheduler,
        {
            "ordering": ordering,
            "allocation": allocation,
            "redundancy": redundancy,
            **kwargs,
        },
    )


SCENARIOS = {
    "homogeneous": None,
    "adversity": scenario_preset("failures"),
}


class TestLegacyCompositionBitIdentity:
    """Acceptance: every legacy name == its composition, bit for bit."""

    @pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
    @pytest.mark.parametrize("legacy_name", sorted(NAMED_COMPOSITIONS))
    def test_serial_bit_identity(
        self, legacy_name, scenario_name, small_online_trace
    ):
        scenario = SCENARIOS[scenario_name]
        legacy_spec, _ = LEGACY_EQUIVALENTS[legacy_name]
        legacy = run_simulation(
            small_online_trace,
            legacy_spec.build(),
            num_machines=10,
            seed=3,
            scenario=scenario,
        )
        composed = run_simulation(
            small_online_trace,
            composed_spec(legacy_name).build(),
            num_machines=10,
            seed=3,
            scenario=scenario,
        )
        assert legacy.fingerprint() == composed.fingerprint()

    @pytest.mark.parametrize("legacy_name", sorted(NAMED_COMPOSITIONS))
    def test_pooled_bit_identity(self, legacy_name, small_online_trace):
        """workers=2 pool vs serial, legacy vs composed: all four equal."""
        scenario = scenario_preset("uniform-hetero")
        specs = [
            RunSpec(
                trace=small_online_trace,
                scheduler=scheduler,
                num_machines=10,
                seed=seed,
                scenario=scenario,
            )
            for scheduler in (
                LEGACY_EQUIVALENTS[legacy_name][0],
                composed_spec(legacy_name),
            )
            for seed in (0, 1)
        ]
        serial = ExperimentRunner(workers=1).run(specs)
        pooled = ExperimentRunner(workers=2).run(specs)
        for one, two in zip(serial, pooled):
            assert one.fingerprint() == two.fingerprint()
        # legacy (first two) vs composed (last two), per seed
        assert serial[0].fingerprint() == serial[2].fingerprint()
        assert serial[1].fingerprint() == serial[3].fingerprint()


class TestNoRedundancyProperty:
    """Satellite: redundancy=none never launches a second concurrent copy."""

    @pytest.mark.parametrize("allocation", sorted(ALLOCATION_POLICIES))
    @pytest.mark.parametrize("ordering", sorted(ORDERING_POLICIES))
    def test_never_a_second_copy(self, ordering, allocation, small_online_trace):
        scheduler = ComposedScheduler(ordering, allocation, "none", epsilon=0.6)
        result = run_simulation(
            small_online_trace, scheduler, num_machines=12, seed=0
        )
        assert result.num_jobs == small_online_trace.num_jobs
        assert result.redundant_copies_launched == 0
        # Without failures, no redundancy means exactly one copy per task.
        assert result.total_copies == result.total_tasks

    @pytest.mark.parametrize("ordering", sorted(ORDERING_POLICIES))
    def test_failure_redispatch_is_not_redundant(
        self, ordering, small_online_trace
    ):
        """Replacement copies of failure-killed tasks do not count."""
        scheduler = ComposedScheduler(ordering, "greedy", "none")
        result = run_simulation(
            small_online_trace,
            scheduler,
            num_machines=12,
            seed=0,
            scenario=scenario_preset("failures"),
        )
        assert result.redundant_copies_launched == 0
        # Failure kills force relaunches: copies exceed tasks by exactly
        # the number of killed copies, none of which were redundant.
        assert (
            result.total_copies
            == result.total_tasks + result.copies_killed_by_failure
        )


class TestRedundantCopiesCounter:
    """Satellite: one unified counter on SimulationResult for everyone."""

    def test_speculative_schedulers_match_policy_counter(self):
        short = LogNormal(10.0, 1.0)
        trace = Trace(
            [
                JobSpec(
                    job_id=0,
                    arrival_time=0.0,
                    weight=1.0,
                    num_map_tasks=30,
                    num_reduce_tasks=0,
                    map_duration=short,
                    reduce_duration=short,
                )
            ]
        )
        from repro.cluster.stragglers import SlowMachines

        scheduler = MantriScheduler(delta=0.25, tick_interval=2.0, min_samples=3)
        result = run_simulation(
            trace,
            scheduler,
            num_machines=8,
            seed=1,
            straggler_model=SlowMachines(fraction=0.25, factor=20.0),
        )
        assert result.redundant_copies_launched > 0
        assert (
            result.redundant_copies_launched
            == scheduler.speculative_copies_launched
        )

    def test_cloning_schedulers_count_clones(self, small_online_trace):
        result = run_simulation(
            small_online_trace,
            SRPTMSCScheduler(epsilon=0.6, r=3.0),
            num_machines=12,
            seed=0,
        )
        # No failures: every copy beyond the first per task is redundant.
        assert (
            result.redundant_copies_launched
            == result.total_copies - result.total_tasks
        )
        assert result.redundant_copies_launched > 0

    def test_counter_in_summary_and_canonical_dict(self, small_online_trace):
        result = run_simulation(
            small_online_trace, FIFOScheduler(), num_machines=12, seed=0
        )
        assert result.summary()["redundant_copies_launched"] == 0
        assert result.canonical_dict()["redundant_copies_launched"] == 0


class TestGating:
    """Satellite: the ONE reduce-gating helper."""

    def make_job(self, maps=2, reduces=2):
        spec = JobSpec(
            job_id=0,
            arrival_time=0.0,
            weight=1.0,
            num_map_tasks=maps,
            num_reduce_tasks=reduces,
            map_duration=Deterministic(10.0),
            reduce_duration=Deterministic(10.0),
        )
        return Job.from_spec(spec)

    def test_maps_gate_reduces(self):
        job = self.make_job()
        assert has_launchable_tasks(job)
        assert [t.phase for t in launchable_tasks(job)] == [Phase.MAP] * 2

    def test_no_maps_means_reduces_launchable(self):
        job = self.make_job(maps=0, reduces=2)
        # No map tasks: the map phase is trivially complete.
        assert has_launchable_tasks(job)
        assert [t.phase for t in launchable_tasks(job)] == [Phase.REDUCE] * 2

    def test_early_reduce_flag(self):
        from repro.workload.job import TaskCopy

        job = self.make_job()
        for index, task in enumerate(job.map_tasks):
            task.add_copy(
                TaskCopy(index, task, machine_id=index, launch_time=0.0,
                         workload=10.0)
            )
        # Maps all scheduled but incomplete: nothing launchable by default...
        assert not has_launchable_tasks(job)
        assert launchable_tasks(job) == []
        # ...but the early-reduce ablation may park reduce copies now.
        assert has_launchable_tasks(job, allow_early_reduce=True)
        assert [
            t.phase for t in launchable_tasks(job, allow_early_reduce=True)
        ] == [Phase.REDUCE] * 2

    def test_schedulable_jobs_filters(self):
        ready = self.make_job()
        assert schedulable_jobs([ready]) == [ready]

    def test_legacy_entry_points_delegate(self):
        """schedulers.base and SRPTMS+C share this module's gating."""
        from repro.schedulers.base import SingleCopyScheduler

        job = self.make_job()
        assert SingleCopyScheduler.has_launchable_tasks(job) is True


class TestCompositionRegistry:
    def test_parse_composition(self):
        assert parse_composition("srpt+greedy+late") == ("srpt", "greedy", "late")
        assert parse_composition("fifo+share+clone") == ("fifo", "share", "clone")
        # Two parts: stays a plain scheduler name (this is SRPTMS+C!).
        assert parse_composition("SRPTMS+C") is None
        assert parse_composition("bogus+greedy+late") is None
        assert parse_composition("fifo") is None

    def test_composition_label_round_trips(self):
        for ordering in ORDERING_POLICIES:
            for allocation in ALLOCATION_POLICIES:
                for redundancy in REDUNDANCY_POLICIES:
                    label = composition_label(ordering, allocation, redundancy)
                    assert parse_composition(label) == (
                        ordering,
                        allocation,
                        redundancy,
                    )

    def test_factories_resolve_names_and_instances(self):
        assert isinstance(make_ordering("srpt", r=2.0), SRPTOrdering)
        assert make_ordering("srpt", r=2.0).r == 2.0
        share = make_allocation("share", epsilon=0.3)
        assert isinstance(share, EpsilonShareAllocation)
        assert share.epsilon == 0.3
        assert make_allocation(share) is share
        assert isinstance(make_redundancy("none"), NoRedundancy)
        assert isinstance(make_redundancy("clone"), PaperCloning)
        assert isinstance(make_redundancy("sca"), SCACloning)
        assert isinstance(make_redundancy("late"), LATESpeculation)
        assert isinstance(make_redundancy("mantri"), MantriSpeculation)

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown ordering"):
            make_ordering("bogus")
        with pytest.raises(ValueError, match="unknown allocation"):
            make_allocation("bogus")
        with pytest.raises(ValueError, match="unknown redundancy"):
            make_redundancy("bogus")

    def test_policy_validation_propagates(self):
        with pytest.raises(ValueError):
            ComposedScheduler("srpt", "share", "clone", epsilon=0.0)
        with pytest.raises(ValueError):
            ComposedScheduler("srpt", "greedy", "none", r=-1.0)

    def test_default_name_is_the_triple(self):
        scheduler = ComposedScheduler("srpt", "share", "late")
        assert scheduler.name == "srpt+share+late"
        # Speculation policies carry their tick interval to the engine.
        assert scheduler.tick_interval == 5.0


class TestComposedGrid:
    """Acceptance: >= 12 novel compositions, runnable end to end."""

    def test_grid_size_and_novelty(self):
        from repro.experiments.policy_grid import DEFAULT_GRID

        assert len(DEFAULT_GRID) >= 12
        legacy = {
            composition_label(*triple)
            for triple in NAMED_COMPOSITIONS.values()
        }
        assert not legacy.intersection(DEFAULT_GRID)
        for name in DEFAULT_GRID:
            assert parse_composition(name) is not None

    def test_every_grid_cell_completes(self):
        """All 30 cells of the grid run a tiny trace to completion."""
        trace = bulk_arrival_trace([3, 5], mean_duration=5.0, cv=0.3)
        for ordering in sorted(ORDERING_POLICIES):
            for allocation in sorted(ALLOCATION_POLICIES):
                for redundancy in sorted(REDUNDANCY_POLICIES):
                    scheduler = ComposedScheduler(
                        ordering, allocation, redundancy, epsilon=0.6, r=1.0
                    )
                    result = run_simulation(
                        trace, scheduler, num_machines=6, seed=0
                    )
                    assert result.num_jobs == 2, scheduler.name
                    assert result.over_requests == 0, scheduler.name

    def test_study_axis_accepts_triples(self):
        from repro.study import Study

        study = Study(
            name="grid",
            schedulers=("SRPTMS+C", "srpt+greedy+late", "fifo+share+clone"),
            seeds=(0,),
            scale=0.005,
        )
        specs = study.compile()
        assert len(specs) == 3
        # Triples consume the study's epsilon/r like SRPTMS+C does.
        composed = specs[2].scheduler
        assert composed.scheduler_cls is ComposedScheduler
        assert composed.kwargs["epsilon"] == study.epsilon
        assert composed.kwargs["r"] == study.r

    def test_study_axis_rejects_unknown_triples(self):
        from repro.study import Study

        with pytest.raises(ValueError, match="unknown scheduler"):
            Study(name="bad", schedulers=("bogus+greedy+late",))

    def test_spec_file_round_trips_triples(self):
        from repro.study import Study, study_from_json, study_to_json

        study = Study(
            name="grid",
            schedulers=(
                "srpt+share+sca",
                {"name": "fifo+greedy+clone", "epsilon": 0.4},
            ),
            seeds=(0,),
        )
        assert study_from_json(study_to_json(study)) == study

    def test_cli_policy_subcommand(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "policy",
                "--ordering",
                "srpt",
                "--allocation",
                "share",
                "--redundancy",
                "none",
                "--scale",
                "0.005",
                "--seeds",
                "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "srpt+share+none" in out
        assert "SRPTMS+C" in out

    def test_cli_rejects_policy_flags_elsewhere(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--ordering"):
            main(["figure1", "--ordering", "srpt"])
