"""End-to-end integration tests: every scheduler against shared workloads,
with cross-cutting invariants checked on the final simulation state."""

from __future__ import annotations

import pytest

from repro.core.bounds import serial_phase_lower_bound
from repro.core.offline import OfflineSRPTScheduler
from repro.core.srptms_c import SRPTMSCScheduler
from repro.schedulers import (
    FIFOScheduler,
    FairScheduler,
    LATEScheduler,
    MantriScheduler,
    SCAScheduler,
    SRPTScheduler,
)
from repro.simulation.engine import SimulationEngine
from repro.workload.generators import bimodal_trace


def all_schedulers():
    return [
        SRPTMSCScheduler(epsilon=0.6, r=3.0),
        SRPTMSCScheduler(epsilon=1.0, r=0.0),
        SRPTMSCScheduler(epsilon=0.2, r=0.0, cloning_enabled=False),
        OfflineSRPTScheduler(r=0.0),
        OfflineSRPTScheduler(r=3.0, park_reduce_tasks=False),
        FIFOScheduler(),
        FairScheduler(),
        SRPTScheduler(),
        MantriScheduler(),
        LATEScheduler(),
        SCAScheduler(),
    ]


SCHEDULER_IDS = [
    "srptms_c", "srptms_c_eps1", "srptms_noclone", "offline", "offline_nopark",
    "fifo", "fair", "srpt", "mantri", "late", "sca",
]


@pytest.mark.parametrize("scheduler", all_schedulers(), ids=SCHEDULER_IDS)
def test_end_to_end_invariants(scheduler, small_online_trace):
    """Every policy completes the trace while respecting the system invariants."""
    engine = SimulationEngine(
        small_online_trace, scheduler, num_machines=10, seed=1, check_invariants=True
    )
    result = engine.run()

    # Every job completed exactly once and machines all freed at the end.
    assert result.num_jobs == small_online_trace.num_jobs
    assert engine.cluster.num_free == engine.cluster.num_machines

    specs = {spec.job_id: spec for spec in small_online_trace}
    for record in result.records:
        spec = specs[record.job_id]
        # Completion after arrival, and no faster than one map plus one
        # reduce task could possibly run (deterministic lower bound is not
        # valid per-sample for noisy durations, so use a loose factor).
        assert record.completion_time >= record.arrival_time
        assert record.flowtime > 0
        if record.map_phase_completion_time is not None:
            assert record.map_phase_completion_time <= record.completion_time
        assert record.copies_launched >= spec.total_tasks

    # Work accounting: every logical task ran exactly one winning copy.
    assert result.total_copies >= small_online_trace.total_tasks
    assert result.useful_work > 0
    assert result.makespan >= max(r.completion_time for r in result.records) - 1e-9
    assert result.makespan == pytest.approx(
        max(r.completion_time for r in result.records)
    )

    # The engine state agrees with the per-job records.
    for job in engine._jobs:
        assert job.is_complete
        for task in job.all_tasks():
            assert task.is_completed
            finished = [copy for copy in task.copies if copy.is_finished]
            assert len(finished) == 1
            for copy in task.copies:
                assert not copy.is_active


@pytest.mark.parametrize("scheduler", all_schedulers(), ids=SCHEDULER_IDS)
def test_deterministic_workload_flowtimes_respect_lower_bounds(
    scheduler, deterministic_online_trace
):
    engine = SimulationEngine(
        deterministic_online_trace, scheduler, num_machines=8, seed=0
    )
    result = engine.run()
    specs = {spec.job_id: spec for spec in deterministic_online_trace}
    for record in result.records:
        lower = serial_phase_lower_bound(specs[record.job_id])
        assert record.flowtime >= lower - 1e-9


def test_srpt_ordering_beats_fifo_on_mixed_workload():
    """The motivating comparison: SRPT-style policies protect small jobs."""
    trace = bimodal_trace(15, 3, small_tasks=2, large_tasks=40,
                          small_duration=5.0, large_duration=60.0, cv=0.4,
                          horizon=100.0, seed=11)
    fifo = SimulationEngine(trace, FIFOScheduler(), num_machines=25, seed=0).run()
    srptms = SimulationEngine(
        trace, SRPTMSCScheduler(epsilon=0.6, r=1.0), num_machines=25, seed=0
    ).run()
    assert srptms.mean_flowtime < fifo.mean_flowtime
    # Small jobs (2 tasks) specifically should be much faster under SRPTMS+C.
    small_ids = {spec.job_id for spec in trace if spec.total_tasks <= 3}
    small_fifo = [r.flowtime for r in fifo.records if r.job_id in small_ids]
    small_srptms = [r.flowtime for r in srptms.records if r.job_id in small_ids]
    assert sum(small_srptms) < sum(small_fifo)


def test_results_identical_for_identical_seeds(small_online_trace):
    a = SimulationEngine(small_online_trace, SRPTMSCScheduler(), 12, seed=5).run()
    b = SimulationEngine(small_online_trace, SRPTMSCScheduler(), 12, seed=5).run()
    assert [r.completion_time for r in a.records] == [
        r.completion_time for r in b.records
    ]


def test_larger_cluster_does_not_hurt(small_online_trace):
    small = SimulationEngine(
        small_online_trace, SRPTMSCScheduler(), num_machines=6, seed=3
    ).run()
    large = SimulationEngine(
        small_online_trace, SRPTMSCScheduler(), num_machines=30, seed=3
    ).run()
    assert large.mean_flowtime <= small.mean_flowtime * 1.05
