"""Unit tests for the epsilon-fraction machine-sharing rule (Section V-A)."""

from __future__ import annotations

import pytest

from repro.core.allocation import epsilon_shares, fractional_shares, integer_shares
from repro.workload.distributions import Deterministic
from repro.workload.job import Job, JobSpec


def make_job(job_id: int, weight: float, tasks: int = 4) -> Job:
    spec = JobSpec(
        job_id=job_id,
        arrival_time=0.0,
        weight=weight,
        num_map_tasks=tasks,
        num_reduce_tasks=0,
        map_duration=Deterministic(10.0 * tasks),
        reduce_duration=Deterministic(10.0),
    )
    return Job.from_spec(spec)


class TestFractionalShares:
    def test_shares_sum_to_machine_count(self):
        pairs = [(0, 3.0), (1, 2.0), (2, 1.0), (3, 4.0)]
        shares = fractional_shares(pairs, num_machines=100, epsilon=0.5)
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_epsilon_one_is_weight_proportional_fair_sharing(self):
        pairs = [(0, 3.0), (1, 1.0)]
        shares = fractional_shares(pairs, num_machines=40, epsilon=1.0)
        assert shares[0] == pytest.approx(30.0)
        assert shares[1] == pytest.approx(10.0)

    def test_small_epsilon_concentrates_on_top_priority(self):
        pairs = [(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)]
        shares = fractional_shares(pairs, num_machines=100, epsilon=0.25)
        # One job's weight is exactly a 0.25 fraction: the highest-priority
        # job takes all machines.
        assert shares[0] == pytest.approx(100.0)
        assert shares[1] == shares[2] == shares[3] == 0.0

    def test_partial_share_for_straddling_job(self):
        pairs = [(0, 1.0), (1, 1.0)]
        shares = fractional_shares(pairs, num_machines=60, epsilon=0.75)
        # W = 2, threshold = 0.5.  Job 0 (top): W_0 = 2, W_0 - w_0 = 1 >= 0.5
        # -> full share 1*60/(0.75*2) = 40.  Job 1: W_1 = 1 > 0.5 but
        # W_1 - w_1 = 0 < 0.5 -> partial (1 - 0.5)*60/1.5 = 20.
        assert shares[0] == pytest.approx(40.0)
        assert shares[1] == pytest.approx(20.0)

    def test_zero_share_below_threshold(self):
        pairs = [(0, 5.0), (1, 1.0), (2, 1.0)]
        shares = fractional_shares(pairs, num_machines=70, epsilon=0.5)
        assert shares[2] == 0.0

    def test_empty_input(self):
        assert fractional_shares([], 10, 0.5) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            fractional_shares([(0, 1.0)], 0, 0.5)
        with pytest.raises(ValueError):
            fractional_shares([(0, 1.0)], 10, 0.0)
        with pytest.raises(ValueError):
            fractional_shares([(0, 1.0)], 10, 1.5)
        with pytest.raises(ValueError):
            fractional_shares([(0, 0.0)], 10, 0.5)


class TestIntegerShares:
    def test_integers_sum_to_machine_count(self):
        fractional = {0: 33.4, 1: 33.3, 2: 33.3}
        integers = integer_shares(fractional, [0, 1, 2], 100)
        assert sum(integers.values()) == 100
        assert all(isinstance(value, int) for value in integers.values())

    def test_largest_remainder_wins_the_leftover(self):
        fractional = {0: 1.6, 1: 1.4}
        integers = integer_shares(fractional, [0, 1], 3)
        assert integers == {0: 2, 1: 1}

    def test_zero_fractional_share_stays_zero(self):
        fractional = {0: 10.0, 1: 0.0}
        integers = integer_shares(fractional, [0, 1], 10)
        assert integers[1] == 0

    def test_ties_favour_higher_priority(self):
        fractional = {0: 1.5, 1: 1.5}
        integers = integer_shares(fractional, [0, 1], 3)
        assert integers[0] == 2
        assert integers[1] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            integer_shares({0: 1.0}, [0], 0)


class TestEpsilonShares:
    def test_end_to_end_sums_to_m(self):
        jobs = [make_job(0, 2.0, tasks=1), make_job(1, 1.0, tasks=4),
                make_job(2, 1.0, tasks=8)]
        shares = epsilon_shares(jobs, num_machines=50, epsilon=0.6, r=0.0)
        assert sum(shares.values()) == 50

    def test_highest_priority_job_gets_largest_share(self):
        # Job 0 has one short task -> highest w/U priority.
        jobs = [make_job(0, 1.0, tasks=1), make_job(1, 1.0, tasks=10)]
        shares = epsilon_shares(jobs, num_machines=30, epsilon=0.6, r=0.0)
        assert shares[0] > shares[1]

    def test_epsilon_one_matches_weight_ratio(self):
        jobs = [make_job(0, 3.0, tasks=2), make_job(1, 1.0, tasks=2)]
        shares = epsilon_shares(jobs, num_machines=40, epsilon=1.0, r=0.0)
        assert shares[0] == 30
        assert shares[1] == 10

    def test_empty_job_list(self):
        assert epsilon_shares([], 10, 0.5, 0.0) == {}
