"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.distributions import Deterministic, LogNormal
from repro.workload.generators import (
    bulk_arrival_trace,
    poisson_trace,
    uniform_trace,
)
from repro.workload.job import Job, JobSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_spec() -> JobSpec:
    """A small two-phase job spec with deterministic 10 s tasks."""
    return JobSpec(
        job_id=0,
        arrival_time=0.0,
        weight=2.0,
        num_map_tasks=3,
        num_reduce_tasks=2,
        map_duration=Deterministic(10.0),
        reduce_duration=Deterministic(10.0),
    )


@pytest.fixture
def noisy_spec() -> JobSpec:
    """A job spec with log-normal task durations (mean 10, std 4)."""
    return JobSpec(
        job_id=1,
        arrival_time=5.0,
        weight=1.0,
        num_map_tasks=4,
        num_reduce_tasks=1,
        map_duration=LogNormal(10.0, 4.0),
        reduce_duration=LogNormal(20.0, 8.0),
    )


@pytest.fixture
def small_job(small_spec: JobSpec) -> Job:
    """Runtime job built from ``small_spec``."""
    return Job.from_spec(small_spec)


@pytest.fixture
def tiny_bulk_trace():
    """Three deterministic jobs arriving at time zero (offline setting)."""
    return bulk_arrival_trace([2, 4, 8], mean_duration=10.0, cv=0.0)


@pytest.fixture
def small_online_trace():
    """A compact online trace with random sizes, weights and durations."""
    return poisson_trace(
        num_jobs=25,
        arrival_rate=0.5,
        mean_tasks_per_job=6,
        mean_duration=8.0,
        cv=0.5,
        seed=7,
    )


@pytest.fixture
def deterministic_online_trace():
    """Identical deterministic jobs arriving 5 s apart."""
    return uniform_trace(
        num_jobs=6,
        tasks_per_job=4,
        reduce_tasks_per_job=2,
        mean_duration=10.0,
        cv=0.0,
        inter_arrival=5.0,
    )
