"""Differential lockdown of the stage-DAG job model (PR 6 tentpole).

The engine's ``Job`` was generalised from hard-coded map→reduce to an
arbitrary stage DAG, with the legacy two-phase spec compiling to the
canonical 2-node DAG (stage ``map`` with no dependencies, stage ``reduce``
depending on it).  These tests pin the bit-identity contract the refactor
promised: a map→reduce job declared *explicitly* through the DAG path
(:meth:`JobSpec.from_stages`) produces a byte-identical
:class:`~repro.simulation.metrics.SimulationResult` fingerprint to the
same job declared through the pre-DAG two-phase fields -- for every legacy
scheduler and composition triple, serially, pooled (``workers=2``), and
under the ``zipf-hetero`` and ``MachineFailures`` scenario presets.

Fingerprints hash every per-job record and counter (see
``SimulationResult.canonical_dict``), so equality here means the DAG
compilation changed *nothing* observable about two-phase scheduling.
"""

from __future__ import annotations

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.scenarios import MachineFailures, ScenarioSpec, scenario_preset
from repro.schedulers import (
    FIFOScheduler,
    FairScheduler,
    LATEScheduler,
    MantriScheduler,
    SCAScheduler,
    SRPTScheduler,
)
from repro.simulation.experiment_runner import (
    ExperimentRunner,
    RunSpec,
    SchedulerSpec,
)
from repro.workload.generators import poisson_trace
from repro.workload.job import JobSpec, StageSpec
from repro.workload.trace import Trace

#: The seven legacy schedulers (the named points of the policy grid).
LEGACY_SCHEDULER_SPECS = (
    ("SRPTMS+C", SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0})),
    ("SCA", SchedulerSpec(SCAScheduler)),
    ("Mantri", SchedulerSpec(MantriScheduler)),
    ("LATE", SchedulerSpec(LATEScheduler)),
    ("SRPT", SchedulerSpec(SRPTScheduler, {"r": 3.0})),
    ("Fair", SchedulerSpec(FairScheduler)),
    ("FIFO", SchedulerSpec(FIFOScheduler)),
)

#: Three policy-kernel composition triples riding along (one per axis
#: combination class: pure ordering, speculation, share-based cloning).
COMPOSITION_TRIPLES = (
    "srpt+greedy+none",
    "fair+greedy+late",
    "fifo+share+clone",
)

ALL_SCHEDULER_IDS = tuple(name for name, _ in LEGACY_SCHEDULER_SPECS) + (
    COMPOSITION_TRIPLES
)


def _composition_spec(triple: str) -> SchedulerSpec:
    from repro.simulation.scheduler_api import ComposedScheduler

    ordering, allocation, redundancy = triple.split("+")
    return SchedulerSpec(
        ComposedScheduler,
        {
            "ordering": ordering,
            "allocation": allocation,
            "redundancy": redundancy,
            "epsilon": 0.6,
            "r": 3.0,
        },
    )


def _scheduler_spec(name: str) -> SchedulerSpec:
    for legacy_name, spec in LEGACY_SCHEDULER_SPECS:
        if legacy_name == name:
            return spec
    return _composition_spec(name)


def _as_explicit_dag(spec: JobSpec) -> JobSpec:
    """Re-declare a legacy two-phase spec through the explicit DAG path.

    Uses the *same* duration-distribution objects and the canonical stage
    names, so task ids, presampling order and RNG consumption are
    identical by construction -- the differential isolates the DAG code
    path itself.
    """
    assert spec.stages is None, "expected a legacy two-phase spec"
    return JobSpec.from_stages(
        job_id=spec.job_id,
        arrival_time=spec.arrival_time,
        weight=spec.weight,
        stages=(
            StageSpec(
                name="map",
                num_tasks=spec.num_map_tasks,
                duration=spec.map_duration,
            ),
            StageSpec(
                name="reduce",
                num_tasks=spec.num_reduce_tasks,
                duration=spec.reduce_duration,
                deps=(0,),
            ),
        ),
    )


@pytest.fixture(scope="module")
def trace_pair():
    """The same map→reduce trace, declared legacy-style and DAG-style."""
    legacy = poisson_trace(
        num_jobs=20,
        arrival_rate=0.5,
        mean_tasks_per_job=6,
        mean_duration=8.0,
        cv=0.5,
        seed=7,
    )
    explicit = Trace(
        tuple(_as_explicit_dag(spec) for spec in legacy), name="explicit-dag"
    )
    for before, after in zip(legacy, explicit):
        assert after.stages is not None
        assert after.num_map_tasks == before.num_map_tasks
        assert after.num_reduce_tasks == before.num_reduce_tasks
    return legacy, explicit


SCENARIOS = {
    "homogeneous": None,
    "zipf-hetero": "zipf-hetero",
    "failures": ScenarioSpec(
        failures=MachineFailures(rate=0.001, mean_repair=20.0)
    ),
}


def _resolve_scenario(key: str):
    scenario = SCENARIOS[key]
    if isinstance(scenario, str):
        return scenario_preset(scenario)
    return scenario


def _fingerprints(trace, scheduler_spec, *, scenario, workers, seeds=(0, 1)):
    specs = [
        RunSpec(
            trace=trace,
            scheduler=scheduler_spec,
            num_machines=8,
            seed=seed,
            scenario=scenario,
        )
        for seed in seeds
    ]
    results = ExperimentRunner(workers=workers).run(specs)
    return [result.fingerprint() for result in results]


class TestDagCompilationBitIdentity:
    """Explicit 2-node DAG == legacy two-phase, for every policy."""

    @pytest.mark.parametrize("name", ALL_SCHEDULER_IDS)
    def test_serial(self, trace_pair, name):
        legacy, explicit = trace_pair
        scheduler = _scheduler_spec(name)
        assert _fingerprints(
            legacy, scheduler, scenario=None, workers=1
        ) == _fingerprints(explicit, scheduler, scenario=None, workers=1)

    @pytest.mark.parametrize("name", ALL_SCHEDULER_IDS)
    def test_pooled(self, trace_pair, name):
        legacy, explicit = trace_pair
        scheduler = _scheduler_spec(name)
        assert _fingerprints(
            legacy, scheduler, scenario=None, workers=2
        ) == _fingerprints(explicit, scheduler, scenario=None, workers=2)

    @pytest.mark.parametrize("name", ALL_SCHEDULER_IDS)
    @pytest.mark.parametrize("scenario_key", ["zipf-hetero", "failures"])
    def test_under_scenarios(self, trace_pair, name, scenario_key):
        legacy, explicit = trace_pair
        scheduler = _scheduler_spec(name)
        scenario = _resolve_scenario(scenario_key)
        assert _fingerprints(
            legacy, scheduler, scenario=scenario, workers=1
        ) == _fingerprints(explicit, scheduler, scenario=scenario, workers=1)

    def test_records_report_two_stages_both_ways(self, trace_pair):
        legacy, explicit = trace_pair
        scheduler = _scheduler_spec("FIFO")
        for trace in (legacy, explicit):
            spec = RunSpec(trace=trace, scheduler=scheduler, num_machines=8)
            result = ExperimentRunner(workers=1).run([spec])[0]
            assert all(record.num_stages == 2 for record in result.records)
