"""Unit tests for the speedup functions of Section III-A."""

from __future__ import annotations

import pytest

from repro.core.speedup import (
    CappedLinearSpeedup,
    LogSpeedup,
    NoSpeedup,
    ParetoSpeedup,
    PowerSpeedup,
    check_speedup_properties,
)

STRICT_SPEEDUPS = [
    ParetoSpeedup(alpha=1.5),
    ParetoSpeedup(alpha=2.0),
    ParetoSpeedup(alpha=4.0),
    PowerSpeedup(beta=0.5),
    PowerSpeedup(beta=1.0),
    LogSpeedup(scale=1.0),
    LogSpeedup(scale=0.5),
]
VALID_SPEEDUPS = STRICT_SPEEDUPS + [CappedLinearSpeedup(cap=3.0)]


class TestPaperProperties:
    @pytest.mark.parametrize("speedup", STRICT_SPEEDUPS, ids=repr)
    def test_satisfies_both_paper_properties(self, speedup):
        check_speedup_properties(speedup)

    def test_capped_linear_is_concave_but_not_strictly_increasing(self):
        # Flat beyond the cap: valid as a concave model, fails strictness.
        check_speedup_properties(
            CappedLinearSpeedup(cap=3.0), require_strictly_increasing=False
        )
        with pytest.raises(AssertionError):
            check_speedup_properties(CappedLinearSpeedup(cap=3.0))

    @pytest.mark.parametrize("speedup", VALID_SPEEDUPS, ids=repr)
    def test_one_copy_gives_no_speedup(self, speedup):
        assert speedup(1) == pytest.approx(1.0)

    @pytest.mark.parametrize("speedup", VALID_SPEEDUPS, ids=repr)
    def test_speedup_never_exceeds_copy_count(self, speedup):
        for x in range(1, 20):
            assert speedup(x) <= x + 1e-9

    def test_no_speedup_fails_strict_increase(self):
        with pytest.raises(AssertionError):
            check_speedup_properties(NoSpeedup())
        # It is still a valid non-increasing degenerate model.
        check_speedup_properties(NoSpeedup(), require_strictly_increasing=False)


class TestParetoSpeedup:
    def test_closed_form(self):
        speedup = ParetoSpeedup(alpha=2.0)
        # s(r) = (r*alpha - 1) / (r*(alpha-1)) with alpha=2: s(2) = 3/2.
        assert speedup(2) == pytest.approx(1.5)
        assert speedup(4) == pytest.approx(7.0 / 4.0)

    def test_asymptote_is_alpha_over_alpha_minus_one(self):
        speedup = ParetoSpeedup(alpha=2.0)
        assert speedup(10_000) == pytest.approx(2.0, rel=1e-3)

    def test_requires_alpha_above_one(self):
        with pytest.raises(ValueError):
            ParetoSpeedup(alpha=1.0)
        with pytest.raises(ValueError):
            ParetoSpeedup(alpha=0.5)

    def test_rejects_copy_count_below_one(self):
        with pytest.raises(ValueError):
            ParetoSpeedup(alpha=2.0)(0.5)


class TestOtherFamilies:
    def test_power_speedup_values(self):
        assert PowerSpeedup(beta=0.5)(4) == pytest.approx(2.0)

    def test_power_validation(self):
        with pytest.raises(ValueError):
            PowerSpeedup(beta=0.0)
        with pytest.raises(ValueError):
            PowerSpeedup(beta=1.2)

    def test_log_speedup_values(self):
        speedup = LogSpeedup(scale=1.0)
        assert speedup(1) == 1.0
        assert speedup(2) == pytest.approx(1.6931, rel=1e-3)

    def test_log_validation(self):
        with pytest.raises(ValueError):
            LogSpeedup(scale=0.0)
        with pytest.raises(ValueError):
            LogSpeedup(scale=1.5)

    def test_capped_linear_values(self):
        speedup = CappedLinearSpeedup(cap=3.0)
        assert speedup(2) == 2.0
        assert speedup(5) == 3.0

    def test_capped_linear_validation(self):
        with pytest.raises(ValueError):
            CappedLinearSpeedup(cap=0.5)

    def test_no_speedup_is_always_one(self):
        speedup = NoSpeedup()
        assert speedup(1) == 1.0
        assert speedup(50) == 1.0
        with pytest.raises(ValueError):
            speedup(0)


class TestDerivedQuantities:
    def test_expected_duration_divides_by_speedup(self):
        speedup = ParetoSpeedup(alpha=2.0)
        assert speedup.expected_duration(30.0, 2) == pytest.approx(20.0)

    def test_expected_duration_validation(self):
        speedup = ParetoSpeedup(alpha=2.0)
        with pytest.raises(ValueError):
            speedup.expected_duration(0.0, 2)
        with pytest.raises(ValueError):
            speedup.expected_duration(10.0, 0)

    def test_marginal_gain_is_positive_and_decreasing(self):
        speedup = ParetoSpeedup(alpha=2.0)
        gains = [speedup.marginal_gain(100.0, copies) for copies in range(1, 8)]
        assert all(gain > 0 for gain in gains)
        assert gains == sorted(gains, reverse=True)

    def test_no_speedup_has_zero_marginal_gain(self):
        assert NoSpeedup().marginal_gain(100.0, 1) == 0.0

    def test_check_properties_validation(self):
        with pytest.raises(ValueError):
            check_speedup_properties(ParetoSpeedup(2.0), max_copies=1)
