"""Tests for the parallel experiment runner.

The load-bearing guarantee: ``ExperimentRunner(workers=N)`` produces
*byte-identical* results to ``workers=1`` for the same seed list, for every
scheduling policy in the repository.  Equality is checked through
:meth:`SimulationResult.fingerprint`, which hashes every per-job record and
counter (wall-clock runtime excluded).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.schedulers import (
    FIFOScheduler,
    FairScheduler,
    LATEScheduler,
    MantriScheduler,
    SCAScheduler,
    SRPTScheduler,
)
from repro.simulation.experiment_runner import (
    ExperimentRunner,
    RunSpec,
    SchedulerSpec,
    TraceSpec,
    default_workers,
    sweep_specs,
)
from repro.simulation import run_replications, run_simulation
from repro.workload.generators import poisson_trace

#: One spec per scheduling policy shipped with the repository.
ALL_SCHEDULER_SPECS = [
    SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0}),
    SchedulerSpec(SCAScheduler),
    SchedulerSpec(MantriScheduler),
    SchedulerSpec(LATEScheduler),
    SchedulerSpec(SRPTScheduler, {"r": 3.0}),
    SchedulerSpec(FairScheduler),
    SchedulerSpec(FIFOScheduler),
]

SEEDS = (0, 1, 2, 3)


def _specs_for(scheduler_spec, trace, num_machines=8):
    base = RunSpec(trace=trace, scheduler=scheduler_spec, num_machines=num_machines)
    return [base.with_seed(seed) for seed in SEEDS]


class TestParallelSerialEquivalence:
    """workers=4 must be bit-identical to workers=1 for every scheduler."""

    @pytest.mark.parametrize(
        "scheduler_spec",
        ALL_SCHEDULER_SPECS,
        ids=lambda s: s.scheduler_cls.__name__,
    )
    def test_workers4_matches_workers1(self, scheduler_spec, small_online_trace):
        specs = _specs_for(scheduler_spec, small_online_trace)
        serial = ExperimentRunner(workers=1).run(specs)
        parallel = ExperimentRunner(workers=4).run(specs)
        assert [r.canonical_dict() for r in serial] == [
            r.canonical_dict() for r in parallel
        ]
        assert [r.fingerprint() for r in serial] == [
            r.fingerprint() for r in parallel
        ]

    def test_trace_spec_source_matches_inline_trace(self, small_online_trace):
        """A TraceSpec rebuilt in the worker yields the same results as the
        equivalent pre-built Trace shipped by pickle."""
        trace_spec = TraceSpec(
            factory=poisson_trace,
            kwargs={
                "num_jobs": 25,
                "arrival_rate": 0.5,
                "mean_tasks_per_job": 6,
                "mean_duration": 8.0,
                "cv": 0.5,
                "seed": 7,
            },
        )
        scheduler = SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0})
        inline = ExperimentRunner(workers=2).run(
            _specs_for(scheduler, small_online_trace)
        )
        rebuilt = ExperimentRunner(workers=2).run(_specs_for(scheduler, trace_spec))
        assert [r.fingerprint() for r in inline] == [
            r.fingerprint() for r in rebuilt
        ]

    def test_run_replications_workers_param(self, small_online_trace):
        scheduler = SchedulerSpec(SCAScheduler)
        serial = run_replications(
            small_online_trace, scheduler, 8, seeds=SEEDS, workers=1
        )
        parallel = run_replications(
            small_online_trace, scheduler, 8, seeds=SEEDS, workers=4
        )
        assert serial.scheduler_name == parallel.scheduler_name
        assert [r.fingerprint() for r in serial.results] == [
            r.fingerprint() for r in parallel.results
        ]
        assert serial.mean_flowtime == parallel.mean_flowtime
        assert serial.weighted_mean_flowtime == parallel.weighted_mean_flowtime

    def test_matches_legacy_direct_simulation(self, small_online_trace):
        """RunSpec.execute reproduces run_simulation exactly."""
        spec = RunSpec(
            trace=small_online_trace,
            scheduler=SchedulerSpec(FIFOScheduler),
            num_machines=8,
            seed=5,
        )
        direct = run_simulation(small_online_trace, FIFOScheduler(), 8, seed=5)
        assert spec.execute().fingerprint() == direct.fingerprint()


class TestRunnerMechanics:
    def test_results_keep_spec_order(self, small_online_trace):
        scheduler = SchedulerSpec(FIFOScheduler)
        specs = _specs_for(scheduler, small_online_trace)
        results = ExperimentRunner(workers=2).run(specs)
        assert [r.seed for r in results] == list(SEEDS)

    def test_empty_spec_list(self):
        assert ExperimentRunner(workers=2).run([]) == []

    def test_run_grouped_by_tag(self, small_online_trace):
        points = [
            (0.4, SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.4, "r": 0.0}), 8),
            (0.8, SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.8, "r": 0.0}), 8),
        ]
        specs = sweep_specs(small_online_trace, points, seeds=(0, 1))
        grouped = ExperimentRunner(workers=1).run_grouped(specs)
        assert list(grouped) == [0.4, 0.8]
        assert [r.seed for r in grouped[0.4]] == [0, 1]
        assert [r.seed for r in grouped[0.8]] == [0, 1]

    def test_sweep_specs_requires_seeds(self, small_online_trace):
        with pytest.raises(ValueError):
            sweep_specs(small_online_trace, [], seeds=())

    def test_run_replications_requires_seeds(self, small_online_trace):
        with pytest.raises(ValueError):
            ExperimentRunner().run_replications(
                small_online_trace, SchedulerSpec(FIFOScheduler), 8, seeds=()
            )

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ExperimentRunner(workers=-1)
        with pytest.raises(ValueError):
            ExperimentRunner(workers=2, chunksize=0)
        # 0 (the CLI spelling) and None both mean "all usable CPUs".
        assert ExperimentRunner(workers=0).workers == default_workers()
        assert ExperimentRunner(workers=None).workers == default_workers()
        assert default_workers() >= 1

    def test_run_spec_validation(self, small_online_trace):
        with pytest.raises(ValueError):
            RunSpec(
                trace=small_online_trace,
                scheduler=SchedulerSpec(FIFOScheduler),
                num_machines=0,
            )
        with pytest.raises(TypeError):
            RunSpec(trace=small_online_trace, scheduler="FIFO", num_machines=4)


class TestSpecPicklability:
    def test_scheduler_spec_roundtrip(self):
        spec = SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0})
        clone = pickle.loads(pickle.dumps(spec))
        scheduler = clone.build()
        assert isinstance(scheduler, SRPTMSCScheduler)

    def test_scheduler_spec_rejects_non_scheduler(self):
        with pytest.raises(TypeError):
            SchedulerSpec(dict)

    def test_run_spec_roundtrip(self, small_online_trace):
        spec = RunSpec(
            trace=small_online_trace,
            scheduler=SchedulerSpec(SCAScheduler),
            num_machines=8,
            seed=3,
            tag="sca",
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.execute().fingerprint() == spec.execute().fingerprint()

    def test_trace_spec_build_and_cache_key(self):
        spec = TraceSpec(
            factory=poisson_trace,
            kwargs={
                "num_jobs": 5,
                "arrival_rate": 1.0,
                "mean_tasks_per_job": 3,
                "mean_duration": 5.0,
                "cv": 0.0,
                "seed": 1,
            },
        )
        trace = spec.build()
        assert trace.num_jobs == 5
        assert spec.cache_key() == pickle.loads(pickle.dumps(spec)).cache_key()

    def test_trace_spec_rejects_non_trace_factory(self):
        spec = TraceSpec(factory=dict, kwargs={})
        with pytest.raises(TypeError):
            spec.build()


class TestOnResultCallback:
    """Streaming-progress hook: on_result(spec, result, cache_hit)."""

    def test_serial_callback_sees_every_spec_once(self, small_online_trace):
        specs = _specs_for(SchedulerSpec(FIFOScheduler), small_online_trace)
        events = []
        runner = ExperimentRunner(workers=1)
        results = runner.run(
            specs, on_result=lambda s, r, hit: events.append((s, r, hit))
        )
        assert [s for s, _, _ in events] == specs
        assert [r for _, r, _ in events] == results
        assert all(hit is False for _, _, hit in events)

    def test_pooled_callback_fires_in_parent_for_every_spec(
        self, small_online_trace
    ):
        specs = _specs_for(SchedulerSpec(FIFOScheduler), small_online_trace)
        seen = []
        runner = ExperimentRunner(workers=2)
        results = runner.run(specs, on_result=lambda s, r, hit: seen.append((s, r)))
        # Batches complete in any order, but every spec is reported exactly
        # once, with its own result object, from the parent process.
        assert sorted(id(s) for s, _ in seen) == sorted(id(s) for s in specs)
        by_spec = {id(s): r for s, r in seen}
        for spec, result in zip(specs, results):
            assert by_spec[id(spec)] is result

    def test_cache_hits_are_flagged(self, small_online_trace, tmp_path):
        specs = _specs_for(SchedulerSpec(FIFOScheduler), small_online_trace)
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        cold = []
        runner.run(specs, on_result=lambda s, r, hit: cold.append(hit))
        assert cold == [False] * len(specs)
        assert runner.last_dispatch_stats["cache_hits"] == 0
        warm = []
        runner.run(specs, on_result=lambda s, r, hit: warm.append(hit))
        assert warm == [True] * len(specs)
        assert runner.last_dispatch_stats["cache_hits"] == len(specs)

    def test_mixed_hits_report_hits_before_executions(
        self, small_online_trace, tmp_path
    ):
        specs = _specs_for(SchedulerSpec(FIFOScheduler), small_online_trace)
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        runner.run(specs[:2])
        events = []
        runner.run(specs, on_result=lambda s, r, hit: events.append((s.seed, hit)))
        assert events[:2] == [(specs[0].seed, True), (specs[1].seed, True)]
        assert sorted(events[2:]) == [(specs[2].seed, False), (specs[3].seed, False)]
        assert runner.last_dispatch_stats["cache_hits"] == 2

    def test_constructor_callback_and_per_run_override(self, small_online_trace):
        specs = _specs_for(SchedulerSpec(FIFOScheduler), small_online_trace)[:1]
        default_events, override_events = [], []
        runner = ExperimentRunner(
            workers=1,
            on_result=lambda s, r, hit: default_events.append(s),
        )
        runner.run(specs)
        assert default_events == specs
        runner.run(specs, on_result=lambda s, r, hit: override_events.append(s))
        assert override_events == specs
        assert default_events == specs  # the override replaced, not stacked

    def test_result_is_persisted_before_the_callback_observes_it(
        self, small_online_trace, tmp_path
    ):
        """Resume contract: once a consumer saw a result, a restarted sweep
        finds it in the cache."""
        from repro.simulation.results_store import run_spec_fingerprint

        specs = _specs_for(SchedulerSpec(FIFOScheduler), small_online_trace)[:2]
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        cached_at_callback = []

        def probe(spec, result, cache_hit):
            entry = runner.store.load(run_spec_fingerprint(spec))
            cached_at_callback.append(
                entry is not None and entry.fingerprint() == result.fingerprint()
            )

        runner.run(specs, on_result=probe)
        assert cached_at_callback == [True, True]


class TestWorkerSidePersistence:
    """Pooled runs persist results inside the workers, not the parent."""

    def test_pool_persists_worker_side_and_resumes_warm(
        self, small_online_trace, tmp_path
    ):
        specs = _specs_for(SchedulerSpec(FIFOScheduler), small_online_trace)
        runner = ExperimentRunner(workers=2, cache_dir=tmp_path)
        cold = runner.run(specs)
        assert runner.last_run_stats["executed"] == len(specs)
        # Persistence happened inside the pool workers: the parent-side
        # store object never wrote an entry...
        assert runner.store.writes == 0
        # ...yet every spec landed on disk, so a fresh runner resumes
        # entirely from cache with bit-identical results.
        resumed = ExperimentRunner(workers=2, cache_dir=tmp_path)
        warm = resumed.run(specs)
        assert resumed.last_run_stats == {
            "executed": 0,
            "cache_hits": len(specs),
            "uncacheable": 0,
        }
        assert [r.fingerprint() for r in warm] == [
            r.fingerprint() for r in cold
        ]

    def test_serial_path_keeps_parent_side_writes(
        self, small_online_trace, tmp_path
    ):
        specs = _specs_for(SchedulerSpec(FIFOScheduler), small_online_trace)
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        runner.run(specs)
        # No pool, no delegation: the parent store wrote every entry
        # (preserving the persist-before-observe callback ordering).
        assert runner.store.writes == len(specs)
