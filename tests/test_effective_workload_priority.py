"""Unit tests for effective workloads (Eqs. 2-4), f_i^s and SRPT priorities."""

from __future__ import annotations

import pytest

from repro.core.effective_workload import (
    accumulated_higher_priority_workload,
    effective_task_workload,
    remaining_effective_workload,
    total_effective_workload,
)
from repro.core.priority import (
    offline_priority,
    online_priority,
    sort_jobs_by_remaining_priority,
    sort_specs_by_priority,
    srpt_priority,
)
from repro.workload.distributions import Deterministic, LogNormal
from repro.workload.job import Job, JobSpec, TaskCopy


def make_spec(job_id=0, weight=1.0, maps=2, reduces=1, mean=10.0, std=0.0) -> JobSpec:
    duration = Deterministic(mean) if std == 0 else LogNormal(mean, std)
    return JobSpec(
        job_id=job_id,
        arrival_time=0.0,
        weight=weight,
        num_map_tasks=maps,
        num_reduce_tasks=reduces,
        map_duration=duration,
        reduce_duration=duration,
    )


class TestEffectiveTaskWorkload:
    def test_formula(self):
        assert effective_task_workload(10.0, 2.0, 3.0) == pytest.approx(16.0)

    def test_r_zero(self):
        assert effective_task_workload(10.0, 100.0, 0.0) == 10.0

    @pytest.mark.parametrize("mean,std,r", [(-1, 0, 0), (1, -1, 0), (1, 0, -1)])
    def test_validation(self, mean, std, r):
        with pytest.raises(ValueError):
            effective_task_workload(mean, std, r)


class TestTotalAndRemainingWorkload:
    def test_total_matches_spec_method(self):
        spec = make_spec(maps=3, reduces=2, mean=10.0, std=2.0)
        assert total_effective_workload(spec, 3.0) == pytest.approx(
            spec.effective_workload(3.0)
        )

    def test_remaining_shrinks_as_tasks_are_scheduled(self):
        spec = make_spec(maps=2, reduces=1, mean=10.0)
        job = Job.from_spec(spec)
        before = remaining_effective_workload(job, 0.0)
        copy = TaskCopy(copy_id=0, task=job.map_tasks[0], machine_id=0,
                        launch_time=0.0, workload=10.0)
        job.map_tasks[0].add_copy(copy)
        after = remaining_effective_workload(job, 0.0)
        assert after == pytest.approx(before - 10.0)


class TestAccumulatedWorkload:
    def test_single_job_counts_itself(self):
        spec = make_spec(job_id=0, maps=2, reduces=1, mean=10.0)
        accumulated = accumulated_higher_priority_workload([spec], 0.0)
        assert accumulated[0] == pytest.approx(30.0)

    def test_ordering_by_priority(self):
        # Job 0: phi=30 weight=1 -> priority 1/30.  Job 1: phi=10*11=110...
        small = make_spec(job_id=0, weight=1.0, maps=2, reduces=1)   # phi = 30
        large = make_spec(job_id=1, weight=1.0, maps=9, reduces=2)   # phi = 110
        accumulated = accumulated_higher_priority_workload([small, large], 0.0)
        assert accumulated[0] == pytest.approx(30.0)
        assert accumulated[1] == pytest.approx(140.0)

    def test_weights_change_the_order(self):
        small = make_spec(job_id=0, weight=1.0, maps=2, reduces=1)   # prio 1/30
        large = make_spec(job_id=1, weight=10.0, maps=9, reduces=2)  # prio 10/110
        accumulated = accumulated_higher_priority_workload([small, large], 0.0)
        # The weighted large job now has higher priority than the small one.
        assert accumulated[1] == pytest.approx(110.0)
        assert accumulated[0] == pytest.approx(140.0)

    def test_ties_count_each_other(self):
        a = make_spec(job_id=0, maps=2, reduces=1)
        b = make_spec(job_id=1, maps=2, reduces=1)
        accumulated = accumulated_higher_priority_workload([a, b], 0.0)
        assert accumulated[0] == accumulated[1] == pytest.approx(60.0)

    def test_r_increases_accumulated_workload(self):
        spec = make_spec(job_id=0, mean=10.0, std=2.0)
        low = accumulated_higher_priority_workload([spec], 0.0)[0]
        high = accumulated_higher_priority_workload([spec], 3.0)[0]
        assert high > low


class TestPriorities:
    def test_srpt_priority_formula(self):
        assert srpt_priority(2.0, 10.0) == pytest.approx(0.2)

    def test_srpt_priority_zero_workload_is_infinite(self):
        assert srpt_priority(1.0, 0.0) == float("inf")

    def test_srpt_priority_validation(self):
        with pytest.raises(ValueError):
            srpt_priority(0.0, 1.0)
        with pytest.raises(ValueError):
            srpt_priority(1.0, -1.0)

    def test_offline_priority_prefers_small_jobs(self):
        small = make_spec(job_id=0, maps=1, reduces=0)
        large = make_spec(job_id=1, maps=10, reduces=0)
        assert offline_priority(small, 0.0) > offline_priority(large, 0.0)

    def test_online_priority_rises_as_job_progresses(self):
        job = Job.from_spec(make_spec(maps=3, reduces=1))
        before = online_priority(job, 0.0)
        copy = TaskCopy(copy_id=0, task=job.map_tasks[0], machine_id=0,
                        launch_time=0.0, workload=10.0)
        job.map_tasks[0].add_copy(copy)
        assert online_priority(job, 0.0) > before

    def test_sort_specs_by_priority(self):
        small = make_spec(job_id=5, maps=1, reduces=0)
        large = make_spec(job_id=3, maps=20, reduces=0)
        ordered = sort_specs_by_priority([large, small], 0.0)
        assert [spec.job_id for spec in ordered] == [5, 3]

    def test_sort_jobs_breaks_ties_by_id(self):
        jobs = [Job.from_spec(make_spec(job_id=i)) for i in (4, 2, 9)]
        ordered = sort_jobs_by_remaining_priority(jobs, 0.0)
        assert [job.job_id for job in ordered] == [2, 4, 9]
