"""Differential tests for the ``sample_batch`` RNG-consumption contract.

``DurationDistribution.sample_batch(rng, n)`` must advance the generator
exactly as ``n`` successive size-1 draws would and return the same values
in the same order (see its docstring).  The engine's arrival pre-sampling,
the stream pump and ``Trace.statistics`` all rely on this to batch draws
without moving a single simulation fingerprint.  Each case here compares
the batched draw against the per-task path *and* compares the final
generator states, so a distribution whose vectorized draw consumed a
different number of bits -- even one returning identical values -- fails.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import ExperimentRunner, RunSpec, SchedulerSpec
from repro.schedulers.fifo import FIFOScheduler
from repro.workload.distributions import (
    BoundedPareto,
    Deterministic,
    Empirical,
    Exponential,
    Floored,
    LogNormal,
    ShiftedExponential,
    TruncatedNormal,
    Uniform,
)
from repro.workload.stream import (
    StreamSpec,
    stream_dag_chain_jobs,
    stream_heavy_tail_jobs,
    stream_uniform_jobs,
)

#: Every concrete distribution shape the workload layer can produce,
#: including the wrapper combinators (scaled / floored) used by the
#: straggler models and the Google-trace generator.
DISTRIBUTIONS = [
    pytest.param(Deterministic(7.5), id="deterministic"),
    pytest.param(Uniform(2.0, 9.0), id="uniform"),
    pytest.param(Exponential(4.0), id="exponential"),
    pytest.param(ShiftedExponential(1.5, 3.0), id="shifted-exponential"),
    pytest.param(BoundedPareto(1.0, 50.0, 1.2), id="bounded-pareto"),
    pytest.param(LogNormal(10.0, 6.0), id="lognormal"),
    pytest.param(LogNormal(10.0, 0.0), id="lognormal-degenerate"),
    pytest.param(TruncatedNormal(5.0, 2.0), id="truncated-normal"),
    pytest.param(Floored(LogNormal(20.0, 30.0), 12.8), id="floored-lognormal"),
    pytest.param(Empirical([3.0, 5.5, 8.0, 13.0]), id="empirical"),
    pytest.param(BoundedPareto(1.0, 50.0, 1.2).scaled(2.5), id="scaled-pareto"),
]


@pytest.mark.parametrize("dist", DISTRIBUTIONS)
@pytest.mark.parametrize("n", [1, 2, 7, 64])
def test_batch_equals_sequential_draws_and_rng_state(dist, n):
    batched_rng = np.random.default_rng(1234)
    sequential_rng = np.random.default_rng(1234)
    batched = dist.sample_batch(batched_rng, n)
    sequential = np.array([dist.sample_one(sequential_rng) for _ in range(n)])
    assert np.array_equal(batched, sequential)
    # Same values is necessary but not sufficient: the batched draw must
    # also leave the generator in the identical state, or the *next*
    # consumer of the shared stream diverges.
    assert (
        batched_rng.bit_generator.state == sequential_rng.bit_generator.state
    )


@pytest.mark.parametrize("dist", DISTRIBUTIONS)
def test_batch_split_and_fusion_are_invisible(dist):
    n, split = 32, 13
    fused_rng = np.random.default_rng(99)
    split_rng = np.random.default_rng(99)
    fused = dist.sample_batch(fused_rng, n)
    parts = np.concatenate(
        [dist.sample_batch(split_rng, split), dist.sample_batch(split_rng, n - split)]
    )
    assert np.array_equal(fused, parts)
    assert fused_rng.bit_generator.state == split_rng.bit_generator.state


@pytest.mark.parametrize("dist", DISTRIBUTIONS)
def test_sample_list_matches_sample_batch(dist):
    list_rng = np.random.default_rng(7)
    batch_rng = np.random.default_rng(7)
    assert dist.sample_list(list_rng, 17) == dist.sample_batch(batch_rng, 17).tolist()
    assert list_rng.bit_generator.state == batch_rng.bit_generator.state


#: End-to-end streams whose engine runs consume the batched path at every
#: arrival: a flat two-stage stream, a multi-round DAG chain (per-round
#: lognormal durations) and a heavy-tailed stream (bounded-Pareto task
#: counts, lognormal durations).
_STREAM_CASES = [
    pytest.param(
        StreamSpec(
            factory=stream_uniform_jobs,
            num_jobs=60,
            kwargs={"tasks_per_job": 4, "reduce_tasks_per_job": 2, "inter_arrival": 3.0},
            name="uniform-diff",
        ),
        id="uniform-stream",
    ),
    pytest.param(
        StreamSpec(
            factory=stream_dag_chain_jobs,
            num_jobs=40,
            kwargs={
                "num_rounds": 3,
                "mean_tasks_per_round": 3.0,
                "arrival_rate": 0.2,
                "seed": 11,
            },
            name="dag-chain-diff",
        ),
        id="dag-chain-stream",
    ),
    pytest.param(
        StreamSpec(
            factory=stream_heavy_tail_jobs,
            num_jobs=40,
            kwargs={"arrival_rate": 0.15, "max_tasks": 40, "seed": 5},
            name="heavy-tail-diff",
        ),
        id="heavy-tail-stream",
    ),
]


@pytest.mark.parametrize("spec", _STREAM_CASES)
def test_engine_batched_sampling_identical_serial_vs_pooled(spec):
    run = RunSpec(
        trace=spec,
        scheduler=SchedulerSpec(FIFOScheduler),
        num_machines=8,
        seed=3,
    )
    serial = ExperimentRunner(workers=1).run([run])[0]
    pooled = ExperimentRunner(workers=2).run([run])[0]
    assert serial.fingerprint() == pooled.fingerprint()
    assert serial.num_jobs == spec.num_jobs
