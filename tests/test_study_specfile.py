"""Tests for study spec files (TOML/JSON round-trips) and the sweep CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import ScenarioSpec, UniformSpeeds
from repro.study import (
    Study,
    StudySpecError,
    dump_study,
    load_study,
    study_from_dict,
    study_from_json,
    study_from_toml,
    study_to_dict,
    study_to_json,
    study_to_toml,
)

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    tomllib = None

needs_tomllib = pytest.mark.skipif(tomllib is None, reason="tomllib needs Python >= 3.11")

#: A study exercising every declarative feature: scheduler kwargs, scenario
#: presets/tables/labels, google and stream and bulk workloads, scalar axes.
FULL_STUDY = Study(
    name="full",
    schedulers=("SRPTMS+C", {"name": "SRPT", "r": 2.0}, "FIFO"),
    scenarios=(
        None,
        "failures",
        {"speed_spread": 0.5},
        ("storm", {"failure_rate": 1e-4, "mean_repair": 120.0}),
    ),
    workloads=(
        "google",
        {"kind": "stream", "factory": "poisson", "num_jobs": 64, "seed": 3},
        {"kind": "bulk", "job_sizes": [2, 3], "mean_duration": 5.0, "cv": 0.0},
    ),
    seeds=(0, 1, 2),
    axes={"epsilon": (0.4, 0.6), "r": (1.0, 3.0)},
    scale=0.01,
    machines=None,
    max_time=1e6,
)

#: A fast-to-run spec (bulk workload, tiny cluster) for CLI executions.
CLI_SPEC = {
    "study": {
        "name": "cli-tiny",
        "schedulers": ["FIFO", "SCA"],
        "workloads": [
            {"kind": "bulk", "job_sizes": [2, 3, 4], "mean_duration": 5.0, "cv": 0.3}
        ],
        "seeds": [0, 1],
        "machines": 4,
    }
}


class TestRoundTrips:
    def test_dict_round_trip(self):
        assert study_from_dict(study_to_dict(FULL_STUDY)) == FULL_STUDY

    @needs_tomllib
    def test_toml_round_trip(self):
        assert study_from_toml(study_to_toml(FULL_STUDY)) == FULL_STUDY

    def test_json_round_trip(self):
        assert study_from_json(study_to_json(FULL_STUDY)) == FULL_STUDY

    @needs_tomllib
    def test_file_round_trip_by_suffix(self, tmp_path):
        for suffix in (".toml", ".json"):
            path = tmp_path / f"study{suffix}"
            dump_study(FULL_STUDY, path)
            assert load_study(path) == FULL_STUDY

    @needs_tomllib
    def test_hand_written_toml(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(
            "[study]\n"
            'name = "hand"\n'
            "scale = 0.01\n"
            "seeds = [0]\n"
            'schedulers = ["SCA", { name = "SRPT", r = 2.0 }]\n'
            'scenarios = ["none", { speed_spread = 0.25 }]\n'
            "[study.axes]\n"
            "epsilon = [0.5, 0.7]\n"
        )
        study = load_study(path)
        assert study.name == "hand"
        assert study.schedulers[1].kwargs == (("r", 2.0),)
        assert study.scenarios[1].spec.speeds == UniformSpeeds(0.75, 1.25)
        assert study.axes == (("epsilon", (0.5, 0.7)),)
        assert study.num_points() == 2 * 2 * 2 * 1


class TestStrictness:
    def test_unknown_study_key_rejected(self):
        with pytest.raises(StudySpecError, match="schedulrs"):
            study_from_dict({"study": {"name": "x", "schedulrs": ["SCA"]}})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(StudySpecError, match="top-level"):
            study_from_dict({"study": {"name": "x"}, "extra": 1})

    def test_missing_name_rejected(self):
        with pytest.raises(StudySpecError, match="name"):
            study_from_dict({"study": {"scale": 0.01}})

    def test_unknown_scheduler_name_rejected(self):
        with pytest.raises(StudySpecError, match="unknown scheduler"):
            study_from_dict({"study": {"name": "x", "schedulers": ["Bogus"]}})

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(StudySpecError, match="unknown scenario keys"):
            study_from_dict(
                {"study": {"name": "x", "scenarios": [{"sped_spread": 0.5}]}}
            )

    def test_unknown_bulk_workload_key_rejected(self):
        with pytest.raises(StudySpecError, match="unknown bulk-workload keys"):
            study_from_dict(
                {"study": {"name": "x", "workloads": [
                    {"kind": "bulk", "job_sizes": [3], "mean_durations": 5.0}
                ]}}
            )

    def test_unknown_stream_workload_key_rejected(self):
        with pytest.raises(StudySpecError, match="unknown poisson-stream keys"):
            study_from_dict(
                {"study": {"name": "x", "workloads": [
                    {"kind": "stream", "factory": "poisson", "num_jobs": 8,
                     "arrival_rates": 1.0}
                ]}}
            )

    def test_unknown_axis_rejected(self):
        with pytest.raises(StudySpecError, match="unknown scalar axis"):
            study_from_dict({"study": {"name": "x", "axes": {"bogus": [1.0]}}})

    def test_invalid_json_and_toml(self):
        with pytest.raises(StudySpecError, match="invalid JSON"):
            study_from_json("{nope")
        if tomllib is not None:
            with pytest.raises(StudySpecError, match="invalid TOML"):
                study_from_toml("= nope")

    def test_raw_objects_are_not_serialisable(self):
        study = Study(
            name="raw", scenarios=(ScenarioSpec(speeds=UniformSpeeds(0.5, 1.5)),)
        )
        with pytest.raises(StudySpecError, match="ScenarioSpec"):
            study_to_dict(study)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "study.yaml"
        path.write_text("study:\n")
        with pytest.raises(StudySpecError, match="suffix"):
            load_study(path)


class TestSweepCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text(json.dumps(CLI_SPEC))
        return str(path)

    def test_sweep_requires_spec(self):
        with pytest.raises(SystemExit, match="--spec"):
            main(["sweep"])

    def test_spec_only_for_sweep(self, spec_path):
        with pytest.raises(SystemExit, match="--spec"):
            main(["figure6", "--spec", spec_path])

    def test_figure_flags_rejected_for_sweep(self, spec_path):
        with pytest.raises(SystemExit, match="--scale"):
            main(["sweep", "--spec", spec_path, "--scale", "0.01"])

    def test_scenario_flags_rejected_for_sweep(self, spec_path):
        with pytest.raises(SystemExit, match="scenario"):
            main(["sweep", "--spec", spec_path, "--scenario", "failures"])

    def test_invalid_spec_is_clean_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"study": {"name": "x", "bogus": 1}}))
        with pytest.raises(SystemExit, match="bogus"):
            main(["sweep", "--spec", str(path)])

    def test_sweep_prints_report_and_exports(self, spec_path, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        exit_code = main(
            ["sweep", "--spec", spec_path, "--csv", str(csv_path),
             "--json", str(json_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Study 'cli-tiny'" in output
        assert "FIFO" in output and "SCA" in output
        assert csv_path.read_text().startswith("workload,scenario,scheduler,seed")
        assert len(json.loads(json_path.read_text())) == 4

    def test_workers_zero_and_cache_reproduce_bit_identically(
        self, spec_path, tmp_path, capsys
    ):
        """Serial vs --workers 0, and cold vs warm cache, export equal bytes."""
        cache = str(tmp_path / "cache")
        outputs = {}
        for tag, extra in {
            "serial": [],
            "pool": ["--workers", "0"],
            "cold": ["--cache-dir", cache],
            "warm": ["--cache-dir", cache],
        }.items():
            csv_path = tmp_path / f"{tag}.csv"
            assert main(["sweep", "--spec", spec_path, "--csv", str(csv_path), *extra]) == 0
            outputs[tag] = (csv_path.read_bytes(), capsys.readouterr().out)
        assert outputs["serial"] == outputs["pool"]
        assert outputs["serial"] == outputs["cold"]
        assert outputs["cold"] == outputs["warm"]
