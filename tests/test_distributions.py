"""Unit tests for repro.workload.distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.workload.distributions import (
    BoundedPareto,
    Deterministic,
    Empirical,
    Exponential,
    LogNormal,
    ShiftedExponential,
    TruncatedNormal,
    Uniform,
)

ALL_DISTRIBUTIONS = [
    Deterministic(10.0),
    Uniform(5.0, 15.0),
    Exponential(10.0),
    ShiftedExponential(2.0, 8.0),
    BoundedPareto(5.0, 500.0, 1.5),
    LogNormal(10.0, 4.0),
    TruncatedNormal(10.0, 2.0),
    Empirical([5.0, 10.0, 15.0, 20.0]),
]


class TestCommonContract:
    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_samples_are_positive(self, dist, rng):
        samples = dist.sample(rng, 500)
        assert samples.shape == (500,)
        assert np.all(samples > 0)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_sample_one_returns_float(self, dist, rng):
        value = dist.sample_one(rng)
        assert isinstance(value, float)
        assert value > 0

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_moments_are_consistent_with_samples(self, dist, rng):
        samples = dist.sample(rng, 60_000)
        # Heavy-tailed distributions converge slowly; a generous tolerance is
        # enough to catch an implementation returning the wrong moment.
        assert samples.mean() == pytest.approx(dist.mean, rel=0.15)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_variance_matches_std(self, dist):
        assert dist.variance == pytest.approx(dist.std**2)

    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_scaled_moments(self, dist):
        scaled = dist.scaled(3.0)
        assert scaled.mean == pytest.approx(3.0 * dist.mean)
        assert scaled.std == pytest.approx(3.0 * dist.std)

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            Deterministic(1.0).scaled(0.0)

    def test_coefficient_of_variation(self):
        dist = LogNormal(10.0, 5.0)
        assert dist.coefficient_of_variation == pytest.approx(0.5)


class TestDeterministic:
    def test_moments(self):
        dist = Deterministic(42.0)
        assert dist.mean == 42.0
        assert dist.std == 0.0

    def test_samples_are_constant(self, rng):
        assert np.all(Deterministic(3.0).sample(rng, 10) == 3.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Deterministic(0.0)
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestUniform:
    def test_moments(self):
        dist = Uniform(2.0, 8.0)
        assert dist.mean == pytest.approx(5.0)
        assert dist.std == pytest.approx(6.0 / math.sqrt(12.0))

    def test_samples_within_bounds(self, rng):
        samples = Uniform(2.0, 8.0).sample(rng, 1000)
        assert samples.min() >= 2.0
        assert samples.max() <= 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Uniform(0.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(5.0, 4.0)


class TestExponentialFamilies:
    def test_exponential_moments(self):
        dist = Exponential(7.0)
        assert dist.mean == 7.0
        assert dist.std == 7.0

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_shifted_exponential_moments(self):
        dist = ShiftedExponential(3.0, 4.0)
        assert dist.mean == 7.0
        assert dist.std == 4.0

    def test_shifted_exponential_samples_above_shift(self, rng):
        samples = ShiftedExponential(3.0, 4.0).sample(rng, 1000)
        assert samples.min() >= 3.0

    def test_shifted_exponential_validation(self):
        with pytest.raises(ValueError):
            ShiftedExponential(-1.0, 1.0)
        with pytest.raises(ValueError):
            ShiftedExponential(1.0, 0.0)


class TestBoundedPareto:
    def test_samples_within_support(self, rng):
        dist = BoundedPareto(5.0, 50.0, 1.2)
        samples = dist.sample(rng, 5000)
        assert samples.min() >= 5.0
        assert samples.max() <= 50.0

    def test_mean_between_bounds(self):
        dist = BoundedPareto(5.0, 50.0, 1.2)
        assert 5.0 < dist.mean < 50.0

    def test_larger_alpha_gives_smaller_mean(self):
        light = BoundedPareto(5.0, 500.0, 3.0)
        heavy = BoundedPareto(5.0, 500.0, 1.1)
        assert light.mean < heavy.mean

    def test_alpha_equal_to_moment_order_handled(self):
        # alpha == 1 hits the special case of the first raw moment.
        dist = BoundedPareto(5.0, 500.0, 1.0)
        assert 5.0 < dist.mean < 500.0
        assert dist.std > 0

    def test_quantile_monotone_and_bounded(self):
        dist = BoundedPareto(5.0, 50.0, 1.5)
        grid = np.linspace(0.0, 0.999, 50)
        values = dist.quantile(grid)
        assert np.all(np.diff(values) >= 0)
        assert values[0] == pytest.approx(5.0)
        assert values[-1] <= 50.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BoundedPareto(5.0, 50.0, 1.5).quantile(1.0)

    def test_from_mean_matches_target(self):
        dist = BoundedPareto.from_mean(100.0, alpha=1.3)
        assert dist.mean == pytest.approx(100.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(0.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            BoundedPareto(10.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            BoundedPareto(1.0, 10.0, 0.0)


class TestLogNormal:
    def test_reported_moments_match_parameters(self):
        dist = LogNormal(100.0, 40.0)
        assert dist.mean == 100.0
        assert dist.std == 40.0

    def test_underlying_parameters_reproduce_moments(self):
        dist = LogNormal(100.0, 40.0)
        implied_mean = math.exp(dist.mu + dist.sigma**2 / 2.0)
        assert implied_mean == pytest.approx(100.0, rel=1e-9)

    def test_zero_std_degenerates_to_constant(self, rng):
        dist = LogNormal(10.0, 0.0)
        assert np.all(dist.sample(rng, 5) == 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormal(0.0, 1.0)
        with pytest.raises(ValueError):
            LogNormal(1.0, -1.0)


class TestTruncatedNormal:
    def test_samples_above_floor(self, rng):
        dist = TruncatedNormal(2.0, 5.0, floor=0.5)
        samples = dist.sample(rng, 2000)
        assert samples.min() >= 0.5

    def test_zero_std_is_constant(self, rng):
        assert np.all(TruncatedNormal(4.0, 0.0).sample(rng, 5) == 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedNormal(0.0, 1.0)
        with pytest.raises(ValueError):
            TruncatedNormal(1.0, -0.1)
        with pytest.raises(ValueError):
            TruncatedNormal(1.0, 1.0, floor=0.0)


class TestFloored:
    def test_samples_never_fall_below_floor(self, rng):
        from repro.workload.distributions import Floored

        dist = Floored(LogNormal(15.0, 10.0), floor=12.8)
        samples = dist.sample(rng, 5000)
        assert samples.min() >= 12.8

    def test_moments_proxy_the_base(self):
        from repro.workload.distributions import Floored

        base = LogNormal(100.0, 20.0)
        dist = Floored(base, floor=12.8)
        assert dist.mean == base.mean
        assert dist.std == base.std
        assert dist.base is base
        assert dist.floor == 12.8

    def test_mean_never_below_floor(self):
        from repro.workload.distributions import Floored

        assert Floored(LogNormal(5.0, 1.0), floor=12.8).mean == 12.8

    def test_validation(self):
        from repro.workload.distributions import Floored

        with pytest.raises(ValueError):
            Floored(Deterministic(1.0), floor=0.0)


class TestEmpirical:
    def test_moments_match_samples(self):
        values = [2.0, 4.0, 6.0, 8.0]
        dist = Empirical(values)
        assert dist.mean == pytest.approx(np.mean(values))
        assert dist.std == pytest.approx(np.std(values))
        assert dist.n_samples == 4

    def test_samples_come_from_support(self, rng):
        values = [2.0, 4.0, 6.0]
        samples = Empirical(values).sample(rng, 100)
        assert set(np.unique(samples)).issubset(set(values))

    def test_values_returns_copy(self):
        dist = Empirical([1.0, 2.0])
        returned = dist.values
        returned[0] = 99.0
        assert dist.values[0] == 1.0

    def test_from_distribution(self, rng):
        base = LogNormal(10.0, 3.0)
        estimated = Empirical.from_distribution(base, rng, n_samples=5000)
        assert estimated.mean == pytest.approx(base.mean, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([1.0, -2.0])
        with pytest.raises(ValueError):
            Empirical.from_distribution(Deterministic(1.0), np.random.default_rng(), 0)
