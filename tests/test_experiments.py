"""Tests for the experiment harness (smoke-scale runs of every table/figure)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_offline_bound,
    run_scheduler_comparison,
    run_table2,
)
from repro.experiments.report import render_key_values, render_sweep_table


@pytest.fixture(scope="module")
def smoke_config() -> ExperimentConfig:
    return ExperimentConfig.smoke()


@pytest.fixture(scope="module")
def comparison(smoke_config):
    """One shared scheduler-comparison run reused by the figure 4/5/6 tests."""
    return run_scheduler_comparison(smoke_config)


class TestConfig:
    def test_presets(self):
        assert ExperimentConfig.smoke().scale < ExperimentConfig.default_bench().scale
        full = ExperimentConfig.paper_full_scale()
        assert full.scale == 1.0
        assert len(full.seeds) == 10
        assert full.machines == 12000

    def test_machines_derived_from_scale(self):
        assert ExperimentConfig(scale=0.5).machines == 6000
        assert ExperimentConfig(scale=0.5, num_machines=123).machines == 123

    def test_with_overrides(self):
        config = ExperimentConfig.smoke().with_overrides(epsilon=0.3)
        assert config.epsilon == 0.3
        assert config.scale == ExperimentConfig.smoke().scale

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(seeds=())
        with pytest.raises(ValueError):
            ExperimentConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(r=-1.0)

    def test_make_trace_is_reproducible(self, smoke_config):
        a = smoke_config.make_trace()
        b = smoke_config.make_trace()
        assert [s.total_tasks for s in a] == [s.total_tasks for s in b]


class TestReportHelpers:
    def test_render_sweep_table(self):
        text = render_sweep_table("x", [1, 2], {"y": [10.0, 20.0]}, title="T")
        assert "T" in text and "10.0" in text and "20.0" in text

    def test_render_sweep_table_length_mismatch(self):
        with pytest.raises(ValueError):
            render_sweep_table("x", [1, 2], {"y": [1.0]})

    def test_render_key_values(self):
        text = render_key_values({"a": 1, "bb": 2}, title="T")
        assert text.splitlines()[0] == "T"
        assert "bb" in text


class TestTable2:
    def test_statistics_and_render(self, smoke_config):
        result = run_table2(smoke_config)
        assert result.statistics.total_jobs == smoke_config.trace_config().effective_num_jobs
        text = result.render()
        assert "Table II" in text
        assert "Average task duration" in text


class TestSweeps:
    def test_figure1_structure(self, smoke_config):
        result = run_figure1(smoke_config, epsilons=(0.3, 0.6, 1.0))
        assert len(result.mean_flowtimes) == 3
        assert result.best_epsilon_unweighted in (0.3, 0.6, 1.0)
        assert "Figure 1" in result.render()

    def test_figure1_rejects_empty_sweep(self, smoke_config):
        with pytest.raises(ValueError):
            run_figure1(smoke_config, epsilons=())

    def test_figure2_structure(self, smoke_config):
        result = run_figure2(smoke_config, r_values=(0.0, 3.0))
        assert len(result.mean_flowtimes) == 2
        assert result.relative_spread_unweighted >= 0.0
        assert "Figure 2" in result.render()

    def test_figure3_structure(self, smoke_config):
        result = run_figure3(smoke_config, machine_fractions=(0.5, 1.0))
        assert len(result.machine_counts) == 2
        assert result.machine_counts[0] < result.machine_counts[1]
        assert result.knee_machine_count in result.machine_counts
        assert "Figure 3" in result.render()

    def test_figure3_more_machines_never_hurt_much(self, smoke_config):
        result = run_figure3(smoke_config, machine_fractions=(0.5, 1.0))
        # Doubling the cluster should not increase mean flowtime by >20%.
        assert result.mean_flowtimes[1] <= 1.2 * result.mean_flowtimes[0]

    def test_figure3_validation(self, smoke_config):
        with pytest.raises(ValueError):
            run_figure3(smoke_config, machine_fractions=())
        with pytest.raises(ValueError):
            run_figure3(smoke_config, machine_fractions=(0.0,))


class TestComparisonFigures:
    def test_comparison_contains_three_policies(self, comparison):
        assert set(comparison) == {"SRPTMS+C", "SCA", "Mantri"}

    def test_scheduler_subset_and_unknown(self, smoke_config):
        subset = run_scheduler_comparison(smoke_config, schedulers=("SRPTMS+C",))
        assert set(subset) == {"SRPTMS+C"}
        with pytest.raises(ValueError):
            run_scheduler_comparison(smoke_config, schedulers=("nope",))

    def test_figure4_curves(self, smoke_config, comparison):
        result = run_figure4(smoke_config, results=comparison)
        assert set(result.curves) == {"SRPTMS+C", "SCA", "Mantri"}
        for curve in result.curves.values():
            assert len(curve) == len(result.points)
            assert all(0.0 <= value <= 1.0 for value in curve)
        assert "Figure 4" in result.render()

    def test_figure5_curves(self, smoke_config, comparison):
        result = run_figure5(smoke_config, results=comparison)
        assert result.points[-1] == 4000.0
        assert "Figure 5" in result.render()
        for name in result.curves:
            assert result.fraction_within(name, 4000.0) >= result.fraction_within(
                name, 500.0
            )

    def test_figure6_table(self, smoke_config, comparison):
        result = run_figure6(smoke_config, results=comparison)
        text = result.render()
        assert "SRPTMS+C" in text and "Mantri" in text
        # The improvement is a finite percentage (sign depends on noise at
        # smoke scale; the benchmark suite checks the sign at larger scale).
        assert isinstance(result.improvement_over_baseline(), float)


class TestOfflineBound:
    def test_reports(self, smoke_config):
        result = run_offline_bound(smoke_config)
        assert result.deterministic.fraction_satisfying_bound == 1.0
        assert result.deterministic.empirical_competitive_ratio <= 2.0
        assert result.noisy.num_jobs == result.deterministic.num_jobs
        assert "Remark 2" in result.render() or "deterministic" in result.render()
