"""Unit tests for the Job / Task / TaskCopy data model and its precedence rules."""

from __future__ import annotations

import pytest

from repro.workload.distributions import Deterministic, LogNormal
from repro.workload.job import Job, JobSpec, Phase, Task, TaskCopy, TaskStatus


def make_spec(**overrides) -> JobSpec:
    defaults = dict(
        job_id=0,
        arrival_time=0.0,
        weight=1.0,
        num_map_tasks=2,
        num_reduce_tasks=1,
        map_duration=Deterministic(10.0),
        reduce_duration=Deterministic(5.0),
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestJobSpec:
    def test_phase_accessors(self):
        spec = make_spec()
        assert spec.num_tasks(Phase.MAP) == 2
        assert spec.num_tasks(Phase.REDUCE) == 1
        assert spec.duration(Phase.MAP).mean == 10.0
        assert spec.duration(Phase.REDUCE).mean == 5.0

    def test_total_tasks_and_expected_work(self):
        spec = make_spec()
        assert spec.total_tasks == 3
        assert spec.expected_total_work == pytest.approx(2 * 10.0 + 1 * 5.0)

    def test_effective_workload_equation_2(self):
        spec = make_spec(
            map_duration=LogNormal(10.0, 2.0), reduce_duration=LogNormal(5.0, 1.0)
        )
        # phi = m*(E+r*sigma) + r_tasks*(E+r*sigma)
        assert spec.effective_workload(r=3.0) == pytest.approx(
            2 * (10.0 + 6.0) + 1 * (5.0 + 3.0)
        )

    def test_effective_workload_r_zero_ignores_variance(self):
        spec = make_spec(map_duration=LogNormal(10.0, 8.0))
        assert spec.effective_workload(r=0.0) == pytest.approx(2 * 10.0 + 5.0)

    def test_effective_workload_rejects_negative_r(self):
        with pytest.raises(ValueError):
            make_spec().effective_workload(-1.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"arrival_time": -1.0},
            {"weight": 0.0},
            {"weight": -2.0},
            {"num_map_tasks": -1},
            {"num_map_tasks": 0, "num_reduce_tasks": 0},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            make_spec(**overrides)


class TestJobConstruction:
    def test_from_spec_builds_tasks(self):
        job = Job.from_spec(make_spec())
        assert len(job.map_tasks) == 2
        assert len(job.reduce_tasks) == 1
        assert all(task.phase is Phase.MAP for task in job.map_tasks)
        assert all(task.phase is Phase.REDUCE for task in job.reduce_tasks)
        assert not job.map_phase_complete
        assert not job.is_complete

    def test_map_only_job(self):
        job = Job.from_spec(make_spec(num_reduce_tasks=0))
        assert job.reduce_tasks == []
        assert not job.map_phase_complete

    def test_reduce_only_job_has_trivially_complete_map_phase(self):
        job = Job.from_spec(make_spec(num_map_tasks=0, arrival_time=4.0))
        assert job.map_phase_complete
        assert job.map_phase_completion_time == 4.0

    def test_task_ids_are_unique(self):
        job = Job.from_spec(make_spec(num_map_tasks=5, num_reduce_tasks=3))
        ids = [task.task_id for task in job.all_tasks()]
        assert len(set(ids)) == len(ids)


def launch_copy(task: Task, copy_id: int = 0, machine: int = 0, time: float = 0.0,
                workload: float = 10.0) -> TaskCopy:
    copy = TaskCopy(
        copy_id=copy_id,
        task=task,
        machine_id=machine,
        launch_time=time,
        workload=workload,
    )
    task.add_copy(copy)
    return copy


class TestTaskCopy:
    def test_lifecycle(self):
        job = Job.from_spec(make_spec())
        copy = launch_copy(job.map_tasks[0])
        assert copy.is_active and copy.is_blocked
        copy.start(0.0)
        assert not copy.is_blocked
        assert copy.expected_finish_time == pytest.approx(10.0)
        copy.finish(10.0)
        assert copy.is_finished
        assert not copy.is_active

    def test_progress_and_remaining_work(self):
        job = Job.from_spec(make_spec())
        copy = launch_copy(job.map_tasks[0], workload=10.0)
        copy.start(0.0)
        assert copy.progress(4.0) == pytest.approx(0.4)
        assert copy.remaining_work(4.0) == pytest.approx(6.0)
        assert copy.progress(100.0) == 1.0

    def test_blocked_copy_has_no_progress(self):
        job = Job.from_spec(make_spec())
        copy = launch_copy(job.reduce_tasks[0])
        assert copy.elapsed(50.0) == 0.0
        assert copy.progress(50.0) == 0.0
        assert copy.expected_finish_time is None

    def test_kill_stops_elapsed_accumulation(self):
        job = Job.from_spec(make_spec())
        copy = launch_copy(job.map_tasks[0], workload=10.0)
        copy.start(0.0)
        copy.kill(4.0)
        assert copy.is_killed
        assert copy.elapsed(100.0) == pytest.approx(4.0)

    def test_cannot_start_twice(self):
        job = Job.from_spec(make_spec())
        copy = launch_copy(job.map_tasks[0])
        copy.start(0.0)
        with pytest.raises(ValueError):
            copy.start(1.0)

    def test_cannot_finish_before_start(self):
        job = Job.from_spec(make_spec())
        copy = launch_copy(job.map_tasks[0])
        with pytest.raises(ValueError):
            copy.finish(5.0)

    def test_cannot_start_before_launch(self):
        job = Job.from_spec(make_spec())
        copy = launch_copy(job.map_tasks[0], time=10.0)
        with pytest.raises(ValueError):
            copy.start(5.0)

    def test_cannot_kill_finished_copy(self):
        job = Job.from_spec(make_spec())
        copy = launch_copy(job.map_tasks[0])
        copy.start(0.0)
        copy.finish(10.0)
        with pytest.raises(ValueError):
            copy.kill(11.0)

    def test_validation(self):
        job = Job.from_spec(make_spec())
        with pytest.raises(ValueError):
            TaskCopy(copy_id=0, task=job.map_tasks[0], machine_id=0,
                     launch_time=0.0, workload=0.0)
        with pytest.raises(ValueError):
            TaskCopy(copy_id=0, task=job.map_tasks[0], machine_id=0,
                     launch_time=-1.0, workload=1.0)


class TestTask:
    def test_status_transitions(self):
        job = Job.from_spec(make_spec())
        task = job.map_tasks[0]
        assert task.status is TaskStatus.PENDING
        copy = launch_copy(task)
        copy.start(0.0)
        assert task.status is TaskStatus.RUNNING
        assert task.is_scheduled
        copy.finish(10.0)
        task.complete(10.0)
        assert task.status is TaskStatus.COMPLETED

    def test_complete_kills_sibling_clones(self):
        job = Job.from_spec(make_spec())
        task = job.map_tasks[0]
        winner = launch_copy(task, copy_id=0, machine=0)
        loser = launch_copy(task, copy_id=1, machine=1, workload=20.0)
        winner.start(0.0)
        loser.start(0.0)
        winner.finish(10.0)
        killed = task.complete(10.0)
        assert killed == [loser]
        assert loser.is_killed

    def test_cannot_complete_twice(self):
        job = Job.from_spec(make_spec())
        task = job.map_tasks[0]
        launch_copy(task).start(0.0)
        task.complete(10.0)
        with pytest.raises(ValueError):
            task.complete(11.0)

    def test_cannot_add_copy_to_completed_task(self):
        job = Job.from_spec(make_spec())
        task = job.map_tasks[0]
        launch_copy(task).start(0.0)
        task.complete(10.0)
        with pytest.raises(ValueError):
            launch_copy(task, copy_id=1)

    def test_first_launch_time(self):
        job = Job.from_spec(make_spec())
        task = job.map_tasks[0]
        assert task.first_launch_time() is None
        launch_copy(task, copy_id=0, time=5.0)
        launch_copy(task, copy_id=1, time=3.0)
        assert task.first_launch_time() == 3.0

    def test_duration_distribution_comes_from_phase(self):
        job = Job.from_spec(make_spec())
        assert job.map_tasks[0].duration_distribution.mean == 10.0
        assert job.reduce_tasks[0].duration_distribution.mean == 5.0


class TestJobPrecedence:
    def _complete_task(self, job: Job, task: Task, time: float) -> bool:
        copy = launch_copy(task, copy_id=len(task.copies), time=time - 1.0,
                           workload=1.0)
        copy.start(time - 1.0)
        copy.finish(time)
        task.complete(time)
        return job.notify_task_completion(task, time)

    def test_map_phase_completes_after_all_map_tasks(self):
        job = Job.from_spec(make_spec())
        assert not self._complete_task(job, job.map_tasks[0], 10.0)
        assert not job.map_phase_complete
        assert not self._complete_task(job, job.map_tasks[1], 12.0)
        assert job.map_phase_complete
        assert job.map_phase_completion_time == 12.0
        assert not job.is_complete

    def test_job_completes_after_all_reduce_tasks(self):
        job = Job.from_spec(make_spec())
        self._complete_task(job, job.map_tasks[0], 10.0)
        self._complete_task(job, job.map_tasks[1], 12.0)
        finished = self._complete_task(job, job.reduce_tasks[0], 20.0)
        assert finished
        assert job.is_complete
        assert job.completion_time == 20.0
        assert job.flowtime == 20.0
        assert job.weighted_flowtime == 20.0  # weight 1

    def test_map_only_job_completes_with_last_map_task(self):
        job = Job.from_spec(make_spec(num_reduce_tasks=0, num_map_tasks=2))
        self._complete_task(job, job.map_tasks[0], 5.0)
        finished = self._complete_task(job, job.map_tasks[1], 9.0)
        assert finished
        assert job.completion_time == 9.0

    def test_notify_rejects_foreign_task(self):
        job_a = Job.from_spec(make_spec(job_id=1))
        job_b = Job.from_spec(make_spec(job_id=2))
        with pytest.raises(ValueError):
            job_a.notify_task_completion(job_b.map_tasks[0], 1.0)

    def test_notify_rejects_after_completion(self):
        job = Job.from_spec(make_spec(num_map_tasks=1, num_reduce_tasks=0))
        self._complete_task(job, job.map_tasks[0], 5.0)
        with pytest.raises(ValueError):
            job.notify_task_completion(job.map_tasks[0], 6.0)

    def test_flowtime_none_until_complete(self):
        job = Job.from_spec(make_spec())
        assert job.flowtime is None
        assert job.weighted_flowtime is None


class TestJobCounters:
    def test_unscheduled_counts_follow_launches(self):
        job = Job.from_spec(make_spec(num_map_tasks=3, num_reduce_tasks=2))
        assert job.num_unscheduled_map_tasks == 3
        assert job.num_unscheduled_reduce_tasks == 2
        launch_copy(job.map_tasks[0])
        assert job.num_unscheduled_map_tasks == 2
        assert job.num_running_copies == 1

    def test_running_copies_counts_clones(self):
        job = Job.from_spec(make_spec())
        launch_copy(job.map_tasks[0], copy_id=0, machine=0)
        launch_copy(job.map_tasks[0], copy_id=1, machine=1)
        assert job.num_running_copies == 2
        assert job.total_copies_launched() == 2

    def test_remaining_effective_workload_equation_4(self):
        spec = make_spec(
            num_map_tasks=3,
            num_reduce_tasks=2,
            map_duration=LogNormal(10.0, 2.0),
            reduce_duration=LogNormal(5.0, 1.0),
        )
        job = Job.from_spec(spec)
        full = job.remaining_effective_workload(r=2.0)
        assert full == pytest.approx(3 * (10 + 4) + 2 * (5 + 2))
        launch_copy(job.map_tasks[0])
        after = job.remaining_effective_workload(r=2.0)
        assert after == pytest.approx(2 * (10 + 4) + 2 * (5 + 2))

    def test_remaining_effective_workload_rejects_negative_r(self):
        job = Job.from_spec(make_spec())
        with pytest.raises(ValueError):
            job.remaining_effective_workload(-0.5)

    def test_num_remaining_tasks(self):
        job = Job.from_spec(make_spec(num_map_tasks=2, num_reduce_tasks=1))
        assert job.num_remaining_tasks == 3
