"""Unit tests for the Lemma 1 / Theorem 1 / Remark 2 bound computations."""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    empirical_competitive_ratio,
    lemma1_probability,
    map_critical_path_correction,
    offline_flowtime_bound,
    offline_flowtime_bounds,
    online_competitive_bound,
    serial_phase_lower_bound,
    srpt_relaxation_lower_bound,
    theorem1_probability,
    weighted_flowtime_lower_bound,
)
from repro.workload.distributions import Deterministic, LogNormal
from repro.workload.job import JobSpec


def make_spec(job_id=0, weight=1.0, maps=2, reduces=1, mean=10.0, std=0.0) -> JobSpec:
    duration = Deterministic(mean) if std == 0 else LogNormal(mean, std)
    return JobSpec(
        job_id=job_id,
        arrival_time=0.0,
        weight=weight,
        num_map_tasks=maps,
        num_reduce_tasks=reduces,
        map_duration=duration,
        reduce_duration=duration,
    )


class TestProbabilities:
    def test_lemma1_formula(self):
        assert lemma1_probability(2.0) == pytest.approx(0.75)
        assert lemma1_probability(10.0) == pytest.approx(0.99)

    def test_lemma1_clipped_below_one(self):
        assert lemma1_probability(0.5) == 0.0

    def test_theorem1_formula(self):
        assert theorem1_probability(2.0) == pytest.approx((1 - 0.25) ** 2)

    def test_theorem1_approaches_one(self):
        assert theorem1_probability(100.0) == pytest.approx(1.0, abs=1e-3)

    def test_theorem1_is_square_of_lemma1(self):
        r = 3.0
        assert theorem1_probability(r) == pytest.approx(lemma1_probability(r) ** 2)

    @pytest.mark.parametrize("func", [lemma1_probability, theorem1_probability])
    def test_probability_validation(self, func):
        with pytest.raises(ValueError):
            func(0.0)


class TestTheorem1Bound:
    def test_bound_formula(self):
        spec = make_spec(mean=10.0, std=2.0)
        bound = offline_flowtime_bound(spec, accumulated_workload=200.0,
                                       num_machines=10, r=3.0)
        assert bound == pytest.approx(10.0 + 6.0 + 20.0)

    def test_map_only_job_uses_map_moments(self):
        spec = make_spec(reduces=0, mean=8.0)
        bound = offline_flowtime_bound(spec, 0.0, 4, 0.0)
        assert bound == pytest.approx(8.0)

    def test_bounds_for_all_jobs_increase_with_lower_priority(self):
        small = make_spec(job_id=0, maps=1, reduces=1)
        large = make_spec(job_id=1, maps=10, reduces=2)
        bounds = offline_flowtime_bounds([small, large], num_machines=5, r=0.0)
        assert bounds[1] > bounds[0]

    def test_critical_path_correction(self):
        two_phase = make_spec(mean=10.0, std=2.0)
        map_only = make_spec(reduces=0)
        assert map_critical_path_correction(two_phase, 3.0) == pytest.approx(16.0)
        assert map_critical_path_correction(map_only, 3.0) == 0.0

    def test_bounds_with_critical_path_are_larger(self):
        spec = make_spec()
        plain = offline_flowtime_bounds([spec], 4, 0.0)[0]
        corrected = offline_flowtime_bounds(
            [spec], 4, 0.0, include_map_critical_path=True
        )[0]
        assert corrected == pytest.approx(plain + 10.0)

    def test_validation(self):
        spec = make_spec()
        with pytest.raises(ValueError):
            offline_flowtime_bound(spec, -1.0, 4, 0.0)
        with pytest.raises(ValueError):
            offline_flowtime_bound(spec, 1.0, 0, 0.0)
        with pytest.raises(ValueError):
            offline_flowtime_bound(spec, 1.0, 4, -1.0)
        with pytest.raises(ValueError):
            map_critical_path_correction(spec, -1.0)


class TestLowerBounds:
    def test_serial_phase_lower_bound(self):
        assert serial_phase_lower_bound(make_spec(mean=10.0)) == pytest.approx(20.0)
        assert serial_phase_lower_bound(make_spec(reduces=0)) == pytest.approx(10.0)

    def test_srpt_relaxation_scales_with_machines(self):
        specs = [make_spec(job_id=i) for i in range(3)]
        few = srpt_relaxation_lower_bound(specs, 2)
        many = srpt_relaxation_lower_bound(specs, 20)
        assert few == pytest.approx(10 * many)

    def test_weighted_lower_bound_is_max_of_components(self):
        specs = [make_spec(job_id=i) for i in range(3)]
        combined = weighted_flowtime_lower_bound(specs, 2)
        serial = sum(s.weight * serial_phase_lower_bound(s) for s in specs)
        relaxation = srpt_relaxation_lower_bound(specs, 2)
        assert combined == pytest.approx(max(serial, relaxation))

    def test_empirical_competitive_ratio(self):
        specs = [make_spec(job_id=i) for i in range(2)]
        lower = weighted_flowtime_lower_bound(specs, 4)
        assert empirical_competitive_ratio(2.0 * lower, specs, 4) == pytest.approx(2.0)

    def test_empirical_competitive_ratio_validation(self):
        specs = [make_spec()]
        with pytest.raises(ValueError):
            empirical_competitive_ratio(-1.0, specs, 4)

    def test_srpt_relaxation_validation(self):
        with pytest.raises(ValueError):
            srpt_relaxation_lower_bound([make_spec()], 0)


class TestOnlineBound:
    def test_formula(self):
        assert online_competitive_bound(0.5, max_copies=2) == pytest.approx(
            (2 + 1 + 0.5) / 0.25
        )

    def test_decreasing_in_epsilon(self):
        assert online_competitive_bound(0.9) < online_competitive_bound(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            online_competitive_bound(0.0)
        with pytest.raises(ValueError):
            online_competitive_bound(1.0)
        with pytest.raises(ValueError):
            online_competitive_bound(0.5, max_copies=0)
