"""Tests for the synthetic Google-trace generator (Table II calibration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.google_trace import (
    GoogleTraceConfig,
    GoogleTraceGenerator,
    TABLE_II_TARGETS,
    _calibrate_bounded_pareto_alpha,
)


class TestConfig:
    def test_defaults_match_table2(self):
        cfg = GoogleTraceConfig()
        assert cfg.num_jobs == TABLE_II_TARGETS["total_jobs"]
        assert cfg.trace_duration == TABLE_II_TARGETS["trace_duration"]
        assert cfg.effective_num_jobs == TABLE_II_TARGETS["total_jobs"]
        assert cfg.effective_num_machines == TABLE_II_TARGETS["num_machines"]

    def test_scaling_splits_between_jobs_and_sizes(self):
        cfg = GoogleTraceConfig(scale=0.25)
        # Default split: both factors are sqrt(scale) = 0.5.
        assert cfg.effective_job_scale == pytest.approx(0.5)
        assert cfg.effective_size_scale == pytest.approx(0.5)
        assert cfg.effective_num_jobs == round(0.5 * TABLE_II_TARGETS["total_jobs"])
        assert cfg.effective_mean_tasks_per_job == pytest.approx(
            0.5 * TABLE_II_TARGETS["average_tasks_per_job"]
        )
        # The cluster shrinks by the full scale so the offered load is kept.
        assert cfg.effective_num_machines == round(
            0.25 * TABLE_II_TARGETS["num_machines"]
        )

    def test_explicit_scale_overrides(self):
        cfg = GoogleTraceConfig(scale=0.25, job_scale=0.1, size_scale=1.0)
        assert cfg.effective_num_jobs == round(0.1 * TABLE_II_TARGETS["total_jobs"])
        assert cfg.effective_mean_tasks_per_job == pytest.approx(
            TABLE_II_TARGETS["average_tasks_per_job"]
        )
        with pytest.raises(ValueError):
            GoogleTraceConfig(job_scale=0.0)
        with pytest.raises(ValueError):
            GoogleTraceConfig(size_scale=-1.0)

    def test_scaled_constructor(self):
        cfg = GoogleTraceConfig.scaled(0.05, within_job_cv=0.2)
        assert cfg.scale == 0.05
        assert cfg.within_job_cv == 0.2

    @pytest.mark.parametrize(
        "overrides",
        [
            {"scale": 0.0},
            {"num_jobs": 0},
            {"reduce_fraction": 1.0},
            {"within_job_cv": -0.1},
            {"min_task_duration": 0.0},
            {"max_task_duration": 10.0},
            {"mean_task_duration": 5.0},
            {"num_priorities": 0},
            {"size_duration_correlation": 1.5},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            GoogleTraceConfig(**overrides)


class TestCalibration:
    def test_alpha_calibration_hits_target_mean(self):
        alpha = _calibrate_bounded_pareto_alpha(1.0, 600.0, 26.31)
        from repro.workload.distributions import BoundedPareto

        assert BoundedPareto(1.0, 600.0, alpha).mean == pytest.approx(26.31, rel=1e-3)

    def test_alpha_calibration_rejects_out_of_range_target(self):
        with pytest.raises(ValueError):
            _calibrate_bounded_pareto_alpha(10.0, 20.0, 30.0)


class TestGeneratedTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return GoogleTraceGenerator(GoogleTraceConfig(scale=0.05)).generate(seed=0)

    def test_job_count_matches_scale(self, trace):
        expected = GoogleTraceConfig(scale=0.05).effective_num_jobs
        assert trace.num_jobs == expected

    def test_arrivals_within_window(self, trace):
        cfg = GoogleTraceConfig(scale=0.05)
        assert trace.first_arrival >= 0.0
        assert trace.last_arrival <= cfg.trace_duration

    def test_weights_are_priorities_plus_one(self, trace):
        weights = {spec.weight for spec in trace}
        assert all(w == int(w) and 1.0 <= w <= 12.0 for w in weights)

    def test_tasks_per_job_mean_near_target(self, trace):
        cfg = GoogleTraceConfig(scale=0.05)
        mean_tasks = trace.total_tasks / trace.num_jobs
        assert mean_tasks == pytest.approx(cfg.effective_mean_tasks_per_job, rel=0.6)

    def test_full_scale_config_targets_table2_tasks_per_job(self):
        cfg = GoogleTraceConfig(scale=1.0)
        assert cfg.effective_mean_tasks_per_job == pytest.approx(
            TABLE_II_TARGETS["average_tasks_per_job"]
        )
        assert cfg.effective_job_scale == 1.0
        assert cfg.effective_size_scale == 1.0

    def test_task_duration_mean_near_target(self, trace):
        stats = trace.statistics()
        # The task-weighted mean duration is calibrated to the published value.
        assert stats.average_task_duration == pytest.approx(
            TABLE_II_TARGETS["average_task_duration"], rel=0.25
        )

    def test_min_task_duration_respects_floor(self, trace):
        cfg = GoogleTraceConfig(scale=0.05)
        for spec in trace:
            assert spec.map_duration.mean >= cfg.min_task_duration - 1e-9

    def test_expected_load_matches_paper_regime(self, trace):
        cfg = GoogleTraceConfig(scale=0.05)
        load = trace.expected_load(cfg.effective_num_machines)
        # Paper regime: ~0.45; allow generous slack for heavy-tail sampling noise.
        assert 0.2 < load < 0.8

    def test_reduce_tasks_fractional_split(self, trace):
        for spec in trace:
            assert spec.num_map_tasks >= 1
            if spec.total_tasks > 1:
                assert spec.num_reduce_tasks <= spec.total_tasks // 2 + 1

    def test_reproducible_with_same_seed(self):
        generator = GoogleTraceGenerator(GoogleTraceConfig(scale=0.01))
        a = generator.generate(seed=42)
        b = generator.generate(seed=42)
        assert [s.total_tasks for s in a] == [s.total_tasks for s in b]
        assert [s.arrival_time for s in a] == [s.arrival_time for s in b]

    def test_different_seeds_differ(self):
        generator = GoogleTraceGenerator(GoogleTraceConfig(scale=0.01))
        a = generator.generate(seed=1)
        b = generator.generate(seed=2)
        assert [s.total_tasks for s in a] != [s.total_tasks for s in b]

    def test_generate_many(self):
        generator = GoogleTraceGenerator(GoogleTraceConfig(scale=0.005))
        traces = generator.generate_many([0, 1, 2])
        assert len(traces) == 3

    def test_size_duration_correlation_is_positive(self):
        trace = GoogleTraceGenerator(GoogleTraceConfig(scale=0.2)).generate(seed=3)
        sizes = np.array([spec.total_tasks for spec in trace], dtype=float)
        durations = np.array([spec.map_duration.mean for spec in trace])
        correlation = np.corrcoef(np.log(sizes + 1), np.log(durations))[0, 1]
        assert correlation > 0.2

    def test_zero_correlation_config(self):
        cfg = GoogleTraceConfig(scale=0.1, size_duration_correlation=0.0)
        trace = GoogleTraceGenerator(cfg).generate(seed=3)
        assert trace.num_jobs == cfg.effective_num_jobs
