"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro.cluster.stragglers import ProbabilisticSlowdown
from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.events import Event, EventHeap, EventType
from repro.simulation.scheduler_api import LaunchRequest, Scheduler, SchedulerView
from repro.workload.distributions import Deterministic
from repro.workload.generators import uniform_trace
from repro.workload.job import JobSpec, Phase
from repro.workload.trace import Trace


class GreedyScheduler(Scheduler):
    """Launches one copy of every launchable task, jobs in arrival order."""

    name = "greedy-test"

    def schedule(self, view: SchedulerView) -> Sequence[LaunchRequest]:
        free = view.num_free_machines
        requests: List[LaunchRequest] = []
        for job in sorted(view.alive_jobs, key=lambda j: j.arrival_time):
            for task in self.eligible_tasks(job):
                if free <= 0:
                    return requests
                requests.append(LaunchRequest(task=task, num_copies=1))
                free -= 1
        return requests


class CloningScheduler(Scheduler):
    """Launches two copies of every map task (and one of each reduce task)."""

    name = "cloning-test"

    def schedule(self, view: SchedulerView) -> Sequence[LaunchRequest]:
        free = view.num_free_machines
        requests: List[LaunchRequest] = []
        for job in view.alive_jobs:
            for task in self.eligible_tasks(job):
                copies = 2 if task.phase is Phase.MAP else 1
                copies = min(copies, free)
                if copies <= 0:
                    return requests
                requests.append(LaunchRequest(task=task, num_copies=copies))
                free -= copies
        return requests


class LazyScheduler(Scheduler):
    """Never launches anything (used to test the stuck-simulation guard)."""

    name = "lazy-test"

    def schedule(self, view: SchedulerView) -> Sequence[LaunchRequest]:
        return []


class OverRequestingScheduler(GreedyScheduler):
    """Requests more copies than there are free machines."""

    name = "over-requesting-test"

    def schedule(self, view: SchedulerView) -> Sequence[LaunchRequest]:
        requests = list(super().schedule(view))
        if requests:
            task = requests[0].task
            requests.append(LaunchRequest(task=task, num_copies=view.num_machines * 2))
        return requests


def single_job_trace(maps=2, reduces=1, map_d=10.0, reduce_d=5.0, arrival=0.0,
                     weight=1.0) -> Trace:
    spec = JobSpec(
        job_id=0,
        arrival_time=arrival,
        weight=weight,
        num_map_tasks=maps,
        num_reduce_tasks=reduces,
        map_duration=Deterministic(map_d),
        reduce_duration=Deterministic(reduce_d),
    )
    return Trace([spec])


class TestBasicExecution:
    def test_single_job_flowtime_is_exact(self):
        # 2 map tasks in parallel (10 s) then 1 reduce task (5 s) -> 15 s.
        trace = single_job_trace()
        engine = SimulationEngine(trace, GreedyScheduler(), num_machines=4)
        result = engine.run()
        assert result.num_jobs == 1
        assert result.records[0].flowtime == pytest.approx(15.0)
        assert result.records[0].map_phase_completion_time == pytest.approx(10.0)
        assert result.makespan == pytest.approx(15.0)

    def test_serial_execution_on_single_machine(self):
        # 2 maps + 1 reduce on one machine: 10 + 10 + 5 = 25 s.
        trace = single_job_trace()
        result = SimulationEngine(trace, GreedyScheduler(), num_machines=1).run()
        assert result.records[0].flowtime == pytest.approx(25.0)

    def test_arrival_offsets_are_respected(self):
        trace = single_job_trace(arrival=7.0)
        result = SimulationEngine(trace, GreedyScheduler(), num_machines=4).run()
        record = result.records[0]
        assert record.arrival_time == 7.0
        assert record.completion_time == pytest.approx(22.0)
        assert record.flowtime == pytest.approx(15.0)

    def test_map_only_job(self):
        trace = single_job_trace(maps=3, reduces=0)
        result = SimulationEngine(trace, GreedyScheduler(), num_machines=3).run()
        assert result.records[0].flowtime == pytest.approx(10.0)

    def test_reduce_only_job(self):
        trace = single_job_trace(maps=0, reduces=2, reduce_d=8.0)
        result = SimulationEngine(trace, GreedyScheduler(), num_machines=2).run()
        assert result.records[0].flowtime == pytest.approx(8.0)

    def test_useful_work_accounting(self):
        trace = single_job_trace()
        result = SimulationEngine(trace, GreedyScheduler(), num_machines=4).run()
        assert result.useful_work == pytest.approx(2 * 10.0 + 5.0)
        assert result.wasted_work == 0.0
        assert result.total_copies == 3
        assert result.cloning_ratio == pytest.approx(1.0)

    def test_machine_speed_scales_durations(self):
        trace = single_job_trace()
        result = SimulationEngine(
            trace, GreedyScheduler(), num_machines=4, machine_speed=2.0
        ).run()
        assert result.records[0].flowtime == pytest.approx(7.5)

    def test_two_jobs_share_the_cluster(self):
        specs = [
            JobSpec(job_id=i, arrival_time=0.0, weight=1.0, num_map_tasks=2,
                    num_reduce_tasks=0, map_duration=Deterministic(10.0),
                    reduce_duration=Deterministic(10.0))
            for i in range(2)
        ]
        result = SimulationEngine(Trace(specs), GreedyScheduler(), num_machines=4).run()
        assert result.num_jobs == 2
        assert all(record.flowtime == pytest.approx(10.0) for record in result.records)


class TestPrecedenceConstraint:
    def test_reduce_never_starts_before_map_phase_ends(self):
        trace = single_job_trace(maps=4, reduces=2, map_d=10.0, reduce_d=5.0)
        engine = SimulationEngine(trace, GreedyScheduler(), num_machines=10)
        result = engine.run()
        # Map phase ends at 10; reduce tasks then need 5 more seconds.
        assert result.records[0].flowtime == pytest.approx(15.0)
        job = engine._jobs[0]
        for task in job.reduce_tasks:
            for copy in task.copies:
                assert copy.start_time >= job.map_phase_completion_time

    def test_parked_reduce_copy_occupies_machine_without_progress(self):
        # A scheduler that launches every unscheduled task immediately parks
        # the reduce copy on a machine until the map phase completes.
        class ParkingScheduler(Scheduler):
            name = "parking-test"

            def schedule(self, view: SchedulerView) -> Sequence[LaunchRequest]:
                free = view.num_free_machines
                requests: List[LaunchRequest] = []
                for job in view.alive_jobs:
                    for phase in (Phase.MAP, Phase.REDUCE):
                        for task in job.unscheduled_tasks(phase):
                            if free <= 0:
                                return requests
                            requests.append(LaunchRequest(task=task, num_copies=1))
                            free -= 1
                return requests

        trace = single_job_trace(maps=1, reduces=1, map_d=10.0, reduce_d=5.0)
        engine = SimulationEngine(trace, ParkingScheduler(), num_machines=4)
        result = engine.run()
        job = engine._jobs[0]
        reduce_copy = job.reduce_tasks[0].copies[0]
        assert reduce_copy.launch_time == pytest.approx(0.0)
        assert reduce_copy.start_time == pytest.approx(10.0)
        assert result.records[0].flowtime == pytest.approx(15.0)


class TestCloning:
    def test_clone_kill_frees_machines_and_counts_waste(self):
        trace = single_job_trace(maps=1, reduces=0, map_d=10.0)
        engine = SimulationEngine(trace, CloningScheduler(), num_machines=4)
        result = engine.run()
        # Both copies are deterministic 10 s: one wins, the other is killed
        # at the same instant having consumed 10 s of machine time.
        assert result.total_copies == 2
        assert result.records[0].flowtime == pytest.approx(10.0)
        assert result.useful_work == pytest.approx(10.0)
        assert result.wasted_work == pytest.approx(10.0)
        assert result.redundant_work_fraction == pytest.approx(0.5)
        assert engine.cluster.num_free == 4

    def test_cloning_ratio_reported(self):
        trace = single_job_trace(maps=2, reduces=1)
        result = SimulationEngine(trace, CloningScheduler(), num_machines=8).run()
        assert result.total_copies == 5
        assert result.cloning_ratio == pytest.approx(5.0 / 3.0)


class TestRobustness:
    def test_stuck_scheduler_raises(self):
        trace = single_job_trace()
        engine = SimulationEngine(trace, LazyScheduler(), num_machines=2)
        with pytest.raises(SimulationError):
            engine.run()

    def test_over_requesting_is_truncated_and_counted(self):
        trace = single_job_trace(maps=2, reduces=1)
        engine = SimulationEngine(trace, OverRequestingScheduler(), num_machines=2)
        result = engine.run()
        assert result.over_requests > 0
        assert result.num_jobs == 1

    def test_max_time_guard(self):
        trace = single_job_trace(arrival=100.0)
        engine = SimulationEngine(
            trace, GreedyScheduler(), num_machines=2, max_time=50.0
        )
        with pytest.raises(SimulationError):
            engine.run()

    def test_launching_completed_task_raises(self):
        class BadScheduler(GreedyScheduler):
            def __init__(self):
                self._stash = None

            def schedule(self, view):
                requests = list(super().schedule(view))
                if requests and self._stash is None:
                    self._stash = requests[0].task
                if self._stash is not None and self._stash.is_completed:
                    return [LaunchRequest(task=self._stash, num_copies=1)]
                return requests

        trace = single_job_trace(maps=1, reduces=1)
        engine = SimulationEngine(trace, BadScheduler(), num_machines=1)
        with pytest.raises(SimulationError):
            engine.run()

    def test_invalid_constructor_arguments(self):
        trace = single_job_trace()
        with pytest.raises(ValueError):
            SimulationEngine(trace, GreedyScheduler(), num_machines=0)
        with pytest.raises(ValueError):
            SimulationEngine(trace, GreedyScheduler(), num_machines=1,
                             machine_speed=0.0)

    def test_check_invariants_mode(self):
        trace = uniform_trace(3, tasks_per_job=2, reduce_tasks_per_job=1,
                              mean_duration=5.0, inter_arrival=1.0)
        result = SimulationEngine(
            trace, GreedyScheduler(), num_machines=3, check_invariants=True
        ).run()
        assert result.num_jobs == 3


class TestStragglerInjection:
    def test_slowdown_model_inflates_flowtime(self):
        trace = single_job_trace(maps=1, reduces=0, map_d=10.0)
        slow = SimulationEngine(
            trace,
            GreedyScheduler(),
            num_machines=1,
            straggler_model=ProbabilisticSlowdown(probability=1.0, factor=3.0),
        ).run()
        assert slow.records[0].flowtime == pytest.approx(30.0)

    def test_seed_changes_sampled_durations(self):
        trace = uniform_trace(4, tasks_per_job=3, reduce_tasks_per_job=1,
                              mean_duration=10.0, cv=0.5)
        a = SimulationEngine(trace, GreedyScheduler(), num_machines=4, seed=1).run()
        b = SimulationEngine(trace, GreedyScheduler(), num_machines=4, seed=2).run()
        assert a.mean_flowtime != b.mean_flowtime

    def test_same_seed_is_reproducible(self):
        trace = uniform_trace(4, tasks_per_job=3, reduce_tasks_per_job=1,
                              mean_duration=10.0, cv=0.5)
        a = SimulationEngine(trace, GreedyScheduler(), num_machines=4, seed=9).run()
        b = SimulationEngine(trace, GreedyScheduler(), num_machines=4, seed=9).run()
        assert a.mean_flowtime == pytest.approx(b.mean_flowtime)
        assert a.makespan == pytest.approx(b.makespan)


class TestEvents:
    def test_event_ordering_same_time(self):
        finish = Event.copy_finish(5.0, 1, copy=None)
        arrival = Event.arrival(5.0, 0, job=None)
        tick = Event.tick(5.0, 2)
        ordered = sorted([tick, arrival, finish])
        assert [e.event_type for e in ordered] == [
            EventType.COPY_FINISH,
            EventType.JOB_ARRIVAL,
            EventType.TICK,
        ]

    def test_event_ordering_by_time(self):
        early = Event.tick(1.0, 5)
        late = Event.copy_finish(2.0, 1, copy=None)
        assert sorted([late, early])[0] is early


class _StubCopy:
    """Minimal copy stand-in for heap staleness tests."""

    def __init__(self) -> None:
        self.finish_time = None
        self.killed_at = None
        self.finish_version = 0


class TestSameTimestampBatchDraining:
    """The engine's fused drain and ``pop_time_batch`` are one contract.

    The engine hot loop drains each same-timestamp batch with one
    ``pop_entry`` followed by ``pop_entry_at`` until exhausted;
    ``pop_time_batch`` materialises the same batch explicitly.  At ties
    the two must yield entries in the identical ``(priority, sequence)``
    order, never surface a stale finish entry, and produce exactly one
    batch per unique timestamp.
    """

    @staticmethod
    def _populate(heap: EventHeap) -> list:
        """Fill ``heap`` with colliding timestamps and stale finishes.

        Returns the copies whose queued finish entries must NOT surface
        (killed, already finished, or superseded by a re-estimate).
        """
        import random

        rng = random.Random(42)
        times = [0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 7.0]
        seq = 0
        stale_copies = []
        for time in times:
            # A burst of mixed-kind events at this timestamp, in a
            # deliberately scrambled push order.
            kinds = ["arrival", "finish", "tick", "failure", "repair", "finish"]
            rng.shuffle(kinds)
            for kind in kinds:
                if kind == "arrival":
                    heap.push_arrival(object(), time, seq)
                elif kind == "finish":
                    copy = _StubCopy()
                    heap.push_finish(copy, time, seq)
                    fate = rng.random()
                    if fate < 0.25:
                        copy.killed_at = time  # killed clone
                        stale_copies.append(copy)
                    elif fate < 0.5:
                        # Decrease-key: a re-estimate supersedes the
                        # queued entry; only the bumped-version entry at
                        # the new time is live.
                        seq += 1
                        heap.push_finish(copy, time + 1.5, seq)
                elif kind == "tick":
                    heap.push(Event.tick(time, seq))
                elif kind == "failure":
                    heap.push(Event.machine_failure(time, seq, machine_id=0))
                else:
                    heap.push(Event.machine_repair(time, seq, machine_id=0))
                seq += 1
        return stale_copies

    @staticmethod
    def _drain_fused(heap: EventHeap) -> list:
        """Drain ``heap`` the way the engine hot loop does."""
        batches = []
        entry = heap.pop_entry()
        while entry is not None:
            time = entry[0]
            batch = [entry]
            nxt = heap.pop_entry_at(time)
            while nxt is not None:
                batch.append(nxt)
                nxt = heap.pop_entry_at(time)
            batches.append((time, batch))
            entry = heap.pop_entry()
        return batches

    def test_fused_drain_matches_batch_contract_at_ties(self):
        fused_heap, batch_heap = EventHeap(), EventHeap()
        stale = self._populate(fused_heap)
        self._populate(batch_heap)

        fused = self._drain_fused(fused_heap)
        reference = []
        batch = batch_heap.pop_time_batch()
        while batch is not None:
            reference.append(batch)
            batch = batch_heap.pop_time_batch()

        def shape(batches):
            return [
                (time, [(e[0], e[1], e[2]) for e in entries])
                for time, entries in batches
            ]

        # Identical heaps drain to identical batches either way.
        assert shape(fused) == shape(reference)

        times = [time for time, _ in fused]
        # Exactly one decision point per unique simulated time.
        assert times == sorted(set(times))
        for time, entries in fused:
            keys = [(e[1], e[2]) for e in entries]
            # Within a batch: global (priority, sequence) order -- at a
            # tie, finishes before repairs before failures before
            # arrivals before ticks, FIFO within a kind.
            assert keys == sorted(keys)
            assert all(e[0] == time for e in entries)
            # Stale finish entries (killed or superseded) never surface.
            for e in entries:
                if e[1] == int(EventType.COPY_FINISH):
                    copy = e[3]
                    assert copy not in stale
                    assert e[4] == copy.finish_version
