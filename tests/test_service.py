"""End-to-end and unit tests for the sweep service (repro.service).

The acceptance properties of PR 9:

(a) each unique RunSpec fingerprint executes at most once, however many
    concurrent studies ask for it (submit-time dedup + shard locks);
(b) a study served by the daemon has the same ResultSet fingerprint, and
    byte-identical CSV, as the same study executed offline via
    ``Study.run``;
(c) killing the daemon mid-sweep and restarting it on the same cache
    directory resumes with only cache misses.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.service import (
    ServiceClient,
    ServiceError,
    StudyRegistry,
    StudySubmitError,
    create_service,
)
from repro.simulation.results_store import ResultsStore, UncacheableSpecError, cache_stats
from repro.study import Study

#: Millisecond-fast bulk workload (same shape as tests/test_study.py).
BULK = {"kind": "bulk", "job_sizes": [2, 3, 4], "mean_duration": 5.0, "cv": 0.0}


def bulk_study(name: str, schedulers, seeds=(0, 1)) -> Study:
    return Study(
        name=name,
        schedulers=schedulers,
        workloads=(BULK,),
        seeds=seeds,
        machines=4,
    )


@pytest.fixture
def service(tmp_path):
    """An in-process daemon: HTTP serving, executor NOT yet started."""
    svc = create_service(cache_dir=tmp_path / "cache", workers=2)
    threading.Thread(target=svc.serve_forever, daemon=True).start()
    yield svc
    svc.stop()


@pytest.fixture
def client(service):
    client = ServiceClient(service.url, timeout=30.0)
    client.wait_healthy()
    return client


class TestRegistry:
    def test_study_walks_queued_running_completed(self, tmp_path):
        registry = StudyRegistry(ResultsStore(tmp_path))
        study = bulk_study("walk", ("FIFO",), seeds=(0, 1))
        state = registry.submit(study)
        assert state.status == "queued"
        specs = [point.to_run_spec() for point in study.points()]
        key = registry.next_key(timeout=1.0)
        registry.deliver(key, registry.spec_for(key).execute(), cache_hit=False)
        assert state.status == "running" and state.filled == 1
        key = registry.next_key(timeout=1.0)
        registry.deliver(key, registry.spec_for(key).execute(), cache_hit=False)
        assert state.status == "completed" and state.filled == len(specs)
        assert registry.engine_runs == 2

    def test_overlapping_submissions_share_in_flight_keys(self, tmp_path):
        registry = StudyRegistry(ResultsStore(tmp_path))
        a = registry.submit(bulk_study("a", ("FIFO", "SCA")))
        b = registry.submit(bulk_study("b", ("SCA", "SRPT")))
        # 4 + 4 points, 2 shared (the SCA cells).
        assert a.shared_at_submit == 0
        assert b.shared_at_submit == 2
        assert registry.unique_keys_seen == 6
        # Draining the queue yields exactly the 6 unique keys.
        keys = set()
        while True:
            key = registry.next_key(timeout=0.05)
            if key is None:
                break
            keys.add(key)
        assert len(keys) == 6
        # One delivery fans out to both studies' slots.
        shared = [k for k in keys if registry._inflight[k].waiters
                  and len(registry._inflight[k].waiters) == 2]
        assert len(shared) == 2
        result = registry.spec_for(shared[0]).execute()
        registry.deliver(shared[0], result, cache_hit=False)
        assert a.filled == 1 and b.filled == 1

    def test_zero_point_study_completes_on_arrival(self, tmp_path):
        registry = StudyRegistry(ResultsStore(tmp_path))
        state = registry.submit(bulk_study("empty", ()))
        assert state.status == "completed" and state.total == 0
        assert state.result_set().fingerprint() == bulk_study(
            "empty", ()
        ).run().fingerprint()

    def test_fail_key_fails_every_waiting_study(self, tmp_path):
        registry = StudyRegistry(ResultsStore(tmp_path))
        a = registry.submit(bulk_study("a", ("SCA",), seeds=(0,)))
        b = registry.submit(bulk_study("b", ("SCA",), seeds=(0,)))
        key = registry.next_key(timeout=1.0)
        registry.fail_key(key, "ValueError: boom")
        assert a.status == "failed" and "boom" in a.error
        assert b.status == "failed"
        with pytest.raises(ValueError):
            a.result_set()

    def test_uncacheable_study_is_rejected(self, tmp_path, monkeypatch):
        import repro.service.registry as registry_mod

        def explode(spec):
            raise UncacheableSpecError("lambda scheduler")

        monkeypatch.setattr(registry_mod, "run_spec_fingerprint", explode)
        registry = StudyRegistry(ResultsStore(tmp_path))
        with pytest.raises(StudySubmitError, match="uncacheable"):
            registry.submit(bulk_study("bad", ("FIFO",)))


class TestEndpoints:
    def test_healthz_and_metrics(self, client):
        assert client.healthz()
        metrics = client.metrics()
        assert metrics["runs"]["engine_runs"] == 0
        assert metrics["studies"]["total"] == 0
        assert "cache_dir" in metrics["store"]

    def test_unknown_paths_are_404(self, service, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("st-999999")
        assert excinfo.value.status == 404
        request = urllib.request.Request(service.url + "/nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404

    def test_invalid_spec_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit('{"study": {"name": "x", "schedulers": ["NotAPolicy"]}}')
        assert excinfo.value.status == 400
        assert "invalid study spec" in str(excinfo.value)

    def test_toml_submission_by_content_type(self, service, client):
        toml = (
            '[study]\nname = "toml-smoke"\nschedulers = ["FIFO"]\nseeds = [0]\n'
            'machines = 4\n\n[[study.workloads]]\nkind = "bulk"\n'
            "job_sizes = [2, 3]\nmean_duration = 5.0\ncv = 0.0\n"
        )
        request = urllib.request.Request(
            service.url + "/studies", data=toml.encode(), method="POST"
        )
        request.add_header("Content-Type", "application/toml")
        with urllib.request.urlopen(request) as reply:
            summary = json.loads(reply.read())
        assert reply.status == 202
        assert summary["name"] == "toml-smoke" and summary["total"] == 1

    def test_results_of_queued_study_are_409_unless_partial(self, service, client):
        # The fixture never starts the executor, so the study stays queued.
        summary = client.submit(bulk_study("stuck", ("FIFO",), seeds=(0,)))
        with pytest.raises(ServiceError) as excinfo:
            client.results(summary["id"])
        assert excinfo.value.status == 409
        partial = client.results(summary["id"], partial=True)
        assert partial == b""  # no rows filled yet -> empty CSV
        with pytest.raises(ServiceError) as excinfo:
            client.results(summary["id"], format="xml")
        assert excinfo.value.status == 400

    def test_failed_study_results_are_409_with_the_error(self, service, client):
        summary = client.submit(bulk_study("doomed", ("FIFO",), seeds=(0,)))
        key = service.registry.next_key(timeout=1.0)
        service.registry.fail_key(key, "RuntimeError: engine exploded")
        status = client.status(summary["id"])
        assert status["status"] == "failed"
        assert "engine exploded" in status["error"]
        with pytest.raises(ServiceError) as excinfo:
            client.results(summary["id"])
        assert excinfo.value.status == 409


class TestAcceptance:
    def test_concurrent_overlapping_studies_dedup_to_unique_runs(
        self, service, client
    ):
        """Properties (a) and (b): one engine run per unique fingerprint,
        byte-identical to the offline Study.run exports."""
        study_a = bulk_study("alpha", ("FIFO", "SCA"))
        study_b = bulk_study("beta", ("SCA", "SRPT"))
        summaries = {}

        def submit(study):
            summaries[study.name] = client.submit(study)

        threads = [
            threading.Thread(target=submit, args=(s,)) for s in (study_a, study_b)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # Both in, executor idle: the dedup index already collapsed the
        # 2 shared SCA cells, whichever submission won the race.
        metrics = client.metrics()
        assert metrics["runs"]["unique_keys_seen"] == 6
        assert metrics["runs"]["dedup_shared"] == 2

        service.start()  # release the executor
        final = {
            name: client.wait(summary["id"], timeout=120)
            for name, summary in summaries.items()
        }
        metrics = client.metrics()
        assert metrics["runs"]["engine_runs"] == 6  # == unique fingerprints
        assert metrics["runs"]["cache_hits"] == 0

        for study in (study_a, study_b):
            offline = study.run()
            served = final[study.name]
            assert served["resultset_fingerprint"] == offline.fingerprint()
            csv = client.results(served["id"], format="csv")
            assert csv == offline.to_csv().encode("utf-8")
            as_json = client.results(served["id"], format="json")
            assert as_json == offline.to_json().encode("utf-8")

    def test_restarted_daemon_resumes_with_only_cache_misses(self, tmp_path):
        """Property (c): a daemon killed after half the sweep leaves its
        results in the cache; its successor re-executes only the misses."""
        cache = tmp_path / "cache"
        full = bulk_study("resume", ("FIFO", "SCA"))
        half = bulk_study("resume", ("FIFO",))

        first = create_service(cache_dir=cache, workers=1)
        threading.Thread(target=first.serve_forever, daemon=True).start()
        first.start()
        client = ServiceClient(first.url, timeout=30.0)
        client.wait_healthy()
        client.wait(client.submit(half)["id"], timeout=120)
        first.stop()  # "kill" the daemon mid-sweep (2 of 4 cells done)
        stored = cache_stats(cache)["entries"]
        assert stored == 2

        second = create_service(cache_dir=cache, workers=1)
        threading.Thread(target=second.serve_forever, daemon=True).start()
        second.start()
        try:
            client = ServiceClient(second.url, timeout=30.0)
            client.wait_healthy()
            final = client.wait(client.submit(full)["id"], timeout=120)
            assert final["slots_from_cache"] == stored
            assert final["slots_from_runs"] == full.num_points() - stored
            metrics = client.metrics()
            assert metrics["runs"]["engine_runs"] == full.num_points() - stored
            assert metrics["runs"]["cache_hits"] == stored
            assert final["resultset_fingerprint"] == full.run().fingerprint()
        finally:
            second.stop()

    def test_resubmission_to_a_live_daemon_is_all_cache(self, service, client):
        service.start()
        study = bulk_study("twice", ("FIFO",))
        first = client.wait(client.submit(study)["id"], timeout=120)
        second = client.wait(client.submit(study)["id"], timeout=120)
        assert second["slots_from_cache"] == study.num_points()
        assert second["slots_from_runs"] == 0
        assert (
            second["resultset_fingerprint"] == first["resultset_fingerprint"]
        )


class TestServiceCli:
    def test_serve_parser_defaults(self):
        from repro.service.cli import DEFAULT_PORT, _serve_parser

        args = _serve_parser().parse_args(["--cache-dir", "/tmp/c"])
        assert args.host == "127.0.0.1"
        assert args.port == DEFAULT_PORT
        assert args.workers == 1

    def test_serve_requires_cache_dir(self):
        from repro.service.cli import _serve_parser

        with pytest.raises(SystemExit):
            _serve_parser().parse_args([])

    def test_submit_against_dead_service_fails_cleanly(self, tmp_path):
        from repro.cli import main

        spec = tmp_path / "study.json"
        spec.write_text(
            json.dumps(
                {
                    "study": {
                        "name": "x",
                        "schedulers": ["FIFO"],
                        "seeds": [0],
                        "machines": 4,
                        "workloads": [BULK],
                    }
                }
            )
        )
        with pytest.raises(SystemExit, match="submit failed"):
            main(
                [
                    "submit",
                    "--spec",
                    str(spec),
                    "--url",
                    "http://127.0.0.1:1",
                ]
            )

    def test_submit_cli_round_trip(self, service, client, tmp_path, capsys):
        from repro.cli import main

        service.start()
        spec = tmp_path / "study.json"
        spec.write_text(
            json.dumps(
                {
                    "study": {
                        "name": "cli-round-trip",
                        "schedulers": ["FIFO"],
                        "seeds": [0],
                        "machines": 4,
                        "workloads": [BULK],
                    }
                }
            )
        )
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "submit",
                "--spec",
                str(spec),
                "--url",
                service.url,
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed" in out
        offline = bulk_study("cli-round-trip", ("FIFO",), seeds=(0,))
        assert csv_path.read_bytes() == offline.run().to_csv().encode("utf-8")
