"""Sharded-simulation equivalence: merged results are bit-identical.

The core property: for a run inside the sharding soundness envelope,
:func:`repro.simulation.run_sharded` produces a
:class:`~repro.simulation.metrics.SimulationResult` whose fingerprint
equals the unsharded run's -- for random shard counts, serially and on a
pool, under heterogeneous speeds and machine failures.  Runs outside the
envelope (or whose dynamics violate it) must *fall back* and still return
the bit-identical unsharded result with an explanatory reason.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import MachineFailures, ScenarioSpec, ZipfSpeeds
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation import (
    ExperimentRunner,
    RunSpec,
    SchedulerSpec,
    ShardingUnsupported,
    plan_shards,
    run_sharded,
)
from repro.simulation.scheduler_api import ComposedScheduler
from repro.workload.stream import StreamSpec, stream_uniform_jobs

NUM_JOBS = 60

SCENARIOS = {
    "homogeneous": None,
    "zipf-hetero": ScenarioSpec(speeds=ZipfSpeeds()),
    "zipf-failures": ScenarioSpec(
        speeds=ZipfSpeeds(),
        failures=MachineFailures(rate=2e-5, mean_repair=50.0),
    ),
}


def make_spec(scenario=None, seed=3, **stream_overrides) -> RunSpec:
    kwargs = dict(
        tasks_per_job=1,
        reduce_tasks_per_job=0,
        mean_duration=8.0,
        inter_arrival=30.0,
    )
    kwargs.update(stream_overrides)
    return RunSpec(
        trace=StreamSpec(
            factory=stream_uniform_jobs,
            num_jobs=NUM_JOBS,
            kwargs=kwargs,
            name="shard-prop",
        ),
        scheduler=SchedulerSpec(FIFOScheduler),
        num_machines=20,
        seed=seed,
        scenario=scenario,
    )


class TestMergedFingerprintProperty:
    """Merged fingerprint == unsharded fingerprint, whatever happens."""

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
    def test_random_shard_counts(self, scenario_name, workers):
        scenario = SCENARIOS[scenario_name]
        rng = np.random.default_rng(42)
        shard_counts = sorted({int(k) for k in rng.integers(2, 13, size=4)})
        sharded_at_least_once = False
        for seed in (0, 3, 4):
            spec = make_spec(scenario, seed=seed)
            base = ExperimentRunner(workers=1).run([spec])[0]
            for num_shards in shard_counts:
                runner = ExperimentRunner(workers=workers)
                outcome = run_sharded(spec, num_shards, runner=runner)
                assert outcome.result.fingerprint() == base.fingerprint(), (
                    f"{scenario_name} seed={seed} k={num_shards} "
                    f"workers={workers}: sharded={outcome.sharded} "
                    f"reason={outcome.fallback_reason}"
                )
                sharded_at_least_once |= outcome.sharded
                if outcome.sharded:
                    assert outcome.num_shards == min(num_shards, NUM_JOBS)
                    assert outcome.fallback_reason is None
        # The property must not pass vacuously: some combination has to
        # exercise the genuine shard-and-merge path.
        assert sharded_at_least_once, (
            f"{scenario_name}: every combination fell back"
        )

    def test_failure_scenario_actually_shards_for_some_seed(self):
        scenario = SCENARIOS["zipf-failures"]
        sharded = []
        for seed in range(6):
            spec = make_spec(scenario, seed=seed)
            outcome = run_sharded(spec, 4)
            base = ExperimentRunner(workers=1).run([spec])[0]
            assert outcome.result.fingerprint() == base.fingerprint()
            if outcome.sharded and base.machine_failures > 0:
                sharded.append(seed)
        assert sharded, "no seed sharded a run that saw machine failures"

    def test_merged_records_equal_not_just_fingerprint(self):
        spec = make_spec(SCENARIOS["zipf-hetero"])
        base = ExperimentRunner(workers=1).run([spec])[0]
        outcome = run_sharded(spec, 5)
        assert outcome.sharded
        assert outcome.result.canonical_dict() == base.canonical_dict()


class TestGatesAndFallback:
    def test_multi_task_jobs_are_gated(self):
        spec = make_spec(tasks_per_job=4)
        with pytest.raises(ShardingUnsupported, match="tasks_per_job"):
            plan_shards(spec, 4)
        outcome = run_sharded(spec, 4)
        assert not outcome.sharded
        assert "tasks_per_job" in outcome.fallback_reason
        base = ExperimentRunner(workers=1).run([spec])[0]
        assert outcome.result.fingerprint() == base.fingerprint()

    def test_redundancy_scheduler_is_gated(self):
        spec = make_spec()
        spec = RunSpec(
            trace=spec.trace,
            scheduler=SchedulerSpec(
                ComposedScheduler, {"redundancy": "clone"}
            ),
            num_machines=spec.num_machines,
            seed=spec.seed,
        )
        outcome = run_sharded(spec, 4)
        assert not outcome.sharded
        assert "redundancy" in outcome.fallback_reason

    def test_zero_inter_arrival_is_gated(self):
        spec = make_spec(inter_arrival=0.0)
        with pytest.raises(ShardingUnsupported, match="inter_arrival"):
            plan_shards(spec, 2)

    def test_non_serialized_run_falls_back(self):
        # inter_arrival < duration: every job overlaps the next, the
        # dynamic validator must reject the merge.
        spec = make_spec(inter_arrival=2.0)
        outcome = run_sharded(spec, 4)
        assert not outcome.sharded
        assert "serialize" in outcome.fallback_reason
        base = ExperimentRunner(workers=1).run([spec])[0]
        assert outcome.result.fingerprint() == base.fingerprint()

    def test_plan_shards_windows_are_balanced_and_contiguous(self):
        spec = make_spec()
        shards = plan_shards(spec, 7)
        counts = [s.trace.num_jobs for s in shards]
        starts = [dict(s.trace.kwargs)["start"] for s in shards]
        assert sum(counts) == NUM_JOBS
        assert max(counts) - min(counts) <= 1
        assert starts == [
            sum(counts[:i]) for i in range(len(counts))
        ]


class TestCacheResume:
    def test_second_sharded_run_is_all_cache_hits(self, tmp_path):
        spec = make_spec(SCENARIOS["zipf-hetero"])
        cold = run_sharded(
            spec, 6, runner=ExperimentRunner(workers=1, cache_dir=tmp_path)
        )
        assert cold.sharded and cold.run_stats["executed"] == 6
        warm = run_sharded(
            spec, 6, runner=ExperimentRunner(workers=1, cache_dir=tmp_path)
        )
        assert warm.sharded
        assert warm.run_stats == {
            "executed": 0, "cache_hits": 6, "uncacheable": 0,
        }
        assert warm.result.fingerprint() == cold.result.fingerprint()

    def test_interrupted_run_resumes_missing_shards_only(self, tmp_path):
        spec = make_spec()
        shards = plan_shards(spec, 6)
        # Simulate an interrupted run: only the first two shards finished.
        ExperimentRunner(workers=1, cache_dir=tmp_path).run(shards[:2])
        resumed = run_sharded(
            spec, 6, runner=ExperimentRunner(workers=1, cache_dir=tmp_path)
        )
        assert resumed.sharded
        assert resumed.run_stats["cache_hits"] == 2
        assert resumed.run_stats["executed"] == 4
        base = ExperimentRunner(workers=1).run([spec])[0]
        assert resumed.result.fingerprint() == base.fingerprint()

    def test_shard_counts_key_distinct_cache_entries(self, tmp_path):
        spec = make_spec()
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        a = run_sharded(spec, 3, runner=runner)
        b = run_sharded(spec, 4, runner=runner)
        assert a.sharded and b.sharded
        # Different windows -> different fingerprints -> no false hits.
        assert b.run_stats["cache_hits"] == 0
        assert a.result.fingerprint() == b.result.fingerprint()


class TestBatchedDispatch:
    def test_pool_dispatch_is_batched_and_accounted(self):
        specs = [make_spec(seed=s) for s in range(8)]
        runner = ExperimentRunner(workers=2, chunksize=2)
        pooled = runner.run(specs)
        stats = runner.last_dispatch_stats
        assert stats["batches"] == 4
        assert stats["batch_size"] == 2
        assert sum(stats["per_worker"].values()) == 4
        serial = ExperimentRunner(workers=1).run(specs)
        for a, b in zip(pooled, serial):
            assert a.fingerprint() == b.fingerprint()

    def test_serial_dispatch_records_one_in_process_batch(self):
        import os

        runner = ExperimentRunner(workers=1)
        runner.run([make_spec()])
        stats = runner.last_dispatch_stats
        assert stats["batches"] == 1
        assert stats["per_worker"] == {os.getpid(): 1}
