"""Tests for the paper's offline Algorithm 1 (OfflineSRPTScheduler)."""

from __future__ import annotations

import pytest

from repro.analysis.theory import offline_bound_check
from repro.core.offline import OfflineSRPTScheduler
from repro.simulation import run_simulation
from repro.workload.generators import bulk_arrival_trace


class TestPriorityOrdering:
    def test_small_jobs_finish_before_large_jobs(self):
        # Equal weights: SRPT priority = 1/phi, so the smallest job finishes
        # first under bulk arrival when machines are scarce.
        trace = bulk_arrival_trace([2, 6, 20], mean_duration=10.0, cv=0.0)
        result = run_simulation(trace, OfflineSRPTScheduler(), num_machines=4)
        by_job = {record.job_id: record.flowtime for record in result.records}
        assert by_job[0] < by_job[1] < by_job[2]

    def test_weights_override_size_order(self):
        # The large job gets a huge weight, boosting its priority above the
        # small job's.
        trace = bulk_arrival_trace(
            [2, 20], mean_duration=10.0, cv=0.0, weights=[1.0, 100.0]
        )
        result = run_simulation(trace, OfflineSRPTScheduler(), num_machines=2)
        by_job = {record.job_id: record.completion_time for record in result.records}
        assert by_job[1] < by_job[0]

    def test_no_cloning_is_performed(self):
        trace = bulk_arrival_trace([4, 8], mean_duration=10.0, cv=0.3)
        result = run_simulation(trace, OfflineSRPTScheduler(), num_machines=30)
        assert result.cloning_ratio == pytest.approx(1.0)
        assert result.wasted_work == 0.0

    def test_r_parameter_demotes_high_variance_jobs(self):
        # Two jobs with equal mean workload; one has large per-task variance.
        # With r > 0 the noisy job has larger phi, hence lower priority, so
        # the deterministic job is served first when machines are scarce.
        from repro.workload.distributions import Deterministic, LogNormal
        from repro.workload.job import JobSpec
        from repro.workload.trace import Trace

        stable = JobSpec(job_id=0, arrival_time=0.0, weight=1.0, num_map_tasks=4,
                         num_reduce_tasks=0, map_duration=Deterministic(10.0),
                         reduce_duration=Deterministic(10.0))
        noisy = JobSpec(job_id=1, arrival_time=0.0, weight=1.0, num_map_tasks=4,
                        num_reduce_tasks=0, map_duration=LogNormal(10.0, 8.0),
                        reduce_duration=LogNormal(10.0, 8.0))
        trace = Trace([stable, noisy])
        scheduler = OfflineSRPTScheduler(r=3.0)
        result = run_simulation(trace, scheduler, num_machines=1, seed=0)
        by_job = {record.job_id: record.completion_time for record in result.records}
        assert by_job[0] < by_job[1]

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            OfflineSRPTScheduler(r=-1.0)


class TestParkingBehaviour:
    def test_parking_disabled_never_blocks_machines(self):
        trace = bulk_arrival_trace([6], mean_duration=10.0, cv=0.0,
                                   reduce_fraction=0.5)
        scheduler = OfflineSRPTScheduler(park_reduce_tasks=False)
        result = run_simulation(trace, scheduler, num_machines=10, seed=0)
        # 3 maps in parallel (10 s) then 3 reduces in parallel (10 s) = 20 s.
        assert result.records[0].flowtime == pytest.approx(20.0)

    def test_parking_enabled_gives_same_flowtime_with_spare_machines(self):
        trace = bulk_arrival_trace([6], mean_duration=10.0, cv=0.0,
                                   reduce_fraction=0.5)
        parked = run_simulation(
            trace, OfflineSRPTScheduler(park_reduce_tasks=True), num_machines=10
        )
        assert parked.records[0].flowtime == pytest.approx(20.0)

    def test_parking_wastes_machines_under_contention(self):
        # Two jobs, few machines: parking job 0's reduce tasks delays job 1.
        trace = bulk_arrival_trace([4, 4], mean_duration=10.0, cv=0.0,
                                   reduce_fraction=0.5)
        parked = run_simulation(
            trace, OfflineSRPTScheduler(park_reduce_tasks=True), num_machines=4
        )
        unparked = run_simulation(
            trace, OfflineSRPTScheduler(park_reduce_tasks=False), num_machines=4
        )
        assert unparked.total_flowtime <= parked.total_flowtime


class TestTheoremValidation:
    def test_deterministic_bulk_arrival_satisfies_bounds(self):
        trace = bulk_arrival_trace(
            [2, 3, 5, 8, 12, 20, 30], mean_duration=10.0, cv=0.0
        )
        result = run_simulation(trace, OfflineSRPTScheduler(), num_machines=10)
        report = offline_bound_check(result, trace, num_machines=10, r=0.0)
        assert report.fraction_satisfying_bound == 1.0
        assert report.empirical_competitive_ratio <= 2.0

    def test_noisy_bulk_arrival_mostly_satisfies_bounds(self):
        trace = bulk_arrival_trace(
            [2, 3, 5, 8, 12, 20, 30], mean_duration=10.0, cv=0.3
        )
        result = run_simulation(
            trace, OfflineSRPTScheduler(r=3.0), num_machines=10, seed=1
        )
        report = offline_bound_check(result, trace, num_machines=10, r=3.0)
        assert report.fraction_satisfying_bound >= report.theoretical_probability
