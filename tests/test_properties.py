"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocation import fractional_shares, integer_shares
from repro.core.bounds import theorem1_probability, lemma1_probability
from repro.core.effective_workload import (
    accumulated_higher_priority_workload,
    total_effective_workload,
)
from repro.core.speedup import LogSpeedup, ParetoSpeedup, PowerSpeedup
from repro.core.srptms_c import SRPTMSCScheduler
from repro.policies.redundancy import CheckpointRedundancy
from repro.scenarios import MachineFailures, ScenarioSpec, TopologySpec
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.engine import SimulationEngine
from repro.simulation.scheduler_api import ComposedScheduler
from repro.workload.distributions import BoundedPareto, Deterministic, LogNormal
from repro.workload.job import JobSpec, StageSpec
from repro.workload.trace import Trace


# --------------------------------------------------------------------------- strategies

positive_weights = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)


@st.composite
def job_weight_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [(i, draw(positive_weights)) for i in range(n)]


@st.composite
def job_spec_lists(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    specs = []
    for i in range(n):
        mean = draw(st.floats(min_value=1.0, max_value=50.0))
        cv = draw(st.floats(min_value=0.0, max_value=1.0))
        duration = LogNormal(mean, cv * mean) if cv > 0 else LogNormal(mean, 0.0)
        specs.append(
            JobSpec(
                job_id=i,
                arrival_time=draw(st.floats(min_value=0.0, max_value=30.0)),
                weight=draw(st.floats(min_value=0.5, max_value=10.0)),
                num_map_tasks=draw(st.integers(min_value=1, max_value=6)),
                num_reduce_tasks=draw(st.integers(min_value=0, max_value=3)),
                map_duration=duration,
                reduce_duration=duration,
            )
        )
    return specs


# --------------------------------------------------------------------------- allocation

class TestAllocationProperties:
    @given(pairs=job_weight_lists(),
           machines=st.integers(min_value=1, max_value=500),
           epsilon=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_fractional_shares_sum_to_m_and_are_nonnegative(self, pairs, machines,
                                                            epsilon):
        shares = fractional_shares(pairs, machines, epsilon)
        assert all(share >= -1e-9 for share in shares.values())
        assert sum(shares.values()) == pytest.approx(machines, rel=1e-6)

    @given(pairs=job_weight_lists(),
           machines=st.integers(min_value=1, max_value=500),
           epsilon=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_integer_shares_sum_to_m(self, pairs, machines, epsilon):
        fractional = fractional_shares(pairs, machines, epsilon)
        order = [job_id for job_id, _ in pairs]
        integers = integer_shares(fractional, order, machines)
        assert sum(integers.values()) == machines
        assert all(value >= 0 for value in integers.values())

    @given(pairs=job_weight_lists(), machines=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_epsilon_one_is_weight_proportional(self, pairs, machines):
        shares = fractional_shares(pairs, machines, 1.0)
        total_weight = sum(weight for _, weight in pairs)
        for job_id, weight in pairs:
            assert shares[job_id] == pytest.approx(
                machines * weight / total_weight, rel=1e-6
            )

    @given(pairs=job_weight_lists(),
           machines=st.integers(min_value=1, max_value=200),
           epsilon=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_higher_priority_jobs_never_get_less_per_weight(self, pairs, machines,
                                                            epsilon):
        shares = fractional_shares(pairs, machines, epsilon)
        per_weight = [shares[job_id] / weight for job_id, weight in pairs]
        # Walking down the priority order, the share per unit weight never
        # increases (top jobs are served first).
        for earlier, later in zip(per_weight, per_weight[1:]):
            assert later <= earlier + 1e-9


# --------------------------------------------------------------------------- speedup

class TestSpeedupProperties:
    @given(alpha=st.floats(min_value=1.5, max_value=10.0),
           x=st.integers(min_value=1, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_pareto_speedup_bounds(self, alpha, x):
        # alpha >= 1.5 is the regime where the paper's s(x) <= x holds.
        speedup = ParetoSpeedup(alpha=alpha)
        value = speedup(x)
        assert 1.0 - 1e-12 <= value <= x + 1e-9
        # Monotone in x.
        assert speedup(x + 1) >= value - 1e-12

    @given(alpha=st.floats(min_value=1.05, max_value=1.45),
           x=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_pareto_speedup_stays_concave_below_threshold(self, alpha, x):
        # Below alpha = 1.5 the s(x) <= x property can fail (documented
        # paper subtlety) but monotonicity and s(1) = 1 still hold.
        speedup = ParetoSpeedup(alpha=alpha)
        assert speedup(1) == pytest.approx(1.0)
        assert speedup(x + 1) >= speedup(x) - 1e-12

    @given(beta=st.floats(min_value=0.05, max_value=1.0),
           x=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_power_speedup_bounds(self, beta, x):
        value = PowerSpeedup(beta=beta)(x)
        assert 1.0 - 1e-12 <= value <= x + 1e-9

    @given(scale=st.floats(min_value=0.05, max_value=1.0),
           x=st.integers(min_value=1, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_log_speedup_bounds(self, scale, x):
        value = LogSpeedup(scale=scale)(x)
        assert 1.0 - 1e-12 <= value <= x + 1e-9


# --------------------------------------------------------------------------- distributions

class TestDistributionProperties:
    @given(minimum=st.floats(min_value=0.5, max_value=50.0),
           ratio=st.floats(min_value=1.5, max_value=100.0),
           alpha=st.floats(min_value=0.3, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_bounded_pareto_mean_inside_support(self, minimum, ratio, alpha):
        dist = BoundedPareto(minimum, minimum * ratio, alpha)
        assert minimum <= dist.mean <= minimum * ratio
        assert dist.std >= 0

    @given(mean=st.floats(min_value=0.5, max_value=1000.0),
           cv=st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_lognormal_reports_requested_moments(self, mean, cv):
        dist = LogNormal(mean, cv * mean)
        assert dist.mean == pytest.approx(mean)
        assert dist.std == pytest.approx(cv * mean)

    @given(minimum=st.floats(min_value=0.5, max_value=20.0),
           ratio=st.floats(min_value=1.5, max_value=50.0),
           alpha=st.floats(min_value=0.3, max_value=4.0),
           u=st.lists(st.floats(min_value=0.0, max_value=0.999), min_size=2,
                      max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_bounded_pareto_quantile_monotone(self, minimum, ratio, alpha, u):
        dist = BoundedPareto(minimum, minimum * ratio, alpha)
        ordered = sorted(u)
        values = dist.quantile(np.array(ordered))
        assert np.all(np.diff(values) >= -1e-9)


# --------------------------------------------------------------------------- theory

class TestTheoryProperties:
    @given(r=st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_probabilities_are_valid_and_ordered(self, r):
        lemma = lemma1_probability(r)
        theorem = theorem1_probability(r)
        assert 0.0 <= theorem <= lemma <= 1.0

    @given(specs=job_spec_lists(), r=st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_accumulated_workload_dominates_own_workload(self, specs, r):
        accumulated = accumulated_higher_priority_workload(specs, r)
        total = sum(total_effective_workload(spec, r) for spec in specs)
        for spec in specs:
            own = total_effective_workload(spec, r)
            assert accumulated[spec.job_id] >= own - 1e-9
            assert accumulated[spec.job_id] <= total + 1e-9


# --------------------------------------------------------------------------- simulation

class TestSimulationProperties:
    @given(specs=job_spec_lists(),
           machines=st.integers(min_value=1, max_value=20),
           use_srptms=st.booleans(),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_workloads_complete_with_invariants(self, specs, machines,
                                                       use_srptms, seed):
        trace = Trace(specs)
        scheduler = (
            SRPTMSCScheduler(epsilon=0.6, r=1.0) if use_srptms else FIFOScheduler()
        )
        engine = SimulationEngine(trace, scheduler, num_machines=machines,
                                  seed=seed, check_invariants=True)
        result = engine.run()
        assert result.num_jobs == len(specs)
        assert engine.cluster.num_free == machines
        assert result.over_requests == 0
        for record in result.records:
            assert record.completion_time >= record.arrival_time
        # Conservation: useful work equals the sum of winning-copy durations.
        winning = sum(
            copy.finish_time - copy.start_time
            for job in engine._jobs
            for task in job.all_tasks()
            for copy in task.copies
            if copy.is_finished
        )
        assert result.useful_work == pytest.approx(winning)


# --------------------------------------------------------------------------- stage DAGs

@st.composite
def dag_stage_tuples(draw, duration):
    """A random valid stage DAG: every dependency points at an earlier stage."""
    num_stages = draw(st.integers(min_value=1, max_value=4))
    stages = []
    for index in range(num_stages):
        deps = ()
        if index > 0:
            deps = tuple(sorted(draw(st.sets(
                st.integers(min_value=0, max_value=index - 1),
                min_size=0, max_size=index,
            ))))
        # Stage 0 carries at least one task; later stages may be empty
        # (an empty stage completes the instant it becomes ready).
        num_tasks = draw(
            st.integers(min_value=1 if index == 0 else 0, max_value=3)
        )
        stages.append(StageSpec(name=f"s{index}", num_tasks=num_tasks,
                                duration=duration, deps=deps))
    return tuple(stages)


@st.composite
def dag_spec_lists(draw, deterministic=False):
    n = draw(st.integers(min_value=1, max_value=4))
    specs = []
    for i in range(n):
        if deterministic:
            duration = Deterministic(draw(st.floats(min_value=2.0,
                                                    max_value=20.0)))
        else:
            mean = draw(st.floats(min_value=1.0, max_value=30.0))
            cv = draw(st.floats(min_value=0.0, max_value=1.0))
            duration = LogNormal(mean, cv * mean)
        specs.append(JobSpec.from_stages(
            job_id=i,
            arrival_time=draw(st.floats(min_value=0.0, max_value=20.0)),
            weight=draw(st.floats(min_value=0.5, max_value=5.0)),
            stages=draw(dag_stage_tuples(duration)),
        ))
    return specs


class TestDagProperties:
    """Random stage-DAG workloads through the composed policy kernel."""

    @given(specs=dag_spec_lists(),
           machines=st.integers(min_value=1, max_value=12),
           use_srpt=st.booleans(),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_topological_order_respected(self, specs, machines, use_srpt, seed):
        # No copy of a stage's task may start before every predecessor
        # stage has completed -- the gating invariant of the DAG model.
        trace = Trace(specs)
        scheduler = ComposedScheduler(
            "srpt" if use_srpt else "fifo", "greedy", "none", r=3.0
        )
        engine = SimulationEngine(trace, scheduler, num_machines=machines,
                                  seed=seed, check_invariants=True)
        result = engine.run()
        assert result.num_jobs == len(specs)
        for job in engine._jobs:
            for stage, tasks in enumerate(job.stage_tasks):
                gates = [
                    job.stage_completion_time(dep)
                    for dep in job.stage_specs[stage].deps
                ]
                for task in tasks:
                    for copy in task.copies:
                        assert copy.start_time is not None
                        for gate in gates:
                            assert gate is not None
                            assert copy.start_time >= gate - 1e-9

    @given(specs=dag_spec_lists(deterministic=True),
           machines=st.integers(min_value=2, max_value=8),
           interval=st.floats(min_value=0.5, max_value=7.0),
           rate=st.floats(min_value=0.005, max_value=0.05),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_checkpoint_resume_conserves_work(self, specs, machines, interval,
                                              rate, seed):
        # With deterministic workloads on unit-speed machines, every task
        # contributes exactly its workload W to useful_work no matter how
        # often failures kill it: each kill's checkpointed increment counts
        # as useful, and the winning copy runs W minus the saved total.
        trace = Trace(specs)
        scheduler = ComposedScheduler(
            "fifo", "greedy", CheckpointRedundancy(interval=interval)
        )
        scenario = ScenarioSpec(
            failures=MachineFailures(rate=rate, mean_repair=2.0)
        )
        engine = SimulationEngine(trace, scheduler, num_machines=machines,
                                  seed=seed, scenario=scenario,
                                  check_invariants=True)
        result = engine.run()
        assert result.num_jobs == len(specs)
        expected = sum(
            stage.num_tasks * stage.duration.mean
            for spec in specs
            for stage in spec.stages
        )
        assert result.useful_work == pytest.approx(expected)
        if result.checkpoint_resumes:
            assert result.work_saved_by_checkpointing > 0.0

    @given(specs=dag_spec_lists(),
           machines=st.integers(min_value=1, max_value=10),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_redundancy_none_never_launches_second_copy(self, specs, machines,
                                                        seed):
        trace = Trace(specs)
        scheduler = ComposedScheduler("srpt", "greedy", "none", r=3.0)
        engine = SimulationEngine(trace, scheduler, num_machines=machines,
                                  seed=seed, check_invariants=True)
        result = engine.run()
        assert result.num_jobs == len(specs)
        assert result.redundant_copies_launched == 0
        for job in engine._jobs:
            for task in job.all_tasks():
                assert len(task.copies) == 1


# --------------------------------------------------------------------------- topology

class TestTopologyProperties:
    """Rack locality (PR 8): delay scheduling and remote pricing."""

    @given(specs=job_spec_lists(),
           racks=st.integers(min_value=2, max_value=4),
           machines=st.integers(min_value=4, max_value=16),
           locality_wait=st.floats(min_value=0.1, max_value=10.0),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_delay_never_waits_longer_than_locality_wait(self, specs, racks,
                                                         machines,
                                                         locality_wait, seed):
        # The delay policy's own instrumentation: the longest any deferred
        # task sat waiting for a local slot before dispatch is bounded by
        # the configured wait.
        trace = Trace(specs)
        scheduler = ComposedScheduler("srpt", "delay", "none", r=3.0,
                                      locality_wait=locality_wait)
        scenario = ScenarioSpec(
            topology=TopologySpec(racks=racks, remote_slowdown=2.0)
        )
        engine = SimulationEngine(trace, scheduler, num_machines=machines,
                                  seed=seed, scenario=scenario,
                                  check_invariants=True)
        result = engine.run()
        assert result.num_jobs == len(specs)
        assert scheduler.allocation.max_deferred_wait <= locality_wait + 1e-9

    @given(specs=job_spec_lists(),
           racks=st.integers(min_value=2, max_value=4),
           machines=st.integers(min_value=4, max_value=12),
           rate=st.floats(min_value=0.005, max_value=0.05),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_failed_host_never_rehosts_the_same_task(self, specs, racks,
                                                     machines, rate, seed):
        # With redundancy 'none' every killed copy is a failure kill, so
        # the delay policy's per-task blacklist must keep every relaunch
        # off the machines the task already died on -- unless the task
        # has died on *every* machine, in which case the blacklist is
        # forgiven (refusing the whole cluster forever would deadlock).
        trace = Trace(specs)
        scheduler = ComposedScheduler("srpt", "delay", "none", r=3.0)
        scenario = ScenarioSpec(
            failures=MachineFailures(rate=rate, mean_repair=5.0),
            topology=TopologySpec(racks=racks, remote_slowdown=2.0),
        )
        engine = SimulationEngine(trace, scheduler, num_machines=machines,
                                  seed=seed, scenario=scenario,
                                  check_invariants=True)
        result = engine.run()
        assert result.num_jobs == len(specs)
        for job in engine._jobs:
            for task in job.all_tasks():
                for copy in task.copies:
                    blacklisted = {
                        other.machine_id
                        for other in task.copies
                        if other is not copy
                        and other.killed_at is not None
                        and other.killed_at <= copy.start_time
                    }
                    assert (
                        copy.machine_id not in blacklisted
                        or len(blacklisted) >= machines
                    )

    @given(specs=dag_spec_lists(deterministic=True),
           racks=st.integers(min_value=2, max_value=4),
           machines=st.integers(min_value=4, max_value=12),
           slowdown=st.floats(min_value=1.0, max_value=4.0),
           use_delay=st.booleans(),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_remote_slowdown_never_raises_the_effective_rate(self, specs,
                                                             racks, machines,
                                                             slowdown,
                                                             use_delay, seed):
        # On a quiet homogeneous cluster with deterministic workloads, a
        # copy on its preferred rack runs for exactly its workload W and a
        # remote copy for exactly W * remote_slowdown -- the penalty can
        # only ever stretch a copy, never shrink it.
        trace = Trace(specs)
        scheduler = ComposedScheduler(
            "srpt", "delay" if use_delay else "greedy", "none", r=3.0
        )
        scenario = ScenarioSpec(
            topology=TopologySpec(racks=racks, remote_slowdown=slowdown)
        )
        engine = SimulationEngine(trace, scheduler, num_machines=machines,
                                  seed=seed, scenario=scenario,
                                  check_invariants=True)
        result = engine.run()
        assert result.num_jobs == len(specs)
        topology_active = slowdown > 1.0
        for job in engine._jobs:
            for stage, tasks in enumerate(job.stage_tasks):
                workload = job.stage_specs[stage].duration.mean
                for task in tasks:
                    for copy in task.copies:
                        if not copy.is_finished:
                            continue
                        local = (
                            not topology_active
                            or copy.machine_id % racks == task.preferred_rack
                        )
                        expected = workload if local else workload * slowdown
                        duration = copy.finish_time - copy.start_time
                        assert duration == pytest.approx(expected)
                        assert duration >= workload - 1e-9
