"""Consistency tests for the O(1) incremental job/task counters.

The hot-path overhaul replaced every scan-based scheduler query
(``num_unscheduled_*``, ``num_running_copies``, ``is_scheduled``,
``num_remaining_tasks``) with counters maintained at copy/task state
transitions.  These tests assert, at every scheduler decision point of
full runs -- including clone kills, blocked reduce copies and
failure-driven re-dispatch -- that the counters equal what a fresh scan
of the task lists reports.
"""

from __future__ import annotations

from repro.core.srptms_c import SRPTMSCScheduler
from repro.scenarios import MachineFailures, ScenarioSpec
from repro.schedulers.fair import FairScheduler
from repro.simulation import run_simulation
from repro.workload.generators import poisson_trace
from repro.workload.job import Job, Phase


def scanned_counters(job: Job) -> dict:
    """Recompute every incremental counter by scanning the task lists."""
    return {
        "unscheduled_map": sum(
            1 for t in job.map_tasks
            if not t.is_completed and not any(c.is_active for c in t.copies)
        ),
        "unscheduled_reduce": sum(
            1 for t in job.reduce_tasks
            if not t.is_completed and not any(c.is_active for c in t.copies)
        ),
        "incomplete_map": sum(1 for t in job.map_tasks if not t.is_completed),
        "incomplete_reduce": sum(
            1 for t in job.reduce_tasks if not t.is_completed
        ),
        "active_copies": sum(
            sum(1 for c in t.copies if c.is_active) for t in job.all_tasks()
        ),
        "copies_launched": sum(len(t.copies) for t in job.all_tasks()),
    }


def counter_values(job: Job) -> dict:
    """The incrementally maintained counters, via the public API."""
    return {
        "unscheduled_map": job.num_unscheduled_map_tasks,
        "unscheduled_reduce": job.num_unscheduled_reduce_tasks,
        "incomplete_map": job.num_incomplete_tasks(Phase.MAP),
        "incomplete_reduce": job.num_incomplete_tasks(Phase.REDUCE),
        "active_copies": job.num_running_copies,
        "copies_launched": job.total_copies_launched(),
    }


class CheckingScheduler(SRPTMSCScheduler):
    """SRPTMS+C that cross-checks every alive job's counters per decision."""

    checked = 0

    def schedule(self, view):
        for job in view.alive_jobs:
            assert counter_values(job) == scanned_counters(job), (
                f"counter drift on job {job.job_id} at t={view.time}"
            )
            type(self).checked += 1
        return super().schedule(view)


class CheckingFair(FairScheduler):
    """Fair scheduler variant of the cross-check (single-copy path)."""

    checked = 0

    def schedule(self, view):
        for job in view.alive_jobs:
            assert counter_values(job) == scanned_counters(job)
            type(self).checked += 1
        return super().schedule(view)


def test_counters_match_scans_throughout_a_cloning_run():
    CheckingScheduler.checked = 0
    trace = poisson_trace(40, 0.8, seed=11)
    result = run_simulation(
        trace, CheckingScheduler(epsilon=0.6, r=3.0), 24, seed=4
    )
    assert result.num_jobs == 40
    assert CheckingScheduler.checked > 100


def test_counters_match_scans_under_machine_failures():
    """Failure kills revert tasks to unscheduled -- the trickiest transition."""
    CheckingFair.checked = 0
    trace = poisson_trace(25, 0.5, seed=2)
    scenario = ScenarioSpec(
        failures=MachineFailures(rate=2e-3, mean_repair=20.0)
    )
    result = run_simulation(trace, CheckingFair(), 12, seed=6, scenario=scenario)
    assert result.num_jobs == 25
    assert result.machine_failures > 0
    assert CheckingFair.checked > 50


def test_recount_is_idempotent_after_a_run():
    """_recount() from scratch reproduces the incrementally maintained state."""
    from repro.simulation.engine import SimulationEngine

    trace = poisson_trace(30, 0.8, seed=7)
    engine = SimulationEngine(
        trace, SRPTMSCScheduler(epsilon=0.6, r=3.0), 16, seed=3
    )
    engine.run()
    for job in engine._jobs:
        before = counter_values(job)
        job._recount()
        assert counter_values(job) == before == scanned_counters(job)
