"""Concurrent-access tests for the results store (PR 9).

The contracts under test:

* same-destination writes are atomic -- readers never observe torn JSON,
  no matter how many processes store the same key at once;
* ``load_or_compute`` holds the shard's advisory lock across its
  load-compute-store window, so of N processes racing on one key exactly
  one runs the engine and every loser re-reads the winner's entry;
* the portable fallback lock (no ``fcntl``) provides the same exclusion
  between threads;
* ``cache_stats`` / ``prune_stale`` (the ``cache`` subcommand's engine)
  report and remove stale-format entries without touching current ones.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from pathlib import Path

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.simulation import (
    ResultsStore,
    RunSpec,
    SchedulerSpec,
    run_spec_fingerprint,
)
from repro.simulation.experiment_runner import TraceSpec
from repro.simulation.results_store import (
    FORMAT_VERSION,
    cache_stats,
    canonical_spec_description,
    prune_stale,
)
from repro.workload.generators import poisson_trace


def _spec(seed: int = 7) -> RunSpec:
    return RunSpec(
        trace=TraceSpec(
            factory=poisson_trace,
            kwargs={"num_jobs": 20, "arrival_rate": 1.0, "seed": 5},
        ),
        scheduler=SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0}),
        num_machines=8,
        seed=seed,
    )


def _race_same_key(cache_dir: str, markers: str, start, index: int) -> None:
    """Child: load_or_compute the shared key, drop run/fp marker files."""
    store = ResultsStore(cache_dir)
    spec = _spec()
    key = run_spec_fingerprint(spec)
    start.wait()

    def compute():
        (Path(markers) / f"run-{index}").write_text("x")
        time.sleep(0.05)  # widen the race window
        return spec.execute()

    result, cache_hit = store.load_or_compute(
        key, canonical_spec_description(spec), compute
    )
    (Path(markers) / f"fp-{index}").write_text(
        json.dumps({"fingerprint": result.fingerprint(), "cache_hit": cache_hit})
    )


def _store_own_key(cache_dir: str, start, seed: int) -> None:
    """Child: store the result of its own distinct spec."""
    store = ResultsStore(cache_dir)
    spec = _spec(seed=seed)
    key = run_spec_fingerprint(spec)
    start.wait()
    store.store(key, canonical_spec_description(spec), spec.execute())


def _hammer_same_destination(cache_dir: str, start, rounds: int) -> None:
    """Child: repeatedly rewrite the same entry (atomic-replace stress)."""
    store = ResultsStore(cache_dir)
    spec = _spec()
    key = run_spec_fingerprint(spec)
    result = spec.execute()
    description = canonical_spec_description(spec)
    start.wait()
    for _ in range(rounds):
        store.store(key, description, result)


class TestCrossProcessLocking:
    def test_racing_processes_run_the_engine_exactly_once(self, tmp_path):
        """N processes load_or_compute one key: one run, losers re-read."""
        markers = tmp_path / "markers"
        markers.mkdir()
        cache = tmp_path / "cache"
        start = multiprocessing.Event()
        children = [
            multiprocessing.Process(
                target=_race_same_key,
                args=(str(cache), str(markers), start, index),
            )
            for index in range(3)
        ]
        for child in children:
            child.start()
        time.sleep(0.2)  # let every child reach the barrier
        start.set()
        for child in children:
            child.join(timeout=120)
            assert child.exitcode == 0

        runs = sorted(p.name for p in markers.glob("run-*"))
        assert len(runs) == 1, f"engine ran {len(runs)} times: {runs}"
        reports = [
            json.loads((markers / f"fp-{index}").read_text()) for index in range(3)
        ]
        assert len({r["fingerprint"] for r in reports}) == 1
        # Exactly the winner computed; both losers saw a cache hit.
        assert sorted(r["cache_hit"] for r in reports) == [False, True, True]

    def test_concurrent_distinct_keys_never_produce_torn_json(self, tmp_path):
        cache = tmp_path / "cache"
        start = multiprocessing.Event()
        seeds = list(range(4))
        children = [
            multiprocessing.Process(
                target=_store_own_key, args=(str(cache), start, seed)
            )
            for seed in seeds
        ]
        for child in children:
            child.start()
        time.sleep(0.2)
        start.set()
        for child in children:
            child.join(timeout=120)
            assert child.exitcode == 0

        entry_paths = sorted(cache.glob("*/*.json"))
        assert len(entry_paths) == len(seeds)
        for path in entry_paths:
            entry = json.loads(path.read_text())  # parses => not torn
            assert entry["format"] == FORMAT_VERSION
        store = ResultsStore(cache)
        for seed in seeds:
            loaded = store.load(run_spec_fingerprint(_spec(seed=seed)))
            assert loaded is not None and loaded.seed == seed

    def test_same_destination_rewrites_stay_atomic(self, tmp_path):
        """Two processes rewriting one entry: every concurrent read parses."""
        cache = tmp_path / "cache"
        spec = _spec()
        key = run_spec_fingerprint(spec)
        store = ResultsStore(cache)
        path = store.store(key, canonical_spec_description(spec), spec.execute())
        start = multiprocessing.Event()
        children = [
            multiprocessing.Process(
                target=_hammer_same_destination, args=(str(cache), start, 20)
            )
            for _ in range(2)
        ]
        for child in children:
            child.start()
        time.sleep(0.2)
        start.set()
        deadline = time.monotonic() + 60
        reads = 0
        while any(child.is_alive() for child in children):
            json.loads(path.read_text())  # never torn mid-rewrite
            reads += 1
            if time.monotonic() > deadline:
                break
        for child in children:
            child.join(timeout=120)
            assert child.exitcode == 0
        assert reads > 0
        assert store.load(key) is not None

    def test_load_or_compute_warm_path_is_a_hit(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = _spec()
        key = run_spec_fingerprint(spec)
        first, hit_first = store.load_or_compute(
            key, canonical_spec_description(spec), spec.execute
        )
        assert hit_first is False
        second, hit_second = store.load_or_compute(
            key,
            canonical_spec_description(spec),
            lambda: pytest.fail("warm path must not recompute"),
        )
        assert hit_second is True
        assert second.fingerprint() == first.fingerprint()


class TestFallbackLock:
    def test_threads_exclude_each_other_without_fcntl(self, tmp_path, monkeypatch):
        """The O_CREAT|O_EXCL fallback gives the same one-run guarantee."""
        import repro.simulation.results_store as results_store

        monkeypatch.setattr(results_store, "fcntl", None)
        store = ResultsStore(tmp_path)
        spec = _spec()
        key = run_spec_fingerprint(spec)
        runs = []
        barrier = threading.Barrier(3)

        def compute():
            runs.append(threading.get_ident())
            time.sleep(0.05)
            return spec.execute()

        outcomes = []

        def worker():
            barrier.wait()
            outcomes.append(
                store.load_or_compute(
                    key, canonical_spec_description(spec), compute
                )
            )

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(runs) == 1
        assert sorted(hit for _, hit in outcomes) == [False, True, True]
        assert len({result.fingerprint() for result, _ in outcomes}) == 1

    def test_fallback_steals_stale_lock_files(self, tmp_path, monkeypatch):
        import repro.simulation.results_store as results_store

        monkeypatch.setattr(results_store, "fcntl", None)
        monkeypatch.setattr(results_store, "_FALLBACK_LOCK_STALE_SECONDS", 0.2)
        store = ResultsStore(tmp_path)
        spec = _spec()
        key = run_spec_fingerprint(spec)
        shard = store.cache_dir / key[:2]
        shard.mkdir(parents=True, exist_ok=True)
        # A crashed process left its exclusive marker behind; age it past
        # the stale threshold so the next locker steals it.
        stale = shard / (results_store._LOCK_BASENAME + ".excl")
        stale.touch()
        old = time.time() - 10.0
        import os

        os.utime(stale, (old, old))
        with store.shard_lock(key):
            pass  # acquiring must not deadlock on the orphaned marker


class TestCacheMaintenance:
    def _populate(self, cache_dir, seeds=(0, 1, 2)):
        store = ResultsStore(cache_dir)
        paths = []
        for seed in seeds:
            spec = _spec(seed=seed)
            paths.append(
                store.store(
                    run_spec_fingerprint(spec),
                    canonical_spec_description(spec),
                    spec.execute(),
                )
            )
        return paths

    def test_stats_counts_entries_bytes_and_formats(self, tmp_path):
        paths = self._populate(tmp_path)
        entry = json.loads(paths[0].read_text())
        entry["format"] = 2
        paths[0].write_text(json.dumps(entry))
        paths[1].write_text("not json{{{")

        stats = cache_stats(tmp_path)
        assert stats["entries"] == 3
        assert stats["total_bytes"] == sum(p.stat().st_size for p in paths)
        assert stats["format_version"] == FORMAT_VERSION
        assert stats["formats"] == {"2": 1, str(FORMAT_VERSION): 1, "unreadable": 1}
        assert stats["stale"] == 2

    def test_prune_stale_removes_only_non_current_formats(self, tmp_path):
        paths = self._populate(tmp_path)
        entry = json.loads(paths[0].read_text())
        entry["format"] = 1
        paths[0].write_text(json.dumps(entry))

        report = prune_stale(tmp_path)
        assert report["scanned"] == 3
        assert report["removed"] == 1
        assert report["kept"] == 2
        assert not paths[0].exists()
        assert paths[1].exists() and paths[2].exists()
        # Idempotent: a second prune finds nothing stale.
        assert prune_stale(tmp_path)["removed"] == 0

    def test_stats_on_missing_directory(self, tmp_path):
        stats = cache_stats(tmp_path / "nope")
        assert stats["entries"] == 0 and stats["total_bytes"] == 0

    def test_cache_cli_stats_and_prune(self, tmp_path, capsys):
        from repro.cli import main

        paths = self._populate(tmp_path)
        entry = json.loads(paths[0].read_text())
        entry["format"] = 1
        paths[0].write_text(json.dumps(entry))

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:        3" in out
        assert "stale entries:  1" in out

        assert main(["cache", "prune", "--stale", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert cache_stats(tmp_path)["entries"] == 2

    def test_cache_cli_prune_requires_stale_flag(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["cache", "prune", "--cache-dir", str(tmp_path)])
