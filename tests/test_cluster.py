"""Unit tests for the cluster substrate: machines, occupancy state, stragglers."""

from __future__ import annotations

import pytest

from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.stragglers import (
    NoStragglers,
    ParetoTailInflation,
    ProbabilisticSlowdown,
    SlowMachines,
)
from repro.workload.distributions import Deterministic
from repro.workload.job import Job, JobSpec, Phase, TaskCopy


def make_job(maps: int = 2, reduces: int = 1) -> Job:
    spec = JobSpec(
        job_id=0,
        arrival_time=0.0,
        weight=1.0,
        num_map_tasks=maps,
        num_reduce_tasks=reduces,
        map_duration=Deterministic(10.0),
        reduce_duration=Deterministic(5.0),
    )
    return Job.from_spec(spec)


def make_copy(task, machine_id: int, copy_id: int = 0) -> TaskCopy:
    copy = TaskCopy(
        copy_id=copy_id,
        task=task,
        machine_id=machine_id,
        launch_time=0.0,
        workload=10.0,
    )
    task.add_copy(copy)
    return copy


class TestMachine:
    def test_assign_and_release(self):
        machine = Machine(machine_id=0)
        job = make_job()
        copy = make_copy(job.map_tasks[0], 0)
        machine.assign(copy)
        assert not machine.is_free
        assert machine.copies_hosted == 1
        released = machine.release(elapsed=4.0)
        assert released is copy
        assert machine.is_free
        assert machine.busy_time == 4.0

    def test_double_assign_rejected(self):
        machine = Machine(machine_id=0)
        job = make_job()
        machine.assign(make_copy(job.map_tasks[0], 0))
        with pytest.raises(ValueError):
            machine.assign(make_copy(job.map_tasks[1], 0, copy_id=1))

    def test_release_free_machine_rejected(self):
        with pytest.raises(ValueError):
            Machine(machine_id=0).release()

    def test_release_rejects_negative_elapsed(self):
        machine = Machine(machine_id=0)
        job = make_job()
        machine.assign(make_copy(job.map_tasks[0], 0))
        with pytest.raises(ValueError):
            machine.release(elapsed=-1.0)

    def test_processing_time_scales_with_speed(self):
        assert Machine(machine_id=0, speed=2.0).processing_time(10.0) == 5.0
        with pytest.raises(ValueError):
            Machine(machine_id=0).processing_time(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(machine_id=-1)
        with pytest.raises(ValueError):
            Machine(machine_id=0, speed=0.0)


class TestClusterState:
    def test_initial_state(self):
        cluster = ClusterState(4)
        assert cluster.num_machines == 4
        assert cluster.num_free == 4
        assert cluster.num_busy == 0
        assert cluster.utilization == 0.0
        assert cluster.has_free_machine()

    def test_place_and_release_cycle(self):
        cluster = ClusterState(2)
        job = make_job()
        machine_id = cluster.peek_free_machine()
        copy = make_copy(job.map_tasks[0], machine_id)
        cluster.place(copy)
        assert cluster.num_busy == 1
        assert cluster.num_running(Phase.MAP) == 1
        assert cluster.num_running(Phase.REDUCE) == 0
        assert cluster.machine_of(copy) == machine_id
        cluster.check_invariants()
        cluster.release(copy, elapsed=3.0)
        assert cluster.num_free == 2
        assert cluster.num_running(Phase.MAP) == 0
        assert cluster.machine_of(copy) is None
        cluster.check_invariants()

    def test_place_requires_peeked_machine(self):
        cluster = ClusterState(2)
        job = make_job()
        wrong_id = (cluster.peek_free_machine() + 1) % 2
        copy = make_copy(job.map_tasks[0], wrong_id)
        with pytest.raises(ValueError):
            cluster.place(copy)
        # The free machine must not have been consumed by the failed attempt.
        assert cluster.num_free == 2

    def test_place_fails_when_full(self):
        cluster = ClusterState(1)
        job = make_job()
        copy = make_copy(job.map_tasks[0], cluster.peek_free_machine())
        cluster.place(copy)
        with pytest.raises(ValueError):
            cluster.place(make_copy(job.map_tasks[1], 0, copy_id=1))

    def test_release_unplaced_copy_rejected(self):
        cluster = ClusterState(1)
        job = make_job()
        copy = make_copy(job.map_tasks[0], 0)
        with pytest.raises(ValueError):
            cluster.release(copy)

    def test_phase_counts_track_reduce_copies(self):
        cluster = ClusterState(2)
        job = make_job()
        map_copy = make_copy(job.map_tasks[0], cluster.peek_free_machine())
        cluster.place(map_copy)
        reduce_copy = make_copy(job.reduce_tasks[0], cluster.peek_free_machine(), 1)
        cluster.place(reduce_copy)
        assert cluster.num_running(Phase.MAP) == 1
        assert cluster.num_running(Phase.REDUCE) == 1
        assert not cluster.has_free_machine()
        assert cluster.peek_free_machine() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterState(0)
        with pytest.raises(ValueError):
            ClusterState(1, machine_speed=0.0)
        with pytest.raises(ValueError):
            ClusterState(2, speeds=[1.0])
        with pytest.raises(ValueError):
            ClusterState(2, speeds=[1.0, 0.0])

    def test_per_machine_speeds(self):
        cluster = ClusterState(3, speeds=[0.5, 1.0, 2.0])
        assert cluster.speed_of(0) == 0.5
        assert cluster.speed_of(2) == 2.0
        assert cluster.speeds == [0.5, 1.0, 2.0]
        assert cluster.mean_speed == pytest.approx(3.5 / 3)
        assert cluster.machine(1).processing_time(10.0) == 10.0
        assert cluster.machine(2).processing_time(10.0) == 5.0

    def test_homogeneous_speed_fills_every_machine(self):
        cluster = ClusterState(3, machine_speed=2.0)
        assert cluster.speeds == [2.0, 2.0, 2.0]
        assert cluster.mean_speed == 2.0


class TestClusterFailureState:
    def test_mark_down_removes_from_free_pool(self):
        cluster = ClusterState(3)
        cluster.mark_down(1)
        assert cluster.num_down == 1
        assert cluster.num_free == 2
        assert cluster.num_busy == 0
        assert cluster.machine(1).is_down
        assert cluster.machine(1).failures == 1
        cluster.check_invariants()
        # Placements skip the down machine.
        assert cluster.peek_free_machine() != 1

    def test_mark_up_restores_machine(self):
        cluster = ClusterState(2)
        cluster.mark_down(0)
        cluster.mark_up(0)
        assert cluster.num_down == 0
        assert cluster.num_free == 2
        assert not cluster.machine(0).is_down
        cluster.check_invariants()

    def test_down_machine_rejects_assignment(self):
        cluster = ClusterState(1)
        cluster.mark_down(0)
        job = make_job()
        with pytest.raises(ValueError):
            cluster.machine(0).assign(make_copy(job.map_tasks[0], 0))
        with pytest.raises(ValueError):
            cluster.machine(0).processing_time(10.0)

    def test_mark_down_requires_idle_machine(self):
        cluster = ClusterState(1)
        job = make_job()
        copy = make_copy(job.map_tasks[0], cluster.peek_free_machine())
        cluster.place(copy)
        with pytest.raises(ValueError):
            cluster.mark_down(0)

    def test_double_transitions_rejected(self):
        cluster = ClusterState(1)
        cluster.mark_down(0)
        with pytest.raises(ValueError):
            cluster.mark_down(0)
        cluster.mark_up(0)
        with pytest.raises(ValueError):
            cluster.mark_up(0)

    def test_effective_speed_reflects_slowdown(self):
        machine = Machine(machine_id=0, speed=2.0)
        assert machine.effective_speed == 2.0
        machine.slowdown = 4.0
        assert machine.effective_speed == 0.5
        machine.is_down = True
        assert machine.effective_speed == 0.0


class TestStragglerModels:
    def test_no_stragglers_identity(self, rng):
        assert NoStragglers().inflate(10.0, 0, rng) == 10.0

    def test_probabilistic_slowdown_always(self, rng):
        model = ProbabilisticSlowdown(probability=1.0, factor=3.0)
        assert model.inflate(10.0, 0, rng) == 30.0

    def test_probabilistic_slowdown_never(self, rng):
        model = ProbabilisticSlowdown(probability=0.0, factor=3.0)
        assert model.inflate(10.0, 0, rng) == 10.0

    def test_probabilistic_slowdown_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticSlowdown(1.5, 2.0)
        with pytest.raises(ValueError):
            ProbabilisticSlowdown(0.5, 0.5)

    def test_slow_machines_requires_prepare(self, rng):
        model = SlowMachines(fraction=0.5, factor=2.0)
        with pytest.raises(RuntimeError):
            model.inflate(10.0, 0, rng)

    def test_slow_machines_inflates_only_selected(self, rng):
        model = SlowMachines(fraction=0.5, factor=2.0)
        model.prepare(num_machines=10, rng=rng)
        slow = model.slow_machines
        assert len(slow) == 5
        slow_id = next(iter(slow))
        fast_id = next(m for m in range(10) if m not in slow)
        assert model.inflate(10.0, slow_id, rng) == 20.0
        assert model.inflate(10.0, fast_id, rng) == 10.0

    def test_slow_machines_validation(self, rng):
        with pytest.raises(ValueError):
            SlowMachines(2.0, 2.0)
        with pytest.raises(ValueError):
            SlowMachines(0.5, 0.9)
        with pytest.raises(ValueError):
            SlowMachines(0.5, 2.0).prepare(0, rng)

    def test_pareto_tail_inflation_bounds(self, rng):
        model = ParetoTailInflation(alpha=1.1, cap=5.0)
        values = [model.inflate(10.0, 0, rng) for _ in range(500)]
        assert all(10.0 <= value <= 50.0 for value in values)
        assert max(values) > 10.0

    def test_pareto_tail_validation(self):
        with pytest.raises(ValueError):
            ParetoTailInflation(alpha=0.0)
        with pytest.raises(ValueError):
            ParetoTailInflation(alpha=1.0, cap=0.5)
