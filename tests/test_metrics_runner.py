"""Unit tests for metrics (SimulationResult / JobRecord) and the run helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.simulation.metrics import JobRecord, SimulationResult
from repro.simulation import run_replications, run_simulation
from repro.schedulers.fifo import FIFOScheduler


def record(job_id=0, arrival=0.0, completion=10.0, weight=1.0, maps=2, reduces=1,
           copies=3) -> JobRecord:
    return JobRecord(
        job_id=job_id,
        arrival_time=arrival,
        completion_time=completion,
        weight=weight,
        num_map_tasks=maps,
        num_reduce_tasks=reduces,
        copies_launched=copies,
        map_phase_completion_time=arrival + 5.0,
    )


class TestJobRecord:
    def test_derived_properties(self):
        rec = record(arrival=3.0, completion=13.0, weight=2.0)
        assert rec.flowtime == 10.0
        assert rec.weighted_flowtime == 20.0
        assert rec.num_tasks == 3
        assert rec.map_phase_duration == 5.0

    def test_map_phase_duration_none(self):
        rec = JobRecord(job_id=0, arrival_time=0.0, completion_time=5.0, weight=1.0,
                        num_map_tasks=0, num_reduce_tasks=1, copies_launched=1)
        assert rec.map_phase_duration is None


class TestSimulationResult:
    def make_result(self) -> SimulationResult:
        result = SimulationResult(scheduler_name="test", num_machines=10,
                                  total_tasks=9)
        result.add_record(record(job_id=0, completion=10.0, weight=1.0))
        result.add_record(record(job_id=1, completion=20.0, weight=3.0))
        result.add_record(record(job_id=2, completion=40.0, weight=1.0))
        result.total_copies = 12
        result.useful_work = 60.0
        result.wasted_work = 20.0
        result.makespan = 40.0
        return result

    def test_flowtime_aggregates(self):
        result = self.make_result()
        assert result.num_jobs == 3
        assert result.total_flowtime == pytest.approx(70.0)
        assert result.mean_flowtime == pytest.approx(70.0 / 3)
        assert result.total_weighted_flowtime == pytest.approx(10 + 60 + 40)
        assert result.weighted_mean_flowtime == pytest.approx(110.0 / 5.0)
        assert result.max_flowtime == 40.0
        assert result.median_flowtime == 20.0

    def test_percentiles(self):
        result = self.make_result()
        assert result.percentile_flowtime(0) == 10.0
        assert result.percentile_flowtime(100) == 40.0
        with pytest.raises(ValueError):
            result.percentile_flowtime(101)

    def test_cdf_helpers(self):
        result = self.make_result()
        assert result.fraction_completed_within(10.0) == pytest.approx(1 / 3)
        assert result.fraction_completed_within(100.0) == 1.0
        cdf = result.flowtime_cdf([5.0, 15.0, 25.0, 45.0])
        assert list(cdf) == pytest.approx([0.0, 1 / 3, 2 / 3, 1.0])
        in_range = result.records_in_flowtime_range(15.0, 45.0)
        assert [r.job_id for r in in_range] == [1, 2]

    def test_efficiency_metrics(self):
        result = self.make_result()
        assert result.cloning_ratio == pytest.approx(12 / 9)
        assert result.redundant_work_fraction == pytest.approx(20 / 80)
        assert result.average_utilization == pytest.approx(80 / (10 * 40))

    def test_empty_result_is_safe(self):
        empty = SimulationResult(scheduler_name="empty", num_machines=1)
        assert empty.mean_flowtime == 0.0
        assert empty.weighted_mean_flowtime == 0.0
        assert empty.fraction_completed_within(10.0) == 0.0
        assert empty.cloning_ratio == 0.0
        assert list(empty.flowtime_cdf([1.0])) == [0.0]

    def test_summary_and_compare(self):
        result = self.make_result()
        summary = result.summary()
        assert summary["scheduler"] == "test"
        assert summary["num_jobs"] == 3
        rows = SimulationResult.compare([result, result])
        assert len(rows) == 2


class TestRunner:
    def test_run_simulation_fills_runtime_and_seed(self, deterministic_online_trace):
        result = run_simulation(
            deterministic_online_trace, FIFOScheduler(), num_machines=6, seed=3
        )
        assert result.num_jobs == deterministic_online_trace.num_jobs
        assert result.runtime_seconds > 0
        assert result.seed == 3

    def test_run_replications_aggregates(self, small_online_trace):
        replicated = run_replications(
            small_online_trace,
            lambda: SRPTMSCScheduler(epsilon=0.6, r=1.0),
            num_machines=20,
            seeds=(0, 1, 2),
        )
        assert replicated.num_replications == 3
        per_run = [r.mean_flowtime for r in replicated.results]
        assert replicated.mean_flowtime == pytest.approx(np.mean(per_run))
        assert replicated.mean_flowtime_std == pytest.approx(np.std(per_run))
        assert replicated.scheduler_name == "SRPTMS+C"
        assert 0.0 <= replicated.fraction_completed_within(1e9) <= 1.0

    def test_replicated_cdf_averages_curves(self, small_online_trace):
        replicated = run_replications(
            small_online_trace,
            lambda: FIFOScheduler(),
            num_machines=20,
            seeds=(0, 1),
        )
        points = [10.0, 100.0, 1000.0]
        curve = replicated.flowtime_cdf(points)
        assert len(curve) == 3
        assert np.all(np.diff(curve) >= 0)

    def test_replications_require_seeds(self, small_online_trace):
        with pytest.raises(ValueError):
            run_replications(
                small_online_trace, lambda: FIFOScheduler(), 10, seeds=()
            )

    def test_summary_keys(self, small_online_trace):
        replicated = run_replications(
            small_online_trace, lambda: FIFOScheduler(), 20, seeds=(0,)
        )
        summary = replicated.summary()
        assert {"scheduler", "replications", "mean_flowtime",
                "weighted_mean_flowtime"} <= set(summary)


class TestRunnerShimRemoved:
    """The repro.simulation.runner deprecation shim (PR 4) is gone."""

    def test_shim_module_no_longer_importable(self):
        import importlib.util

        assert importlib.util.find_spec("repro.simulation.runner") is None
