"""Tests for the declarative study API (repro.study.core / resultset)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import UniformSpeeds, scenario_preset
from repro.simulation.experiment_runner import ExperimentRunner
from repro.study import ResultSet, ScenarioRef, SchedulerRef, Study, WorkloadRef

#: A tiny bulk-arrival workload: every run takes milliseconds.
BULK = {"kind": "bulk", "job_sizes": [2, 3, 4], "mean_duration": 5.0, "cv": 0.0}


def tiny_study(**overrides) -> Study:
    kwargs = dict(
        name="tiny",
        schedulers=("FIFO", "SCA"),
        workloads=(BULK,),
        seeds=(0, 1),
        machines=4,
    )
    kwargs.update(overrides)
    return Study(**kwargs)


class TestStudyConstruction:
    def test_refs_are_normalised(self):
        study = tiny_study()
        assert all(isinstance(ref, SchedulerRef) for ref in study.schedulers)
        assert all(isinstance(ref, ScenarioRef) for ref in study.scenarios)
        assert all(isinstance(ref, WorkloadRef) for ref in study.workloads)
        assert study.scenarios[0].label == "none"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            tiny_study(schedulers=("NotAPolicy",))

    def test_unknown_scalar_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scalar axis"):
            tiny_study(axes={"bogus": (1.0, 2.0)})

    def test_seeds_axis_redirected(self):
        with pytest.raises(ValueError, match="seeds="):
            tiny_study(axes={"seeds": (0, 1)})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            tiny_study(axes={"epsilon": (0.5, 0.5)})

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate scheduler labels"):
            tiny_study(schedulers=("FIFO", "FIFO"))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            tiny_study(seeds=())

    def test_empty_scheduler_axis_allowed(self):
        study = tiny_study(schedulers=())
        assert study.num_points() == 0
        assert study.compile() == []

    def test_scheduler_kwargs_and_labels(self):
        ref = SchedulerRef.coerce({"name": "SRPT", "r": 2.0})
        assert ref.kwargs == (("r", 2.0),)
        assert ref.label == "SRPT(r=2.0)"
        assert SchedulerRef.coerce("FIFO").label == "FIFO"

    def test_scenario_table_builds_spec(self):
        ref = ScenarioRef.coerce({"speed_spread": 0.5})
        assert ref.spec.speeds == UniformSpeeds(0.5, 1.5)
        assert ref.spec.normalize_mean_speed
        assert ScenarioRef.coerce("failures").spec == scenario_preset("failures")
        assert ScenarioRef.coerce(None).spec is None

    def test_scenario_table_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            ScenarioRef.coerce({"sped_spread": 0.5})

    def test_scenario_orphan_detail_rejected(self):
        with pytest.raises(ValueError, match="failure_rate"):
            ScenarioRef.coerce({"mean_repair": 10.0})


class TestCompile:
    def test_product_order_and_coords(self):
        study = tiny_study(axes={"epsilon": (0.2, 0.8)})
        specs = study.compile()
        assert len(specs) == study.num_points() == 2 * 2 * 2
        # Axis order: workload, scenario, scheduler, epsilon, seed (fastest).
        tags = [spec.tag for spec in specs]
        assert tags[0] == (
            ("workload", "bulk"),
            ("scenario", "none"),
            ("scheduler", "FIFO"),
            ("epsilon", 0.2),
            ("seed", 0),
        )
        assert tags[1][-1] == ("seed", 1)
        assert tags[2][-2] == ("epsilon", 0.8)
        assert [spec.seed for spec in specs[:2]] == [0, 1]

    def test_machines_derived_from_scale(self):
        study = tiny_study(machines=None, scale=0.01)
        assert {spec.num_machines for spec in study.compile()} == {120}

    def test_machine_fraction_axis(self):
        study = tiny_study(axes={"machine_fraction": (0.5, 1.0)})
        counts = sorted({spec.num_machines for spec in study.compile()})
        assert counts == [2, 4]

    def test_srptms_c_reads_point_epsilon_r(self):
        study = tiny_study(
            schedulers=("SRPTMS+C",), axes={"epsilon": (0.3, 0.9)}, r=5.0
        )
        kwargs = [dict(spec.scheduler.kwargs) for spec in study.compile()]
        assert {k["epsilon"] for k in kwargs} == {0.3, 0.9}
        assert {k["r"] for k in kwargs} == {5.0}

    def test_specs_are_cacheable(self):
        from repro.simulation.results_store import run_spec_fingerprint

        fingerprints = {run_spec_fingerprint(s) for s in tiny_study().compile()}
        assert len(fingerprints) == tiny_study().num_points()


class TestExecution:
    def test_serial_and_pooled_are_bit_identical(self):
        study = tiny_study()
        serial = study.run(workers=1)
        pooled = study.run(workers=2)
        assert serial.fingerprint() == pooled.fingerprint()
        assert len(serial) == study.num_points()

    def test_workers_zero_means_all_cpus(self):
        study = tiny_study(seeds=(0,))
        assert study.run(workers=0).fingerprint() == study.run(workers=1).fingerprint()

    def test_select_runs_only_chosen_points(self):
        study = tiny_study()
        subset = study.run(
            select=lambda point: dict(point.coords)["scheduler"] == "FIFO"
        )
        assert len(subset) == 2
        assert subset.coordinates("scheduler") == ["FIFO"]
        full = study.run()
        assert subset.fingerprint() == full.filter(scheduler="FIFO").fingerprint()

    def test_cache_serves_second_run(self, tmp_path):
        study = tiny_study()
        runner = ExperimentRunner(workers=1, cache_dir=str(tmp_path))
        cold = study.run(runner=runner)
        assert runner.last_run_stats["executed"] == study.num_points()
        warm = study.run(runner=runner)
        assert runner.last_run_stats["executed"] == 0
        assert runner.last_run_stats["cache_hits"] == study.num_points()
        assert cold.fingerprint() == warm.fingerprint()

    def test_run_incremental_streams_every_point(self, tmp_path):
        study = tiny_study()
        events = []
        streamed = study.run_incremental(
            lambda point, result, hit: events.append((point, result, hit)),
            cache_dir=str(tmp_path),
        )
        assert [p for p, _, _ in events] == study.points()
        assert [r for _, r, _ in events] == [run.result for run in streamed]
        assert all(hit is False for _, _, hit in events)
        assert streamed.fingerprint() == study.run().fingerprint()
        # A warm incremental run streams the same points as cache hits.
        hits = []
        study.run_incremental(
            lambda point, result, hit: hits.append(hit), cache_dir=str(tmp_path)
        )
        assert hits == [True] * study.num_points()

    def test_run_incremental_select_subsets_the_stream(self):
        study = tiny_study()
        events = []
        subset = study.run_incremental(
            lambda point, result, hit: events.append(point),
            select=lambda point: dict(point.coords)["scheduler"] == "FIFO",
        )
        assert len(events) == len(subset) == 2
        assert all(dict(p.coords)["scheduler"] == "FIFO" for p in events)
        assert subset.fingerprint() == study.run().filter(
            scheduler="FIFO"
        ).fingerprint()


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self) -> ResultSet:
        return tiny_study().run()

    def test_coords_attached(self, results):
        assert results.axis_names == ("workload", "scenario", "scheduler", "seed")
        assert results.coordinates("scheduler") == ["FIFO", "SCA"]
        assert results.coordinates("seed") == [0, 1]

    def test_filter(self, results):
        fifo = results.filter(scheduler="FIFO")
        assert len(fifo) == 2
        assert all(run.coords["scheduler"] == "FIFO" for run in fifo)
        assert len(results.filter(scheduler=("FIFO", "SCA"))) == 4
        assert len(results.filter(lambda run: run.coords["seed"] == 0)) == 2

    def test_filter_unknown_axis_raises(self, results):
        with pytest.raises(KeyError, match="unknown axes"):
            results.filter(flavour="spicy")

    def test_group_by(self, results):
        groups = results.group_by("scheduler")
        assert list(groups) == [("FIFO",), ("SCA",)]
        assert all(len(group) == 2 for group in groups.values())

    def test_aggregate_matches_numpy(self, results):
        rows = results.aggregate(
            ("mean_flowtime",), stats=("mean", "std", "count")
        )
        assert len(rows) == 2  # one per scheduler
        fifo = rows[0]
        values = np.array(results.filter(scheduler="FIFO").values("mean_flowtime"))
        assert fifo["scheduler"] == "FIFO"
        assert fifo["mean_flowtime_mean"] == float(values.mean())
        assert fifo["mean_flowtime_std"] == float(values.std(ddof=0))
        assert fifo["mean_flowtime_count"] == 2.0

    def test_aggregate_bare_mean_column(self, results):
        rows = results.aggregate(("mean_flowtime",), stats=("mean",))
        assert "mean_flowtime" in rows[0]
        assert "mean_flowtime_mean" not in rows[0]

    def test_to_records_csv_json(self, results, tmp_path):
        records = results.to_records()
        assert len(records) == 4
        assert records[0]["scheduler"] == "FIFO"
        assert "mean_flowtime" in records[0]

        csv_path = tmp_path / "out.csv"
        text = results.to_csv(str(csv_path))
        assert csv_path.read_text() == text
        header = text.splitlines()[0]
        assert header.startswith("workload,scenario,scheduler,seed,")

        json_path = tmp_path / "out.json"
        json_text = results.to_json(str(json_path))
        assert json_path.read_text() == json_text
        import json as json_module

        assert len(json_module.loads(json_text)) == 4

    def test_fingerprint_is_stable_and_discriminating(self, results):
        again = tiny_study().run()
        assert results.fingerprint() == again.fingerprint()
        other = tiny_study(seeds=(0,)).run()
        assert results.fingerprint() != other.fingerprint()


class TestRenderResultset:
    def test_generic_renderer_shape(self):
        from repro.experiments.report import render_resultset

        results = tiny_study().run()
        text = render_resultset(results, title="tiny report")
        lines = text.splitlines()
        assert lines[0] == "tiny report"
        assert lines[1].startswith("workload")
        assert "mean_flowtime" in lines[1]
        # One row per (workload, scenario, scheduler) cell: seeds collapsed.
        assert len(lines) == 2 + 2

    def test_empty_resultset(self):
        from repro.experiments.report import render_resultset

        assert "empty" in render_resultset(ResultSet([]))
