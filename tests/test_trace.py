"""Unit tests for the Trace container, its statistics and the workload generators."""

from __future__ import annotations

import pytest

from repro.workload.distributions import Deterministic
from repro.workload.generators import (
    bimodal_trace,
    bulk_arrival_trace,
    poisson_trace,
    uniform_trace,
)
from repro.workload.job import JobSpec
from repro.workload.trace import Trace


def make_spec(job_id: int, arrival: float, tasks: int = 2) -> JobSpec:
    return JobSpec(
        job_id=job_id,
        arrival_time=arrival,
        weight=1.0,
        num_map_tasks=tasks,
        num_reduce_tasks=1,
        map_duration=Deterministic(10.0),
        reduce_duration=Deterministic(5.0),
    )


class TestTrace:
    def test_jobs_sorted_by_arrival(self):
        trace = Trace([make_spec(0, 20.0), make_spec(1, 5.0), make_spec(2, 10.0)])
        arrivals = [spec.arrival_time for spec in trace]
        assert arrivals == sorted(arrivals)

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ValueError):
            Trace([make_spec(0, 0.0), make_spec(0, 1.0)])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace([])

    def test_container_protocol(self):
        trace = Trace([make_spec(0, 0.0), make_spec(1, 1.0)])
        assert len(trace) == 2
        assert trace[0].job_id == 0
        assert [spec.job_id for spec in trace] == [0, 1]

    def test_derived_quantities(self):
        trace = Trace([make_spec(0, 0.0, tasks=2), make_spec(1, 30.0, tasks=4)])
        assert trace.num_jobs == 2
        assert trace.total_tasks == (2 + 1) + (4 + 1)
        assert trace.first_arrival == 0.0
        assert trace.last_arrival == 30.0
        assert trace.duration == 30.0
        assert trace.total_expected_work == pytest.approx(
            (2 * 10 + 5) + (4 * 10 + 5)
        )

    def test_expected_load(self):
        trace = Trace([make_spec(0, 0.0), make_spec(1, 100.0)])
        load = trace.expected_load(num_machines=10)
        assert load == pytest.approx(trace.total_expected_work / (10 * 100.0))
        with pytest.raises(ValueError):
            trace.expected_load(0)

    def test_filter_and_head(self):
        trace = Trace([make_spec(i, float(i)) for i in range(5)])
        small = trace.filter(lambda spec: spec.job_id < 2)
        assert small.num_jobs == 2
        assert trace.head(3).num_jobs == 3
        with pytest.raises(ValueError):
            trace.filter(lambda spec: False)
        with pytest.raises(ValueError):
            trace.head(0)

    def test_shifted_and_bulk(self):
        trace = Trace([make_spec(0, 10.0), make_spec(1, 20.0)])
        shifted = trace.shifted(5.0)
        assert shifted.first_arrival == 15.0
        bulk = trace.as_bulk_arrival()
        assert all(spec.arrival_time == 0.0 for spec in bulk)

    def test_statistics_deterministic(self):
        trace = Trace([make_spec(0, 0.0, tasks=2), make_spec(1, 50.0, tasks=2)])
        stats = trace.statistics()
        assert stats.total_jobs == 2
        assert stats.average_tasks_per_job == pytest.approx(3.0)
        assert stats.min_task_duration == 5.0
        assert stats.max_task_duration == 10.0
        assert stats.trace_duration == 50.0

    def test_statistics_sampled(self, rng):
        trace = Trace([make_spec(0, 0.0), make_spec(1, 10.0)])
        stats = trace.statistics(rng=rng)
        assert stats.total_tasks == trace.total_tasks
        assert stats.average_task_duration > 0

    def test_statistics_render_contains_rows(self):
        trace = Trace([make_spec(0, 0.0)])
        text = trace.statistics().render()
        assert "Total number of Jobs" in text
        assert "Average task duration" in text


class TestGenerators:
    def test_uniform_trace_shape(self):
        trace = uniform_trace(5, tasks_per_job=3, reduce_tasks_per_job=1,
                              mean_duration=7.0, inter_arrival=2.0)
        assert trace.num_jobs == 5
        assert all(spec.num_map_tasks == 3 for spec in trace)
        assert all(spec.num_reduce_tasks == 1 for spec in trace)
        assert trace[1].arrival_time == pytest.approx(2.0)

    def test_uniform_trace_validation(self):
        with pytest.raises(ValueError):
            uniform_trace(0)
        with pytest.raises(ValueError):
            uniform_trace(1, tasks_per_job=0)
        with pytest.raises(ValueError):
            uniform_trace(1, cv=-0.1)

    def test_bulk_arrival_trace(self):
        trace = bulk_arrival_trace([2, 10], weights=[1.0, 3.0], reduce_fraction=0.5)
        assert all(spec.arrival_time == 0.0 for spec in trace)
        assert trace[0].total_tasks == 2
        assert trace[1].total_tasks == 10
        assert trace[1].weight == 3.0
        # reduce_fraction=0.5 of 10 tasks -> 5 reduce tasks.
        assert trace[1].num_reduce_tasks == 5

    def test_bulk_arrival_single_task_job_has_no_reduce(self):
        trace = bulk_arrival_trace([1])
        assert trace[0].num_map_tasks == 1
        assert trace[0].num_reduce_tasks == 0

    def test_bulk_arrival_validation(self):
        with pytest.raises(ValueError):
            bulk_arrival_trace([])
        with pytest.raises(ValueError):
            bulk_arrival_trace([2], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            bulk_arrival_trace([0])

    def test_poisson_trace_reproducible(self):
        a = poisson_trace(20, arrival_rate=1.0, seed=3)
        b = poisson_trace(20, arrival_rate=1.0, seed=3)
        assert [s.arrival_time for s in a] == [s.arrival_time for s in b]
        assert [s.total_tasks for s in a] == [s.total_tasks for s in b]

    def test_poisson_trace_weights_in_range(self):
        trace = poisson_trace(30, arrival_rate=1.0, max_weight=4, seed=1)
        assert all(1.0 <= spec.weight <= 4.0 for spec in trace)

    def test_poisson_trace_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(0, 1.0)
        with pytest.raises(ValueError):
            poisson_trace(1, 0.0)
        with pytest.raises(ValueError):
            poisson_trace(1, 1.0, mean_tasks_per_job=0.5)

    def test_bimodal_trace_mixes_sizes(self):
        trace = bimodal_trace(3, 2, small_tasks=4, large_tasks=50, seed=0)
        sizes = sorted(spec.total_tasks for spec in trace)
        assert sizes[:3] == [4, 4, 4]
        assert sizes[-1] == 50

    def test_bimodal_trace_validation(self):
        with pytest.raises(ValueError):
            bimodal_trace(0, 0)
        with pytest.raises(ValueError):
            bimodal_trace(-1, 2)
