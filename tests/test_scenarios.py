"""Tests for the scenario subsystem: specs, engine semantics, determinism.

The load-bearing guarantees:

* every scenario run is a pure function of its ``RunSpec`` -- pooled
  execution (``workers=4``) is bit-identical to serial execution for
  heterogeneous, dynamic-straggler and failure scenarios alike;
* scenario randomness lives on dedicated seed streams, so enabling a
  scenario never perturbs workload sampling;
* a machine failure kills the resident copy and the scheduler re-dispatches
  it exactly once through the normal launch path;
* a dynamic slowdown re-estimates the running copy's finish time exactly.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.cluster.stragglers import DynamicStragglers
from repro.scenarios import (
    SCENARIO_PRESETS,
    BimodalSpeeds,
    MachineFailures,
    ScenarioSpec,
    UniformSpeeds,
    ZipfSpeeds,
    scenario_preset,
    speed_rng,
)
from repro.schedulers import LATEScheduler, MantriScheduler, SCAScheduler
from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.events import Event
from repro.simulation.experiment_runner import ExperimentRunner, RunSpec, SchedulerSpec
from repro.simulation import run_simulation

from test_engine import GreedyScheduler, single_job_trace

#: A scenario per axis the subsystem opens: static heterogeneity, dynamic
#: stragglers, machine failures (rates high enough to actually fire at the
#: small test scale).
DETERMINISM_SCENARIOS = {
    "heterogeneous": ScenarioSpec(
        speeds=UniformSpeeds(0.5, 1.5), normalize_mean_speed=True
    ),
    "dynamic-stragglers": ScenarioSpec(
        stragglers=DynamicStragglers(onset_rate=1 / 50.0, mean_duration=20.0, factor=3.0)
    ),
    "failures": ScenarioSpec(
        failures=MachineFailures(rate=1 / 150.0, mean_repair=15.0)
    ),
}

#: A quiet dynamic scenario used to enable dynamic bookkeeping in tests that
#: inject machine events by hand (no natural event fires before t=1e9).
_QUIET_DYNAMIC = ScenarioSpec(
    stragglers=DynamicStragglers(onset_rate=1e-12, mean_duration=1e12, factor=2.0)
)


class TestSpeedDistributions:
    def test_uniform_bounds_and_determinism(self):
        dist = UniformSpeeds(0.5, 1.5)
        a = dist.sample(256, speed_rng(3))
        b = dist.sample(256, speed_rng(3))
        assert np.array_equal(a, b)
        assert a.min() >= 0.5 and a.max() <= 1.5
        assert not np.array_equal(a, dist.sample(256, speed_rng(4)))

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformSpeeds(0.0, 1.0)
        with pytest.raises(ValueError):
            UniformSpeeds(1.0, 0.5)

    def test_bimodal_two_classes(self):
        dist = BimodalSpeeds(slow_fraction=0.5, slow_speed=0.5, fast_speed=2.0)
        speeds = dist.sample(512, speed_rng(0))
        assert set(np.unique(speeds)) == {0.5, 2.0}
        slow_share = float(np.mean(speeds == 0.5))
        assert 0.4 < slow_share < 0.6

    def test_bimodal_validation(self):
        with pytest.raises(ValueError):
            BimodalSpeeds(slow_fraction=1.5)
        with pytest.raises(ValueError):
            BimodalSpeeds(slow_speed=2.0, fast_speed=1.0)

    def test_zipf_tier_speeds(self):
        dist = ZipfSpeeds(alpha=1.5, num_tiers=4)
        speeds = dist.sample(2048, speed_rng(1))
        tiers = {1.0, 1 / 2, 1 / 3, 1 / 4}
        assert set(np.unique(speeds)) <= tiers
        # Zipf weighting: the fast tier must dominate.
        assert float(np.mean(speeds == 1.0)) > 0.4

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            ZipfSpeeds(alpha=0.0)
        with pytest.raises(ValueError):
            ZipfSpeeds(num_tiers=0)


class TestScenarioSpec:
    def test_default_is_static_homogeneous(self):
        spec = ScenarioSpec()
        assert spec.is_default
        assert not spec.is_dynamic
        assert spec.machine_speeds(8, seed=0) is None

    def test_type_validation(self):
        with pytest.raises(TypeError):
            ScenarioSpec(speeds="fast")
        with pytest.raises(TypeError):
            ScenarioSpec(stragglers="sometimes")
        with pytest.raises(TypeError):
            ScenarioSpec(failures=0.5)

    def test_machine_speeds_normalization(self):
        spec = ScenarioSpec(speeds=UniformSpeeds(0.5, 1.5), normalize_mean_speed=True)
        speeds = spec.machine_speeds(64, seed=5)
        assert speeds.shape == (64,)
        assert speeds.mean() == pytest.approx(1.0)

    def test_machine_speeds_independent_of_workload_stream(self):
        """Speed sampling must not consume the engine's workload RNG."""
        spec = ScenarioSpec(speeds=UniformSpeeds(0.99, 1.01))
        trace = single_job_trace()
        plain = SimulationEngine(trace, GreedyScheduler(), num_machines=4, seed=7)
        scen = SimulationEngine(
            trace, GreedyScheduler(), num_machines=4, seed=7, scenario=spec
        )
        # Both engines must draw identical workload streams.
        assert plain.rng.random() == scen.rng.random()

    def test_process_spec_validation(self):
        with pytest.raises(ValueError):
            MachineFailures(rate=0.0, mean_repair=10.0)
        with pytest.raises(ValueError):
            MachineFailures(rate=0.1, mean_repair=0.0)
        with pytest.raises(ValueError):
            DynamicStragglers(onset_rate=0.0, mean_duration=1.0, factor=2.0)
        with pytest.raises(ValueError):
            DynamicStragglers(onset_rate=1.0, mean_duration=0.0, factor=2.0)
        with pytest.raises(ValueError):
            DynamicStragglers(onset_rate=1.0, mean_duration=1.0, factor=1.0)

    def test_presets_wellformed_and_picklable(self):
        for name, preset in SCENARIO_PRESETS.items():
            clone = pickle.loads(pickle.dumps(preset))
            assert clone == preset, name
        assert scenario_preset("homogeneous").is_default
        with pytest.raises(KeyError):
            scenario_preset("nope")


class TestHeterogeneousEngine:
    def test_per_machine_speeds_scale_durations(self):
        """A cluster of half-speed machines doubles every deterministic task."""
        spec = ScenarioSpec(
            speeds=BimodalSpeeds(slow_fraction=1.0, slow_speed=0.5, fast_speed=1.0)
        )
        trace = single_job_trace()  # 2 maps (10 s) then 1 reduce (5 s)
        result = run_simulation(
            trace, GreedyScheduler(), 4, seed=0, scenario=spec
        )
        assert result.records[0].flowtime == pytest.approx(30.0)

    def test_heterogeneity_changes_flowtime(self):
        spec = ScenarioSpec(speeds=UniformSpeeds(0.5, 1.5))
        trace = single_job_trace()
        plain = run_simulation(trace, GreedyScheduler(), 4, seed=0)
        hetero = run_simulation(trace, GreedyScheduler(), 4, seed=0, scenario=spec)
        assert hetero.records[0].flowtime != plain.records[0].flowtime


class TestDynamicSlowdown:
    def test_injected_slowdown_reestimates_finish(self):
        """10 s of work, slowdown x2 at t=2: 2 + 8 * 2 = 18 s."""
        trace = single_job_trace(maps=1, reduces=0, map_d=10.0)
        engine = SimulationEngine(
            trace, GreedyScheduler(), num_machines=1, scenario=_QUIET_DYNAMIC
        )
        engine._push(Event.slowdown_start(2.0, next(engine._sequence), 0))
        result = engine.run()
        assert result.records[0].flowtime == pytest.approx(18.0)
        assert result.straggler_onsets == 1

    def test_injected_recovery_restores_rate(self):
        """Slow from t=2 to t=6 (rate 1/2): 10 = 2 + 4/2 + 6 -> finish at 12."""
        trace = single_job_trace(maps=1, reduces=0, map_d=10.0)
        engine = SimulationEngine(
            trace, GreedyScheduler(), num_machines=1, scenario=_QUIET_DYNAMIC
        )
        engine._push(Event.slowdown_start(2.0, next(engine._sequence), 0))
        engine._push(Event.slowdown_end(6.0, next(engine._sequence), 0))
        result = engine.run()
        assert result.records[0].flowtime == pytest.approx(12.0)

    def test_slowdown_on_idle_machine_is_harmless(self):
        trace = single_job_trace(maps=1, reduces=0, map_d=10.0)
        engine = SimulationEngine(
            trace, GreedyScheduler(), num_machines=2, scenario=_QUIET_DYNAMIC
        )
        engine._push(Event.slowdown_start(2.0, next(engine._sequence), 1))
        result = engine.run()
        # The copy runs on machine 0; machine 1's slowdown changes nothing.
        assert result.records[0].flowtime == pytest.approx(10.0)


class TestMachineFailures:
    def test_killed_copy_redispatched_exactly_once(self):
        """The engine invariant: one replacement copy per failure kill."""
        trace = single_job_trace(maps=1, reduces=0, map_d=10.0)
        engine = SimulationEngine(
            trace, GreedyScheduler(), num_machines=2, scenario=_QUIET_DYNAMIC
        )
        # No failure process is configured, so the injected failure is a
        # one-shot: machine 0 (hosting the copy) dies at t=5 and stays down.
        engine._push(Event.machine_failure(5.0, next(engine._sequence), 0))
        result = engine.run()
        task = engine._jobs[0].map_tasks[0]
        assert result.machine_failures == 1
        assert result.copies_killed_by_failure == 1
        # Exactly one replacement: 2 copies total, the killed one plus the
        # re-dispatched one, which starts on machine 1 at the kill instant.
        assert len(task.copies) == 2
        killed, relaunched = task.copies
        assert killed.is_killed and killed.machine_id == 0
        assert relaunched.is_finished and relaunched.machine_id == 1
        assert relaunched.launch_time == pytest.approx(5.0)
        assert result.records[0].flowtime == pytest.approx(15.0)
        assert result.wasted_work == pytest.approx(5.0)

    def test_single_copy_scheduler_copy_accounting(self):
        """total copies == tasks + failure kills for a non-cloning policy."""
        scenario = ScenarioSpec(
            failures=MachineFailures(rate=1 / 100.0, mean_repair=10.0)
        )
        from repro.workload.generators import poisson_trace

        trace = poisson_trace(
            num_jobs=20,
            arrival_rate=0.5,
            mean_tasks_per_job=5,
            mean_duration=8.0,
            cv=0.5,
            seed=11,
        )
        result = run_simulation(
            trace, GreedyScheduler(), 8, seed=2, scenario=scenario
        )
        assert result.copies_killed_by_failure > 0
        assert result.total_copies == result.total_tasks + result.copies_killed_by_failure

    def test_failed_machine_rejoins_after_repair(self):
        """With every machine failing at t=5 for exactly 2 s, work resumes."""
        scenario = ScenarioSpec(
            failures=MachineFailures(rate=1e-9, mean_repair=2.0, fixed_repair=True)
        )
        trace = single_job_trace(maps=1, reduces=0, map_d=10.0)
        engine = SimulationEngine(
            trace, GreedyScheduler(), num_machines=1, scenario=scenario
        )
        engine._push(Event.machine_failure(5.0, next(engine._sequence), 0))
        result = engine.run()
        # 5 s of work lost; machine back at t=7; full 10 s rerun -> 17 s.
        assert result.records[0].flowtime == pytest.approx(17.0)
        assert result.machine_failures == 1

    def test_stuck_scheduler_still_detected_under_dynamic_scenario(self):
        """Perpetual machine events must not mask a scheduler that never
        launches: the static path raises SimulationError, and so must the
        dynamic path (instead of spinning on failure/repair events forever)."""
        from test_engine import LazyScheduler

        scenario = ScenarioSpec(
            failures=MachineFailures(rate=1 / 100.0, mean_repair=10.0)
        )
        trace = single_job_trace()
        engine = SimulationEngine(
            trace, LazyScheduler(), num_machines=2, scenario=scenario
        )
        with pytest.raises(SimulationError):
            engine.run()

    def test_parked_copy_deadlock_detected_under_dynamic_scenario(self):
        """A scheduler that fills every machine with blocked reduce copies
        while map tasks stay unscheduled deadlocks the cluster; the dynamic
        path must raise like the static path does, not spin on machine
        events forever."""
        from repro.simulation.scheduler_api import LaunchRequest, Scheduler
        from repro.workload.job import Phase

        class ReduceFirstScheduler(Scheduler):
            name = "reduce-first-test"

            def schedule(self, view):
                requests = []
                free = view.num_free_machines
                for job in view.alive_jobs:
                    for task in job.unscheduled_tasks(Phase.REDUCE):
                        if free <= 0:
                            return requests
                        requests.append(LaunchRequest(task=task, num_copies=1))
                        free -= 1
                return requests

        trace = single_job_trace(maps=1, reduces=2)
        engine = SimulationEngine(
            trace, ReduceFirstScheduler(), num_machines=2, scenario=_QUIET_DYNAMIC
        )
        with pytest.raises(SimulationError):
            engine.run()

    def test_invariants_hold_under_failures(self):
        scenario = ScenarioSpec(
            failures=MachineFailures(rate=1 / 60.0, mean_repair=10.0),
            stragglers=DynamicStragglers(
                onset_rate=1 / 40.0, mean_duration=15.0, factor=3.0
            ),
        )
        from repro.workload.generators import poisson_trace

        trace = poisson_trace(
            num_jobs=15,
            arrival_rate=0.5,
            mean_tasks_per_job=4,
            mean_duration=6.0,
            cv=0.5,
            seed=3,
        )
        result = run_simulation(
            trace,
            SCAScheduler(),
            6,
            seed=4,
            scenario=scenario,
            check_invariants=True,
        )
        assert result.num_jobs == 15


class TestScenarioDeterminism:
    """Pooled (workers=4) vs serial bit-identity for every scenario axis."""

    @pytest.mark.parametrize("scenario_name", sorted(DETERMINISM_SCENARIOS))
    @pytest.mark.parametrize(
        "scheduler_spec",
        [
            SchedulerSpec(SCAScheduler),
            SchedulerSpec(LATEScheduler),
            SchedulerSpec(MantriScheduler),
        ],
        ids=lambda s: s.scheduler_cls.__name__,
    )
    def test_pooled_matches_serial(
        self, scenario_name, scheduler_spec, small_online_trace
    ):
        scenario = DETERMINISM_SCENARIOS[scenario_name]
        base = RunSpec(
            trace=small_online_trace,
            scheduler=scheduler_spec,
            num_machines=8,
            scenario=scenario,
        )
        specs = [base.with_seed(seed) for seed in (0, 1, 2, 3)]
        serial = ExperimentRunner(workers=1).run(specs)
        pooled = ExperimentRunner(workers=4).run(specs)
        assert [r.canonical_dict() for r in serial] == [
            r.canonical_dict() for r in pooled
        ]
        assert [r.fingerprint() for r in serial] == [r.fingerprint() for r in pooled]

    def test_scenario_run_spec_pickles(self, small_online_trace):
        spec = RunSpec(
            trace=small_online_trace,
            scheduler=SchedulerSpec(SCAScheduler),
            num_machines=8,
            seed=1,
            scenario=DETERMINISM_SCENARIOS["failures"],
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.execute().fingerprint() == spec.execute().fingerprint()

    def test_run_spec_rejects_non_scenario(self, small_online_trace):
        with pytest.raises(TypeError):
            RunSpec(
                trace=small_online_trace,
                scheduler=SchedulerSpec(SCAScheduler),
                num_machines=4,
                scenario="hostile",
            )
