"""Property-style invariant tests for the simulation engine.

Seeded random traces are replayed under several policies with an
instrumented wrapper scheduler that validates the paper's Section III
semantics at every decision point, plus post-mortem checks over the full
copy history:

* at most one copy occupies any machine at any decision point;
* reduce copies make no progress before their job's map phase completes;
* a task's completion time equals that of its earliest-finishing copy;
* killed clones release their machines (the cluster drains to fully free).
"""

from __future__ import annotations

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.schedulers import FIFOScheduler, MantriScheduler, SCAScheduler
from repro.simulation.engine import SimulationEngine
from repro.simulation.scheduler_api import Scheduler
from repro.workload.generators import poisson_trace
from repro.workload.job import Phase

NUM_MACHINES = 6


class InvariantCheckingScheduler(Scheduler):
    """Delegates to a real policy, validating engine state at every decision."""

    def __init__(self, base: Scheduler) -> None:
        self._base = base
        self.name = f"checked-{base.name}"
        self.tick_interval = base.tick_interval
        self.decision_points = 0

    def bind(self, view) -> None:
        super().bind(view)
        self._base.bind(view)

    def on_job_arrival(self, job, time) -> None:
        self._base.on_job_arrival(job, time)

    def on_task_completion(self, task, time) -> None:
        self._base.on_task_completion(task, time)

    def on_job_completion(self, job, time) -> None:
        self._base.on_job_completion(job, time)

    def schedule(self, view):
        self.decision_points += 1
        occupied = list(view.running_copies())

        # At most one active copy per machine, and occupancy must agree
        # with the free-machine count.
        machine_ids = [copy.machine_id for copy in occupied]
        assert len(machine_ids) == len(set(machine_ids)), (
            f"two active copies share a machine at t={view.time}"
        )
        assert len(machine_ids) == view.num_machines - view.num_free_machines

        for copy in occupied:
            # Blocked copies are exactly the reduce copies whose map phase
            # is unfinished, and blocked copies have made zero progress.
            job = copy.task.job
            if copy.task.phase is Phase.REDUCE and not job.map_phase_complete:
                assert copy.is_blocked
                assert view.copy_progress(copy) == 0.0
            else:
                assert not copy.is_blocked

        return self._base.schedule(view)


def _policies():
    return [
        pytest.param(lambda: SRPTMSCScheduler(epsilon=0.6, r=3.0), id="srptms_c"),
        pytest.param(lambda: SCAScheduler(), id="sca"),
        pytest.param(lambda: MantriScheduler(), id="mantri"),
        pytest.param(lambda: FIFOScheduler(), id="fifo"),
    ]


@pytest.mark.parametrize("make_scheduler", _policies())
@pytest.mark.parametrize("trace_seed", [11, 23, 47])
def test_engine_invariants_on_random_traces(make_scheduler, trace_seed):
    trace = poisson_trace(
        num_jobs=15,
        arrival_rate=0.4,
        mean_tasks_per_job=5,
        mean_duration=8.0,
        cv=0.8,
        seed=trace_seed,
    )
    scheduler = InvariantCheckingScheduler(make_scheduler())
    engine = SimulationEngine(
        trace,
        scheduler,
        NUM_MACHINES,
        seed=trace_seed,
        check_invariants=True,
    )
    result = engine.run()
    assert scheduler.decision_points > 0
    assert result.num_jobs == trace.num_jobs

    # Killed clones freed their machines: the cluster fully drains.
    assert engine.cluster.num_free == NUM_MACHINES
    assert engine.cluster.num_busy == 0
    engine.cluster.check_invariants()

    total_copies = 0
    useful = 0.0
    wasted = 0.0
    for job in engine._jobs:
        assert job.is_complete
        for task in job.all_tasks():
            assert task.is_completed
            total_copies += len(task.copies)

            finished = [copy for copy in task.copies if copy.is_finished]
            killed = [copy for copy in task.copies if copy.is_killed]
            # Exactly one copy wins; every other copy was killed.
            assert len(finished) == 1
            assert len(finished) + len(killed) == len(task.copies)

            # Task completion time is the earliest-finishing copy's finish
            # time: the winner finished then, and no killed copy could have
            # finished earlier.
            winner = finished[0]
            assert task.completion_time == winner.finish_time
            for clone in killed:
                assert clone.killed_at <= task.completion_time
                if clone.start_time is not None:
                    assert (
                        clone.start_time + clone.workload
                        >= task.completion_time - 1e-9
                    )

            if task.phase is Phase.REDUCE:
                # No reduce copy starts processing before the map phase is done.
                assert job.map_phase_completion_time is not None
                for copy in task.copies:
                    if copy.start_time is not None:
                        assert (
                            copy.start_time
                            >= job.map_phase_completion_time - 1e-9
                        )

            useful += sum(copy.elapsed(result.makespan) for copy in finished)
            wasted += sum(copy.elapsed(result.makespan) for copy in killed)

    # The engine's work accounting matches the copy history.
    assert total_copies == result.total_copies
    assert useful == pytest.approx(result.useful_work)
    assert wasted == pytest.approx(result.wasted_work)


@pytest.mark.parametrize("trace_seed", [3, 9])
def test_invariants_hold_under_heavy_cloning(trace_seed):
    """An over-provisioned cluster forces aggressive cloning; the
    one-copy-per-machine and kill-frees-machine invariants must survive it."""
    trace = poisson_trace(
        num_jobs=8,
        arrival_rate=0.2,
        mean_tasks_per_job=3,
        mean_duration=10.0,
        cv=1.0,
        seed=trace_seed,
    )
    machines = 24  # far more machines than work
    scheduler = InvariantCheckingScheduler(SRPTMSCScheduler(epsilon=1.0, r=3.0))
    engine = SimulationEngine(
        trace, scheduler, machines, seed=trace_seed, check_invariants=True
    )
    result = engine.run()
    assert result.total_copies > result.total_tasks, "expected cloning to happen"
    assert result.wasted_work > 0.0
    assert engine.cluster.num_free == machines
