"""Property-style invariant tests for the simulation engine.

Seeded random traces are replayed under several policies with an
instrumented wrapper scheduler that validates the paper's Section III
semantics at every decision point, plus post-mortem checks over the full
copy history:

* at most one copy occupies any machine at any decision point;
* reduce copies make no progress before their job's map phase completes;
* a task's completion time equals that of its earliest-finishing copy;
* killed clones release their machines (the cluster drains to fully free).

The stage-DAG extension (PR 6) adds two more layers on multi-round jobs:
the incremental per-job counters must match a full ``_recount`` rescan at
every decision point, and a mid-DAG failure kill must be re-dispatched
exactly once under single-copy redundancy policies.

The rack topology (PR 8) adds one more: under an active topology the
per-rack occupancy counters must match a from-scratch recount of the
running copies at every decision point, and every launched copy must be
priced exactly once (``local_launches + remote_launches`` equals the
total copy count).
"""

from __future__ import annotations

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.scenarios import MachineFailures, ScenarioSpec, TopologySpec
from repro.schedulers import FIFOScheduler, MantriScheduler, SCAScheduler
from repro.simulation.engine import SimulationEngine
from repro.simulation.scheduler_api import ComposedScheduler, Scheduler
from repro.workload.generators import poisson_trace
from repro.workload.job import Phase
from repro.workload.stream import stream_dag_chain_jobs, stream_dag_diamond_jobs
from repro.workload.trace import Trace

NUM_MACHINES = 6


class InvariantCheckingScheduler(Scheduler):
    """Delegates to a real policy, validating engine state at every decision."""

    def __init__(self, base: Scheduler) -> None:
        self._base = base
        self.name = f"checked-{base.name}"
        self.tick_interval = base.tick_interval
        self.decision_points = 0

    def bind(self, view) -> None:
        super().bind(view)
        self._base.bind(view)

    def on_job_arrival(self, job, time) -> None:
        self._base.on_job_arrival(job, time)

    def on_task_completion(self, task, time) -> None:
        self._base.on_task_completion(task, time)

    def on_job_completion(self, job, time) -> None:
        self._base.on_job_completion(job, time)

    def schedule(self, view):
        self.decision_points += 1
        occupied = list(view.running_copies())

        # At most one active copy per machine, and occupancy must agree
        # with the free-machine count (down machines are neither free nor
        # occupied).
        machine_ids = [copy.machine_id for copy in occupied]
        assert len(machine_ids) == len(set(machine_ids)), (
            f"two active copies share a machine at t={view.time}"
        )
        assert len(machine_ids) == (
            view.num_machines - view.num_free_machines - view.num_down_machines
        )

        for copy in occupied:
            # Blocked copies are exactly the reduce copies whose map phase
            # is unfinished, and blocked copies have made zero progress.
            job = copy.task.job
            if copy.task.phase is Phase.REDUCE and not job.map_phase_complete:
                assert copy.is_blocked
                assert view.copy_progress(copy) == 0.0
            else:
                assert not copy.is_blocked

        requests = self._base.schedule(view)
        # Keep dynamic tick hints (e.g. delay-scheduling deadlines) visible
        # through the wrapper: the engine reads the outermost scheduler.
        self.tick_interval = self._base.tick_interval
        return requests


def _policies():
    return [
        pytest.param(lambda: SRPTMSCScheduler(epsilon=0.6, r=3.0), id="srptms_c"),
        pytest.param(lambda: SCAScheduler(), id="sca"),
        pytest.param(lambda: MantriScheduler(), id="mantri"),
        pytest.param(lambda: FIFOScheduler(), id="fifo"),
    ]


@pytest.mark.parametrize("make_scheduler", _policies())
@pytest.mark.parametrize("trace_seed", [11, 23, 47])
def test_engine_invariants_on_random_traces(make_scheduler, trace_seed):
    trace = poisson_trace(
        num_jobs=15,
        arrival_rate=0.4,
        mean_tasks_per_job=5,
        mean_duration=8.0,
        cv=0.8,
        seed=trace_seed,
    )
    scheduler = InvariantCheckingScheduler(make_scheduler())
    engine = SimulationEngine(
        trace,
        scheduler,
        NUM_MACHINES,
        seed=trace_seed,
        check_invariants=True,
    )
    result = engine.run()
    assert scheduler.decision_points > 0
    assert result.num_jobs == trace.num_jobs

    # Killed clones freed their machines: the cluster fully drains.
    assert engine.cluster.num_free == NUM_MACHINES
    assert engine.cluster.num_busy == 0
    engine.cluster.check_invariants()

    total_copies = 0
    useful = 0.0
    wasted = 0.0
    for job in engine._jobs:
        assert job.is_complete
        for task in job.all_tasks():
            assert task.is_completed
            total_copies += len(task.copies)

            finished = [copy for copy in task.copies if copy.is_finished]
            killed = [copy for copy in task.copies if copy.is_killed]
            # Exactly one copy wins; every other copy was killed.
            assert len(finished) == 1
            assert len(finished) + len(killed) == len(task.copies)

            # Task completion time is the earliest-finishing copy's finish
            # time: the winner finished then, and no killed copy could have
            # finished earlier.
            winner = finished[0]
            assert task.completion_time == winner.finish_time
            for clone in killed:
                assert clone.killed_at <= task.completion_time
                if clone.start_time is not None:
                    assert (
                        clone.start_time + clone.workload
                        >= task.completion_time - 1e-9
                    )

            if task.phase is Phase.REDUCE:
                # No reduce copy starts processing before the map phase is done.
                assert job.map_phase_completion_time is not None
                for copy in task.copies:
                    if copy.start_time is not None:
                        assert (
                            copy.start_time
                            >= job.map_phase_completion_time - 1e-9
                        )

            useful += sum(copy.elapsed(result.makespan) for copy in finished)
            wasted += sum(copy.elapsed(result.makespan) for copy in killed)

    # The engine's work accounting matches the copy history.
    assert total_copies == result.total_copies
    assert useful == pytest.approx(result.useful_work)
    assert wasted == pytest.approx(result.wasted_work)


@pytest.mark.parametrize("trace_seed", [3, 9])
def test_invariants_hold_under_heavy_cloning(trace_seed):
    """An over-provisioned cluster forces aggressive cloning; the
    one-copy-per-machine and kill-frees-machine invariants must survive it."""
    trace = poisson_trace(
        num_jobs=8,
        arrival_rate=0.2,
        mean_tasks_per_job=3,
        mean_duration=10.0,
        cv=1.0,
        seed=trace_seed,
    )
    machines = 24  # far more machines than work
    scheduler = InvariantCheckingScheduler(SRPTMSCScheduler(epsilon=1.0, r=3.0))
    engine = SimulationEngine(
        trace, scheduler, machines, seed=trace_seed, check_invariants=True
    )
    result = engine.run()
    assert result.total_copies > result.total_tasks, "expected cloning to happen"
    assert result.wasted_work > 0.0
    assert engine.cluster.num_free == machines


# --------------------------------------------------------------------- stage DAGs

#: Every incrementally-maintained Job counter (see Job.__slots__); the
#: rescan invariant asserts each one equals a from-scratch recount.
COUNTER_SLOTS = (
    "_unscheduled",
    "_incomplete",
    "_stage_ready",
    "_unscheduled_ready",
    "_unscheduled_total",
    "_incomplete_total",
    "_incomplete_stages",
    "_active_copies",
    "_copies_launched",
)


def _counter_snapshot(job):
    return {
        slot: list(value) if isinstance(value, list) else value
        for slot, value in ((slot, getattr(job, slot)) for slot in COUNTER_SLOTS)
    }


class CounterRescanScheduler(InvariantCheckingScheduler):
    """Also asserts incremental counters == full rescan at every decision.

    ``Job._recount`` rederives every counter from the task lists and is
    idempotent, so snapshotting before and after it proves the
    incrementally-maintained state never drifted from ground truth.
    """

    def schedule(self, view):
        for job in view.alive_jobs:
            before = _counter_snapshot(job)
            job._recount()
            after = _counter_snapshot(job)
            assert before == after, (
                f"incremental counters drifted from a full rescan for job "
                f"{job.job_id} at t={view.time}: {before} != {after}"
            )
        return super().schedule(view)


def _dag_trace(kind: str, seed: int) -> Trace:
    if kind == "chain":
        specs = stream_dag_chain_jobs(
            10,
            num_rounds=3,
            arrival_rate=0.3,
            mean_tasks_per_round=3.0,
            mean_duration=6.0,
            cv=0.6,
            seed=seed,
        )
    else:
        specs = stream_dag_diamond_jobs(
            10,
            fan_out=3,
            arrival_rate=0.3,
            mean_tasks_per_branch=2.0,
            mean_duration=6.0,
            cv=0.6,
            seed=seed,
        )
    return Trace(tuple(specs), name=f"dag-{kind}")


@pytest.mark.parametrize("kind", ["chain", "diamond"])
@pytest.mark.parametrize("triple", ["fifo+greedy+none", "srpt+greedy+late"])
@pytest.mark.parametrize("trace_seed", [5, 31])
def test_incremental_counters_match_rescan_on_multi_round_jobs(
    kind, triple, trace_seed
):
    trace = _dag_trace(kind, trace_seed)
    ordering, allocation, redundancy = triple.split("+")
    scheduler = CounterRescanScheduler(
        ComposedScheduler(ordering, allocation, redundancy, r=3.0)
    )
    engine = SimulationEngine(
        trace, scheduler, NUM_MACHINES, seed=trace_seed, check_invariants=True
    )
    result = engine.run()
    assert scheduler.decision_points > 0
    assert result.num_jobs == trace.num_jobs
    assert engine.cluster.num_free == NUM_MACHINES
    # The trace really exercised multi-round DAGs, not degenerate 2-stagers.
    assert any(job.num_stages > 2 for job in engine._jobs)


@pytest.mark.parametrize("redundancy", ["none", "checkpoint"])
@pytest.mark.parametrize("trace_seed", [13, 29])
def test_mid_dag_failure_kills_redispatched_exactly_once(redundancy, trace_seed):
    """Under a single-copy policy every failure kill triggers exactly one
    replacement launch: per task, copies == kills + 1 and one winner."""
    trace = _dag_trace("chain", trace_seed)
    scheduler = CounterRescanScheduler(
        ComposedScheduler("fifo", "greedy", redundancy)
    )
    scenario = ScenarioSpec(failures=MachineFailures(rate=0.01, mean_repair=5.0))
    engine = SimulationEngine(
        trace,
        scheduler,
        NUM_MACHINES,
        seed=trace_seed,
        scenario=scenario,
        check_invariants=True,
    )
    result = engine.run()
    assert result.num_jobs == trace.num_jobs
    assert result.copies_killed_by_failure > 0, "expected failures to kill copies"

    total_killed = 0
    mid_dag_kill = False
    for job in engine._jobs:
        assert job.is_complete
        for task in job.all_tasks():
            finished = [copy for copy in task.copies if copy.is_finished]
            killed = [copy for copy in task.copies if copy.is_killed]
            assert len(finished) == 1
            # Exactly one replacement per kill, never more, never fewer.
            assert len(task.copies) == len(killed) + 1
            total_killed += len(killed)
            if killed and task.stage > 0:
                mid_dag_kill = True

    assert total_killed == result.copies_killed_by_failure
    assert mid_dag_kill, "expected at least one kill on a stage past the first"

# --------------------------------------------------------------------- topology

class RackOccupancyRescanScheduler(CounterRescanScheduler):
    """Also asserts per-rack occupancy == a from-scratch recount.

    The cluster maintains ``_rack_running`` incrementally on every place
    and release; recounting the running copies by the rack of their
    machine proves the ledger never drifts -- through launches, clone
    kills, failure kills and repairs alike.
    """

    def schedule(self, view):
        if view.topology_active:
            cluster = view._engine.cluster
            recount = [0] * view.num_racks
            for copy in view.running_copies():
                recount[view.rack_of(copy.machine_id)] += 1
            incremental = [
                cluster.num_running_on_rack(rack)
                for rack in range(view.num_racks)
            ]
            assert incremental == recount, (
                f"per-rack occupancy drifted from a recount at "
                f"t={view.time}: {incremental} != {recount}"
            )
        return super().schedule(view)


@pytest.mark.parametrize(
    "triple", ["srpt+delay+none", "srpt+delay+clone", "srpt+greedy+clone"]
)
@pytest.mark.parametrize("trace_seed", [17, 41])
def test_rack_occupancy_and_launch_accounting_under_topology(triple, trace_seed):
    trace = poisson_trace(
        num_jobs=15,
        arrival_rate=0.4,
        mean_tasks_per_job=5,
        mean_duration=8.0,
        cv=0.8,
        seed=trace_seed,
    )
    ordering, allocation, redundancy = triple.split("+")
    scheduler = RackOccupancyRescanScheduler(
        ComposedScheduler(ordering, allocation, redundancy, epsilon=0.6, r=3.0)
    )
    scenario = ScenarioSpec(
        failures=MachineFailures(rate=0.005, mean_repair=5.0),
        topology=TopologySpec(racks=3, remote_slowdown=2.0),
    )
    engine = SimulationEngine(
        trace,
        scheduler,
        NUM_MACHINES,
        seed=trace_seed,
        scenario=scenario,
        check_invariants=True,
    )
    result = engine.run()
    assert scheduler.decision_points > 0
    assert result.num_jobs == trace.num_jobs
    assert engine.cluster.num_free == NUM_MACHINES
    engine.cluster.check_invariants()

    # Every copy launched under an active topology lands on exactly one
    # side of the local/remote ledger -- kills and relaunches included.
    assert (
        result.local_launches + result.remote_launches == result.total_copies
    )
    assert result.total_copies == sum(
        len(task.copies) for job in engine._jobs for task in job.all_tasks()
    )
    assert 0.0 <= result.locality_fraction <= 1.0
