"""Cache-correctness tests for the RunSpec-keyed results store."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cluster.stragglers import DynamicStragglers
from repro.core.srptms_c import SRPTMSCScheduler
from repro.scenarios import (
    BimodalSpeeds,
    MachineFailures,
    ScenarioSpec,
    UniformSpeeds,
)
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation import (
    ExperimentRunner,
    ResultsStore,
    RunSpec,
    SchedulerSpec,
    UncacheableSpecError,
    run_spec_fingerprint,
)
from repro.simulation.experiment_runner import TraceSpec
from repro.simulation.results_store import canonical_spec_description
from repro.workload.generators import poisson_trace
from repro.workload.stream import StreamSpec, stream_poisson_jobs


def make_spec(**overrides) -> RunSpec:
    defaults = dict(
        trace=TraceSpec(factory=poisson_trace, kwargs={"num_jobs": 40,
                                                       "arrival_rate": 1.0,
                                                       "seed": 5}),
        scheduler=SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0}),
        num_machines=16,
        seed=7,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestFingerprint:
    def test_stable_across_equal_specs(self):
        assert run_spec_fingerprint(make_spec()) == run_spec_fingerprint(make_spec())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"seed": 8},
            {"num_machines": 17},
            {"machine_speed": 1.5},
            {"max_time": 1e6},
            {"scheduler": SchedulerSpec(SRPTMSCScheduler,
                                        {"epsilon": 0.61, "r": 3.0})},
            {"scheduler": SchedulerSpec(FIFOScheduler)},
            {"trace": TraceSpec(factory=poisson_trace,
                                kwargs={"num_jobs": 40, "arrival_rate": 1.0,
                                        "seed": 6})},
            {"trace": StreamSpec(factory=stream_poisson_jobs, num_jobs=40,
                                 kwargs={"arrival_rate": 1.0, "seed": 5})},
            {"scenario": ScenarioSpec(speeds=UniformSpeeds(0.5, 1.5))},
        ],
        ids=["seed", "machines", "speed", "max_time", "scheduler-kwargs",
             "scheduler-class", "trace-kwargs", "trace-kind", "scenario"],
    )
    def test_every_result_relevant_field_changes_the_key(self, overrides):
        assert run_spec_fingerprint(make_spec()) != run_spec_fingerprint(
            make_spec(**overrides)
        )

    def test_nested_scenario_fields_change_the_key(self):
        """Any knob inside ScenarioSpec -- including nested process specs --
        must invalidate the key."""
        base = make_spec(scenario=ScenarioSpec(
            speeds=UniformSpeeds(0.5, 1.5),
            normalize_mean_speed=True,
            stragglers=DynamicStragglers(onset_rate=5e-4, mean_duration=200.0,
                                         factor=4.0),
            failures=MachineFailures(rate=5e-5, mean_repair=300.0),
        ))
        variants = [
            dataclasses.replace(base.scenario,
                                speeds=UniformSpeeds(0.4, 1.6)),
            dataclasses.replace(base.scenario,
                                speeds=BimodalSpeeds()),
            dataclasses.replace(base.scenario, normalize_mean_speed=False),
            dataclasses.replace(base.scenario,
                                stragglers=DynamicStragglers(
                                    onset_rate=5e-4, mean_duration=200.0,
                                    factor=4.5)),
            dataclasses.replace(base.scenario,
                                failures=MachineFailures(rate=5e-5,
                                                         mean_repair=301.0)),
            dataclasses.replace(base.scenario,
                                failures=MachineFailures(rate=5e-5,
                                                         mean_repair=300.0,
                                                         fixed_repair=True)),
        ]
        keys = {run_spec_fingerprint(base)}
        for scenario in variants:
            keys.add(run_spec_fingerprint(
                dataclasses.replace(base, scenario=scenario)))
        assert len(keys) == len(variants) + 1

    def test_tag_is_excluded(self):
        assert run_spec_fingerprint(make_spec()) == run_spec_fingerprint(
            make_spec(tag="sweep-point-3")
        )

    def test_materialised_trace_hashed_by_content(self):
        trace_a = poisson_trace(20, 1.0, seed=3)
        trace_b = poisson_trace(20, 1.0, seed=3)
        trace_c = poisson_trace(20, 1.0, seed=4)
        assert run_spec_fingerprint(make_spec(trace=trace_a)) == (
            run_spec_fingerprint(make_spec(trace=trace_b))
        )
        assert run_spec_fingerprint(make_spec(trace=trace_a)) != (
            run_spec_fingerprint(make_spec(trace=trace_c))
        )

    def test_lambdas_are_uncacheable(self):
        spec = make_spec(scheduler=lambda: FIFOScheduler())
        with pytest.raises(UncacheableSpecError):
            run_spec_fingerprint(spec)


class TestResultsStore:
    def test_hit_returns_byte_equal_result(self, tmp_path):
        store = ResultsStore(tmp_path)
        spec = make_spec()
        key = run_spec_fingerprint(spec)
        fresh = spec.execute()
        store.store(key, canonical_spec_description(spec), fresh)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.fingerprint() == fresh.fingerprint()
        assert loaded.canonical_dict() == fresh.canonical_dict()
        assert loaded.summary() == fresh.summary()
        assert loaded.runtime_seconds == fresh.runtime_seconds

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.load("0" * 64) is None
        assert store.misses == 1 and store.hits == 0

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "garbage", "tamper", "format"],
    )
    def test_corrupted_entries_are_recomputed_not_trusted(self, tmp_path,
                                                          corruption):
        store = ResultsStore(tmp_path)
        spec = make_spec()
        key = run_spec_fingerprint(spec)
        fresh = spec.execute()
        path = store.store(key, canonical_spec_description(spec), fresh)

        if corruption == "truncate":
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        elif corruption == "garbage":
            path.write_text("not json at all{{{")
        elif corruption == "tamper":
            entry = json.loads(path.read_text())
            entry["result"]["makespan"] += 1.0  # flips the fingerprint
            path.write_text(json.dumps(entry))
        elif corruption == "format":
            entry = json.loads(path.read_text())
            entry["format"] = 999
            path.write_text(json.dumps(entry))

        assert store.load(key) is None
        assert store.corrupt == 1

        # A cached runner recomputes and heals the entry.
        runner = ExperimentRunner(workers=1, store=store)
        (recomputed,) = runner.run([spec])
        assert runner.last_run_stats["executed"] == 1
        assert recomputed.fingerprint() == fresh.fingerprint()
        assert store.load(key).fingerprint() == fresh.fingerprint()

    def test_v2_format_entries_are_stale_and_recomputed(self, tmp_path):
        """Pre-DAG (v2) entries -- no per-record ``num_stages`` column, no
        checkpoint counters -- are detected as stale and recomputed, never
        rebuilt with silently-defaulted fields."""
        from repro.simulation.results_store import FORMAT_VERSION

        assert FORMAT_VERSION == 4
        store = ResultsStore(tmp_path)
        spec = make_spec()
        key = run_spec_fingerprint(spec)
        fresh = spec.execute()
        path = store.store(key, canonical_spec_description(spec), fresh)

        # Rewrite the entry the way pre-DAG code would have written it:
        # format 2, record rows without the trailing num_stages column,
        # and no checkpoint counters in the payload.
        entry = json.loads(path.read_text())
        entry["format"] = 2
        payload = entry["result"]
        del payload["checkpoint_resumes"]
        del payload["work_saved_by_checkpointing"]
        payload["records"] = [row[:-1] for row in payload["records"]]
        path.write_text(json.dumps(entry))

        assert store.load(key) is None
        assert store.corrupt == 1 and store.misses == 1 and store.hits == 0

        # A cached runner recomputes the cell and heals it to the current
        # format.
        runner = ExperimentRunner(workers=1, store=store)
        (recomputed,) = runner.run([spec])
        assert runner.last_run_stats["executed"] == 1
        assert recomputed.fingerprint() == fresh.fingerprint()
        healed = store.load(key)
        assert healed is not None
        assert healed.fingerprint() == fresh.fingerprint()
        assert all(record.num_stages == 2 for record in healed.records)

    def test_v3_format_entries_are_stale_and_recomputed(self, tmp_path):
        """FORMAT_VERSION 4 (rack-locality counters): a pre-topology v3
        entry -- no ``local_launches``/``remote_launches`` in the payload
        -- is detected as stale and recomputed, never rebuilt with
        silently-defaulted counters."""
        store = ResultsStore(tmp_path)
        spec = make_spec()
        key = run_spec_fingerprint(spec)
        fresh = spec.execute()
        path = store.store(key, canonical_spec_description(spec), fresh)

        # Rewrite the entry the way pre-topology code would have written
        # it: format 3 and no locality counters in the payload.
        entry = json.loads(path.read_text())
        entry["format"] = 3
        payload = entry["result"]
        del payload["local_launches"]
        del payload["remote_launches"]
        path.write_text(json.dumps(entry))

        assert store.load(key) is None
        assert store.corrupt == 1 and store.misses == 1 and store.hits == 0

        # A cached runner recomputes the cell and heals it to v4.
        runner = ExperimentRunner(workers=1, store=store)
        (recomputed,) = runner.run([spec])
        assert runner.last_run_stats["executed"] == 1
        assert recomputed.fingerprint() == fresh.fingerprint()
        healed = store.load(key)
        assert healed is not None
        assert healed.fingerprint() == fresh.fingerprint()
        assert healed.local_launches == 0 and healed.remote_launches == 0


class TestCachedRunner:
    def test_second_sweep_performs_zero_engine_runs(self, tmp_path):
        """The acceptance property: warm sweeps never touch the engine."""
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        base = make_spec()
        specs = [base.with_seed(seed) for seed in range(4)]

        cold = runner.run(specs)
        assert runner.last_run_stats == {
            "executed": 4, "cache_hits": 0, "uncacheable": 0,
        }

        warm = runner.run(specs)
        assert runner.last_run_stats == {
            "executed": 0, "cache_hits": 4, "uncacheable": 0,
        }
        assert [r.fingerprint() for r in warm] == [r.fingerprint() for r in cold]

    def test_cache_shared_across_runner_instances(self, tmp_path):
        """Resuming an interrupted sweep: a new process sees the old cells."""
        specs = [make_spec().with_seed(seed) for seed in range(3)]
        first = ExperimentRunner(workers=1, cache_dir=tmp_path)
        first.run(specs[:2])  # "interrupted" after two cells
        second = ExperimentRunner(workers=1, cache_dir=tmp_path)
        second.run(specs)
        assert second.last_run_stats["executed"] == 1
        assert second.last_run_stats["cache_hits"] == 2

    def test_partial_hits_execute_only_the_misses(self, tmp_path):
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        runner.run([make_spec().with_seed(0)])
        results = runner.run([make_spec().with_seed(s) for s in (0, 1)])
        assert runner.last_run_stats == {
            "executed": 1, "cache_hits": 1, "uncacheable": 0,
        }
        assert results[0].seed == 0 and results[1].seed == 1

    def test_uncacheable_specs_bypass_the_cache(self, tmp_path):
        runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        spec = make_spec(scheduler=lambda: FIFOScheduler())
        for _ in range(2):
            (result,) = runner.run([spec])
            assert result.num_jobs == 40
            assert runner.last_run_stats == {
                "executed": 1, "cache_hits": 0, "uncacheable": 1,
            }

    def test_pooled_cold_run_then_cached_warm_run(self, tmp_path):
        specs = [make_spec().with_seed(seed) for seed in range(3)]
        pooled = ExperimentRunner(workers=2, cache_dir=tmp_path)
        cold = pooled.run(specs)
        assert pooled.last_run_stats["executed"] == 3
        warm = ExperimentRunner(workers=1, cache_dir=tmp_path).run(specs)
        assert [r.fingerprint() for r in warm] == [r.fingerprint() for r in cold]

    def test_cache_dir_and_store_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentRunner(cache_dir=tmp_path, store=ResultsStore(tmp_path))

    def test_without_cache_every_run_executes(self):
        runner = ExperimentRunner(workers=1)
        specs = [make_spec()]
        runner.run(specs)
        assert runner.last_run_stats["executed"] == 1
        runner.run(specs)
        assert runner.last_run_stats["executed"] == 1


class TestConfigAndCli:
    def test_experiment_config_cache_dir_wires_the_store(self, tmp_path):
        from repro.experiments import ExperimentConfig

        config = ExperimentConfig(scale=0.005, seeds=(0,),
                                  cache_dir=str(tmp_path / "cache"))
        runner = config.make_runner()
        assert runner.store is not None
        assert runner.store.cache_dir == tmp_path / "cache"
        assert ExperimentConfig(scale=0.005).make_runner().store is None

    def test_cli_cache_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["figure1", "--cache-dir", "/tmp/c"])
        assert args.cache_dir == "/tmp/c" and not args.no_cache
        args = parser.parse_args(["figure1", "--cache-dir", "/tmp/c",
                                  "--no-cache"])
        assert args.no_cache

    def test_cli_no_cache_overrides_cache_dir(self, tmp_path):
        from repro.cli import _config_from_args, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["figure1", "--cache-dir", str(tmp_path), "--no-cache"]
        )
        assert _config_from_args(args).cache_dir is None
        args = parser.parse_args(["figure1", "--cache-dir", str(tmp_path)])
        assert _config_from_args(args).cache_dir == str(tmp_path)
