"""Differential lockdown of the rack-topology axis (PR 8 tentpole).

The scenario layer grew a :class:`~repro.scenarios.TopologySpec` (racks,
per-job input placement, remote-read slowdown) and the policy kernel a
locality-aware ``delay`` allocation.  These tests pin the two hard
guarantees the tentpole promised:

* **Degenerate == absent.**  A topology with one rack, or with a unit
  remote slowdown, produces a byte-identical
  :class:`~repro.simulation.metrics.SimulationResult` fingerprint to
  ``topology=None`` -- for every legacy scheduler and composition triple
  (including ``delay``), serially and pooled (``workers=2``).  The engine
  must take the exact legacy code paths, consuming no extra RNG draws.

* **Pooled == serial.**  Under an active multi-rack topology with machine
  failures (exercising remote pricing, the dedicated placement seed
  stream and the delay policy's blacklists), worker pooling changes
  nothing: placement randomness comes from a per-seed stream keyed only
  by the run seed, never from engine state.

Fingerprints hash every per-job record and counter (see
``SimulationResult.canonical_dict``), so equality here means the topology
axis changed *nothing* observable where it is inactive.
"""

from __future__ import annotations

import pytest

from repro.core.srptms_c import SRPTMSCScheduler
from repro.scenarios import MachineFailures, ScenarioSpec, TopologySpec
from repro.schedulers import (
    FIFOScheduler,
    FairScheduler,
    LATEScheduler,
    MantriScheduler,
    SCAScheduler,
    SRPTScheduler,
)
from repro.simulation.experiment_runner import (
    ExperimentRunner,
    RunSpec,
    SchedulerSpec,
)
from repro.workload.generators import poisson_trace

#: The seven legacy schedulers (the named points of the policy grid).
LEGACY_SCHEDULER_SPECS = (
    ("SRPTMS+C", SchedulerSpec(SRPTMSCScheduler, {"epsilon": 0.6, "r": 3.0})),
    ("SCA", SchedulerSpec(SCAScheduler)),
    ("Mantri", SchedulerSpec(MantriScheduler)),
    ("LATE", SchedulerSpec(LATEScheduler)),
    ("SRPT", SchedulerSpec(SRPTScheduler, {"r": 3.0})),
    ("Fair", SchedulerSpec(FairScheduler)),
    ("FIFO", SchedulerSpec(FIFOScheduler)),
)

#: Three policy-kernel composition triples riding along -- one per
#: allocation kind, with ``delay`` among them so the locality-aware
#: policy itself is pinned to the legacy greedy walk off-topology.
COMPOSITION_TRIPLES = (
    "srpt+greedy+none",
    "fair+delay+late",
    "fifo+share+clone",
)

ALL_SCHEDULER_IDS = tuple(name for name, _ in LEGACY_SCHEDULER_SPECS) + (
    COMPOSITION_TRIPLES
)

#: Both ways a topology can be degenerate (the engine must treat either
#: exactly like ``topology=None``).
DEGENERATE_TOPOLOGIES = {
    "single-rack": TopologySpec(racks=1, remote_slowdown=2.0),
    "unit-slowdown": TopologySpec(racks=4, remote_slowdown=1.0),
}

#: An active multi-rack topology under failures: remote pricing, the
#: placement stream and the delay blacklists all engage.
MULTI_RACK_SCENARIO = ScenarioSpec(
    failures=MachineFailures(rate=0.001, mean_repair=20.0),
    topology=TopologySpec(racks=4, remote_slowdown=2.0),
)

#: Schedulers exercised under the active topology: the locality-aware
#: compositions plus a topology-blind legacy baseline.
MULTI_RACK_SCHEDULER_IDS = (
    "SRPTMS+C",
    "srpt+delay+none",
    "srpt+delay+clone",
    "srpt+greedy+clone",
)


def _composition_spec(triple: str) -> SchedulerSpec:
    from repro.simulation.scheduler_api import ComposedScheduler

    ordering, allocation, redundancy = triple.split("+")
    return SchedulerSpec(
        ComposedScheduler,
        {
            "ordering": ordering,
            "allocation": allocation,
            "redundancy": redundancy,
            "epsilon": 0.6,
            "r": 3.0,
        },
    )


def _scheduler_spec(name: str) -> SchedulerSpec:
    for legacy_name, spec in LEGACY_SCHEDULER_SPECS:
        if legacy_name == name:
            return spec
    return _composition_spec(name)


@pytest.fixture(scope="module")
def trace():
    return poisson_trace(
        num_jobs=20,
        arrival_rate=0.5,
        mean_tasks_per_job=6,
        mean_duration=8.0,
        cv=0.5,
        seed=7,
    )


def _fingerprints(trace, scheduler_spec, *, scenario, workers, seeds=(0, 1)):
    specs = [
        RunSpec(
            trace=trace,
            scheduler=scheduler_spec,
            num_machines=8,
            seed=seed,
            scenario=scenario,
        )
        for seed in seeds
    ]
    results = ExperimentRunner(workers=workers).run(specs)
    return [result.fingerprint() for result in results]


class TestDegenerateTopologyBitIdentity:
    """Degenerate topology == ``topology=None``, for every policy."""

    @pytest.mark.parametrize("name", ALL_SCHEDULER_IDS)
    @pytest.mark.parametrize("topology_key", sorted(DEGENERATE_TOPOLOGIES))
    def test_serial(self, trace, name, topology_key):
        scheduler = _scheduler_spec(name)
        degenerate = ScenarioSpec(
            topology=DEGENERATE_TOPOLOGIES[topology_key]
        )
        assert _fingerprints(
            trace, scheduler, scenario=None, workers=1
        ) == _fingerprints(trace, scheduler, scenario=degenerate, workers=1)

    @pytest.mark.parametrize("name", ALL_SCHEDULER_IDS)
    @pytest.mark.parametrize("topology_key", sorted(DEGENERATE_TOPOLOGIES))
    def test_pooled(self, trace, name, topology_key):
        scheduler = _scheduler_spec(name)
        degenerate = ScenarioSpec(
            topology=DEGENERATE_TOPOLOGIES[topology_key]
        )
        assert _fingerprints(
            trace, scheduler, scenario=None, workers=2
        ) == _fingerprints(trace, scheduler, scenario=degenerate, workers=2)

    @pytest.mark.parametrize("name", ALL_SCHEDULER_IDS)
    def test_degenerate_under_failures(self, trace, name):
        """Degeneracy also holds with a failure process running."""
        scheduler = _scheduler_spec(name)
        failures = MachineFailures(rate=0.001, mean_repair=20.0)
        plain = ScenarioSpec(failures=failures)
        degenerate = ScenarioSpec(
            failures=failures,
            topology=DEGENERATE_TOPOLOGIES["single-rack"],
        )
        assert _fingerprints(
            trace, scheduler, scenario=plain, workers=1
        ) == _fingerprints(trace, scheduler, scenario=degenerate, workers=1)


class TestMultiRackPooledEqualsSerial:
    """Active topology + failures: pooling changes nothing."""

    @pytest.mark.parametrize("name", MULTI_RACK_SCHEDULER_IDS)
    def test_pooled_equals_serial(self, trace, name):
        scheduler = _scheduler_spec(name)
        assert _fingerprints(
            trace, scheduler, scenario=MULTI_RACK_SCENARIO, workers=1
        ) == _fingerprints(
            trace, scheduler, scenario=MULTI_RACK_SCENARIO, workers=2
        )


class TestTopologyAccounting:
    """The locality counters engage exactly when the topology does."""

    def _run(self, trace, name, scenario):
        spec = RunSpec(
            trace=trace,
            scheduler=_scheduler_spec(name),
            num_machines=8,
            seed=0,
            scenario=scenario,
        )
        return ExperimentRunner(workers=1).run([spec])[0]

    def test_counters_zero_without_topology(self, trace):
        result = self._run(trace, "srpt+delay+none", None)
        assert result.local_launches == 0
        assert result.remote_launches == 0
        assert result.locality_fraction == 0.0

    def test_counters_zero_on_degenerate_topology(self, trace):
        scenario = ScenarioSpec(topology=DEGENERATE_TOPOLOGIES["unit-slowdown"])
        result = self._run(trace, "srpt+delay+none", scenario)
        assert result.local_launches == 0
        assert result.remote_launches == 0

    def test_counters_cover_every_launch_under_topology(self, trace):
        for name in ("srpt+greedy+none", "srpt+delay+none"):
            result = self._run(trace, name, MULTI_RACK_SCENARIO)
            priced = result.local_launches + result.remote_launches
            assert priced > 0
            assert 0.0 <= result.locality_fraction <= 1.0

    def test_delay_improves_locality_over_greedy(self, trace):
        greedy = self._run(trace, "srpt+greedy+none", MULTI_RACK_SCENARIO)
        delay = self._run(trace, "srpt+delay+none", MULTI_RACK_SCENARIO)
        assert delay.locality_fraction > greedy.locality_fraction
