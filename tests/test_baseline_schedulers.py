"""Tests for the baseline schedulers: FIFO, Fair, SRPT, Mantri, LATE, SCA."""

from __future__ import annotations

import pytest

from repro.schedulers import (
    FIFOScheduler,
    FairScheduler,
    LATEScheduler,
    MantriScheduler,
    SCAScheduler,
    SRPTScheduler,
)
from repro.schedulers.base import SpeculationEstimator
from repro.core.speedup import ParetoSpeedup
from repro.simulation import run_simulation
from repro.workload.distributions import Deterministic, LogNormal
from repro.workload.generators import bulk_arrival_trace
from repro.workload.job import JobSpec, Phase
from repro.workload.trace import Trace


ALL_BASELINES = [
    FIFOScheduler,
    FairScheduler,
    SRPTScheduler,
    MantriScheduler,
    LATEScheduler,
    SCAScheduler,
]


class TestAllBaselinesComplete:
    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES,
                             ids=lambda cls: cls.__name__)
    def test_completes_online_trace(self, scheduler_cls, small_online_trace):
        result = run_simulation(small_online_trace, scheduler_cls(),
                                num_machines=12, seed=0)
        assert result.num_jobs == small_online_trace.num_jobs
        assert result.over_requests == 0
        assert result.mean_flowtime > 0

    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES,
                             ids=lambda cls: cls.__name__)
    def test_completes_under_scarce_machines(self, scheduler_cls,
                                              small_online_trace):
        result = run_simulation(small_online_trace, scheduler_cls(),
                                num_machines=3, seed=0)
        assert result.num_jobs == small_online_trace.num_jobs


class TestFIFO:
    def test_serves_jobs_in_arrival_order(self):
        early = JobSpec(job_id=0, arrival_time=0.0, weight=1.0, num_map_tasks=4,
                        num_reduce_tasks=0, map_duration=Deterministic(10.0),
                        reduce_duration=Deterministic(10.0))
        late = JobSpec(job_id=1, arrival_time=1.0, weight=100.0, num_map_tasks=1,
                       num_reduce_tasks=0, map_duration=Deterministic(1.0),
                       reduce_duration=Deterministic(1.0))
        result = run_simulation(Trace([early, late]), FIFOScheduler(),
                                num_machines=4)
        completion = {r.job_id: r.completion_time for r in result.records}
        # All machines go to job 0 first; job 1 runs only after one frees up.
        assert completion[1] == pytest.approx(11.0)

    def test_no_cloning(self, small_online_trace):
        result = run_simulation(small_online_trace, FIFOScheduler(),
                                num_machines=30, seed=0)
        assert result.cloning_ratio == pytest.approx(1.0)


class TestFair:
    def test_splits_machines_between_equal_jobs(self):
        trace = bulk_arrival_trace([8, 8], mean_duration=10.0, cv=0.0)
        result = run_simulation(trace, FairScheduler(), num_machines=4)
        flowtimes = [r.flowtime for r in result.records]
        # Each job gets 2 machines -> 8 tasks / 2 machines * 10 s = 40 s each
        # for the map part; with the reduce tasks both finish at the same time.
        assert flowtimes[0] == pytest.approx(flowtimes[1], rel=0.05)

    def test_weight_proportional_shares(self):
        trace = bulk_arrival_trace([9, 9], mean_duration=10.0, cv=0.0,
                                   weights=[2.0, 1.0], reduce_fraction=0.0)
        result = run_simulation(trace, FairScheduler(), num_machines=3)
        completion = {r.job_id: r.completion_time for r in result.records}
        # Job 0 holds ~2 machines, job 1 ~1 machine: job 0 finishes earlier.
        assert completion[0] < completion[1]


class TestSRPT:
    def test_prioritises_short_jobs(self):
        trace = bulk_arrival_trace([2, 30], mean_duration=10.0, cv=0.0)
        result = run_simulation(trace, SRPTScheduler(), num_machines=4)
        flowtimes = {r.job_id: r.flowtime for r in result.records}
        assert flowtimes[0] < flowtimes[1]

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            SRPTScheduler(r=-2.0)


class TestSpeculationEstimator:
    def test_remaining_time_extrapolates_progress(self):
        from repro.simulation.engine import SimulationEngine
        from repro.core.srptms_c import SRPTMSCScheduler

        estimator = SpeculationEstimator(min_progress=0.05, min_elapsed=0.0,
                                         min_samples=1)
        # Build a view via a tiny engine so copy_progress works end to end.
        spec = JobSpec(job_id=0, arrival_time=0.0, weight=1.0, num_map_tasks=1,
                       num_reduce_tasks=0, map_duration=Deterministic(10.0),
                       reduce_duration=Deterministic(10.0))
        engine = SimulationEngine(Trace([spec]),
                                  SRPTMSCScheduler(cloning_enabled=False),
                                  num_machines=1)
        engine.run()
        # After the run the copy is finished; remaining time is None.
        copy = engine._jobs[0].map_tasks[0].copies[0]
        view = engine._view
        assert estimator.remaining_time(view, copy) is None

    def test_straggler_probability_requires_samples(self):
        estimator = SpeculationEstimator(min_samples=3)
        assert estimator.new_copy_estimate.__doc__  # sanity: API present
        # With no recorded samples the estimate must be None.
        spec = JobSpec(job_id=0, arrival_time=0.0, weight=1.0, num_map_tasks=1,
                       num_reduce_tasks=0, map_duration=Deterministic(10.0),
                       reduce_duration=Deterministic(10.0))
        from repro.workload.job import Job

        job = Job.from_spec(spec)
        assert estimator.new_copy_estimate(job, Phase.MAP) is None
        assert estimator.recorded_durations(job, Phase.MAP) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationEstimator(min_progress=0.0)
        with pytest.raises(ValueError):
            SpeculationEstimator(min_elapsed=-1.0)
        with pytest.raises(ValueError):
            SpeculationEstimator(min_samples=0)


class TestMantri:
    def test_validation(self):
        with pytest.raises(ValueError):
            MantriScheduler(delta=0.0)
        with pytest.raises(ValueError):
            MantriScheduler(delta=1.0)
        with pytest.raises(ValueError):
            MantriScheduler(max_copies_per_task=1)

    def test_speculates_on_engineered_straggler(self):
        # A job with many identical short tasks plus one enormous outlier: the
        # outlier should trigger Mantri's duplicate rule once enough short
        # copies have finished.
        short = LogNormal(10.0, 1.0)
        jobs = [
            JobSpec(job_id=0, arrival_time=0.0, weight=1.0, num_map_tasks=30,
                    num_reduce_tasks=0, map_duration=short,
                    reduce_duration=short),
        ]
        from repro.cluster.stragglers import SlowMachines

        scheduler = MantriScheduler(delta=0.25, tick_interval=2.0, min_samples=3)
        result = run_simulation(
            Trace(jobs),
            scheduler,
            num_machines=8,
            seed=1,
            straggler_model=SlowMachines(fraction=0.25, factor=20.0),
        )
        assert result.num_jobs == 1
        assert scheduler.speculative_copies_launched > 0
        assert result.total_copies > 30

    def test_does_not_speculate_without_variance(self):
        trace = bulk_arrival_trace([10], mean_duration=10.0, cv=0.0)
        scheduler = MantriScheduler(tick_interval=1.0)
        result = run_simulation(trace, scheduler, num_machines=20, seed=0)
        assert scheduler.speculative_copies_launched == 0
        assert result.cloning_ratio == pytest.approx(1.0)


class TestLATE:
    def test_validation(self):
        with pytest.raises(ValueError):
            LATEScheduler(slow_task_percentile=0.0)
        with pytest.raises(ValueError):
            LATEScheduler(speculative_cap=0.0)

    def test_speculative_cap_limits_duplicates(self):
        short = LogNormal(10.0, 3.0)
        jobs = [JobSpec(job_id=0, arrival_time=0.0, weight=1.0, num_map_tasks=40,
                        num_reduce_tasks=0, map_duration=short,
                        reduce_duration=short)]
        scheduler = LATEScheduler(speculative_cap=0.1, tick_interval=2.0)
        result = run_simulation(Trace(jobs), scheduler, num_machines=10, seed=0)
        # At most 10% of 10 machines = 1 speculative copy per decision point;
        # the total stays well below the task count.
        assert result.total_copies < 60


class TestSCA:
    def test_validation(self):
        with pytest.raises(ValueError):
            SCAScheduler(max_copies_per_task=0)

    def test_clones_with_spare_machines(self):
        trace = bulk_arrival_trace([4], mean_duration=10.0, cv=0.3)
        result = run_simulation(trace, SCAScheduler(), num_machines=12, seed=0)
        assert result.cloning_ratio > 1.0

    def test_copy_cap_respected(self):
        trace = bulk_arrival_trace([2], mean_duration=10.0, cv=0.3)
        result = run_simulation(trace, SCAScheduler(max_copies_per_task=3),
                                num_machines=50, seed=0)
        assert result.total_copies <= 2 * 3

    def test_no_cloning_under_contention(self):
        trace = bulk_arrival_trace([40], mean_duration=10.0, cv=0.3)
        result = run_simulation(trace, SCAScheduler(), num_machines=5, seed=0)
        assert result.cloning_ratio == pytest.approx(1.0, abs=0.2)

    def test_custom_speedup_function(self):
        trace = bulk_arrival_trace([4], mean_duration=10.0, cv=0.3)
        scheduler = SCAScheduler(speedup=ParetoSpeedup(alpha=3.0))
        result = run_simulation(trace, scheduler, num_machines=12, seed=0)
        assert result.num_jobs == 1

    def test_prefers_cloning_small_jobs(self):
        # A tiny job and a big job share the cluster; the marginal-gain rule
        # divides by the phase size, so the tiny job's tasks get more clones.
        small = JobSpec(job_id=0, arrival_time=0.0, weight=1.0, num_map_tasks=2,
                        num_reduce_tasks=0, map_duration=LogNormal(10.0, 3.0),
                        reduce_duration=LogNormal(10.0, 3.0))
        big = JobSpec(job_id=1, arrival_time=0.0, weight=1.0, num_map_tasks=20,
                      num_reduce_tasks=0, map_duration=LogNormal(10.0, 3.0),
                      reduce_duration=LogNormal(10.0, 3.0))
        from repro.simulation.engine import SimulationEngine

        engine = SimulationEngine(Trace([small, big]), SCAScheduler(),
                                  num_machines=30, seed=0)
        engine.run()
        small_copies = engine._jobs[0].total_copies_launched()
        big_copies = engine._jobs[1].total_copies_launched()
        assert small_copies / 2 >= big_copies / 20
