"""Benchmark: Theorem 1 / Remark 2 validation for the offline Algorithm 1."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_offline_bound

from .conftest import save_report


@pytest.mark.benchmark(group="offline-bound")
def test_offline_bound_validation(benchmark):
    config = ExperimentConfig(scale=0.02, seeds=(0,))
    result = benchmark.pedantic(
        run_offline_bound,
        args=(config,),
        kwargs={
            "job_sizes": (2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 30, 40, 60, 80, 120),
            "num_machines": 40,
        },
        rounds=1,
        iterations=1,
    )
    save_report("offline_bound", result.render())

    # Remark 2: deterministic durations -> every job satisfies the bound and
    # the schedule is within a factor of 2 of the lower bound.
    assert result.deterministic.fraction_satisfying_bound == 1.0
    assert result.deterministic.empirical_competitive_ratio <= 2.0
    # Theorem 1: with noisy durations the bound holds at least as often as
    # the analytical probability.
    assert (
        result.noisy.fraction_satisfying_bound
        >= result.noisy.theoretical_probability - 0.05
    )
