"""Engine throughput benchmark: jobs/sec before vs after the hot-path overhaul.

Two measurements, both written to ``benchmarks/results/BENCH_engine.json``:

1. **Smoke-workload throughput** -- the scale-0.02 synthetic Google trace
   (the same workload the benchmark suite's sweeps run) replayed under
   SRPTMS+C and FIFO.  The pre-overhaul numbers were measured at the PR-2
   HEAD (commit ``a170b82``, identical hardware, best of 5) and are
   recorded here as the fixed baseline; the benchmark measures the current
   engine the same way and asserts the overhaul's >= 2x jobs/sec claim on
   the speedup geomean.  The overhaul changed no semantics: every measured
   run's results are bit-identical to the pre-overhaul engine's (asserted
   by the determinism suite; the optimisation preserved RNG call order and
   event ordering exactly).

2. **Million-job streaming run** -- a 1,000,000-job lazily generated
   workload (:mod:`repro.workload.stream`) replayed end-to-end under FIFO
   with a bounded-memory assertion: the engine must not materialise the
   trace (its retained-job list stays empty, the alive set stays tiny) and
   the process high-water mark must grow by far less than a materialised
   million-job run would require.

3. **Sharded streaming run** -- a 200,000-job serialized stream executed
   as one monolithic run and as shard-and-merge partitions through
   :func:`repro.simulation.run_sharded` (cold, then warm from the results
   cache).  The merged result must be bit-identical to the unsharded run,
   the warm re-run must execute zero shards, and the throughput of all
   three paths is recorded.
"""

from __future__ import annotations

import os
import resource
import tempfile
import time

from repro.core.srptms_c import SRPTMSCScheduler
from repro.experiments import ExperimentConfig
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.engine import SimulationEngine
from repro.simulation import (
    ExperimentRunner,
    RunSpec,
    SchedulerSpec,
    run_sharded,
    run_simulation,
)
from repro.workload.stream import StreamSpec, stream_uniform_jobs

from .conftest import save_report_json

#: Pre-overhaul throughput on the smoke workload (scale-0.02 synthetic
#: Google trace, 858 jobs / 3171 tasks / 240 machines), measured at the
#: PR-2 HEAD on the same container, best of 5 runs.
PRE_OVERHAUL_JOBS_PER_SEC = {
    "SRPTMS+C": 999.2,
    "FIFO": 1769.0,
}
#: How often each timed configuration is run (the best run is kept;
#: single-core containers are noisy).
TIMING_ROUNDS = 5

MILLION = 1_000_000
#: Memory head-room for the million-job run: JobRecords for 10^6 finished
#: jobs cost ~150 MB; materialising the trace plus its Job/Task/TaskCopy
#: graphs would add roughly a gigabyte, so 600 MB cleanly separates
#: "streamed" from "materialised".
MILLION_JOB_RSS_LIMIT_MB = 600


def _best_jobs_per_sec(trace, scheduler_factory, machines) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        run_simulation(trace, scheduler_factory(), machines, seed=0)
        best = min(best, time.perf_counter() - started)
    return trace.num_jobs / best


def _maxrss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_engine_throughput_vs_pre_overhaul_baseline():
    config = ExperimentConfig(scale=0.02, seeds=(0,))
    trace = config.make_trace()
    measured = {
        "SRPTMS+C": _best_jobs_per_sec(
            trace, lambda: SRPTMSCScheduler(epsilon=0.6, r=3.0), config.machines
        ),
        "FIFO": _best_jobs_per_sec(trace, FIFOScheduler, config.machines),
    }
    speedups = {
        name: measured[name] / PRE_OVERHAUL_JOBS_PER_SEC[name]
        for name in measured
    }
    geomean = 1.0
    for value in speedups.values():
        geomean *= value
    geomean **= 1.0 / len(speedups)

    payload = {
        "workload": "scale-0.02 synthetic Google trace "
                    f"({trace.num_jobs} jobs, {trace.total_tasks} tasks, "
                    f"{config.machines} machines), seed 0, best of "
                    f"{TIMING_ROUNDS}",
        "baseline_commit": "a170b82 (pre-overhaul PR-2 HEAD, same container)",
        "jobs_per_sec_before": PRE_OVERHAUL_JOBS_PER_SEC,
        "jobs_per_sec_after": {k: round(v, 1) for k, v in measured.items()},
        "speedup": {k: round(v, 2) for k, v in speedups.items()},
        "speedup_geomean": round(geomean, 2),
    }

    # The million-job streaming leg (separate test) appends to this report;
    # write the throughput leg first so a failure still leaves the numbers.
    save_report_json("BENCH_engine", payload)

    # The baseline numbers are absolute throughputs from one reference
    # machine, so the regression assertion only holds where measured vs
    # baseline is apples-to-apples.  CI (arbitrary shared runners) sets
    # BENCH_ENGINE_NO_BASELINE_ASSERT=1 and just records/uploads the JSON.
    if os.environ.get("BENCH_ENGINE_NO_BASELINE_ASSERT"):
        return
    assert geomean >= 2.0, (
        f"engine overhaul regressed: geomean speedup {geomean:.2f}x "
        f"(per scheduler: {speedups})"
    )
    for name, value in speedups.items():
        assert value >= 1.5, f"{name} only {value:.2f}x vs pre-overhaul"


def test_million_job_streaming_run_is_bounded_memory():
    spec = StreamSpec(
        factory=stream_uniform_jobs,
        num_jobs=MILLION,
        kwargs={
            "tasks_per_job": 1,
            "reduce_tasks_per_job": 0,
            "mean_duration": 10.0,
            "inter_arrival": 1.0,
        },
        name="uniform-1M",
    )
    stream = spec.build()
    rss_before = _maxrss_mb()
    engine = SimulationEngine(stream, FIFOScheduler(), 16, seed=0)
    started = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - started
    rss_delta = _maxrss_mb() - rss_before

    # Completed end to end.
    assert result.num_jobs == MILLION
    assert result.total_tasks == MILLION
    assert stream.yielded == MILLION
    # No full-trace materialisation: the engine retained no jobs, the alive
    # set drained, and the only O(num_jobs) state is the per-job records.
    assert engine._jobs == []
    assert engine._alive == {}
    assert engine._workload_buffers == {}
    assert rss_delta < MILLION_JOB_RSS_LIMIT_MB, (
        f"million-job stream grew RSS by {rss_delta:.0f} MB "
        f"(limit {MILLION_JOB_RSS_LIMIT_MB} MB)"
    )

    import json
    import pathlib

    results_path = (
        pathlib.Path(__file__).parent / "results" / "BENCH_engine.json"
    )
    payload = json.loads(results_path.read_text()) if results_path.exists() else {}
    payload["million_job_stream"] = {
        "workload": "stream_uniform_jobs: 1M single-task jobs, 16 machines",
        "jobs_per_sec": round(MILLION / wall, 1),
        "wall_seconds": round(wall, 1),
        "maxrss_delta_mb": round(rss_delta, 1),
        "rss_limit_mb": MILLION_JOB_RSS_LIMIT_MB,
    }
    save_report_json("BENCH_engine", payload)


#: Size and partitioning of the sharded streaming leg.  ``inter_arrival``
#: exceeds ``mean_duration`` so the run serializes (each job drains before
#: the next arrives) -- the precondition of the shard-and-merge envelope.
SHARDED_JOBS = 200_000
SHARDED_NUM_SHARDS = 4


def test_sharded_stream_is_bit_identical_and_resumes_from_cache():
    spec = RunSpec(
        trace=StreamSpec(
            factory=stream_uniform_jobs,
            num_jobs=SHARDED_JOBS,
            kwargs={
                "tasks_per_job": 1,
                "reduce_tasks_per_job": 0,
                "mean_duration": 10.0,
                "inter_arrival": 12.0,
            },
            name="uniform-200k-serialized",
        ),
        scheduler=SchedulerSpec(FIFOScheduler),
        num_machines=16,
    )

    started = time.perf_counter()
    unsharded = ExperimentRunner(workers=1).run([spec])[0]
    unsharded_wall = time.perf_counter() - started

    with tempfile.TemporaryDirectory() as cache_dir:
        started = time.perf_counter()
        cold = run_sharded(
            spec,
            SHARDED_NUM_SHARDS,
            runner=ExperimentRunner(workers=1, cache_dir=cache_dir),
        )
        cold_wall = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_sharded(
            spec,
            SHARDED_NUM_SHARDS,
            runner=ExperimentRunner(workers=1, cache_dir=cache_dir),
        )
        warm_wall = time.perf_counter() - started

    # The merge must be exact, not approximate, on both paths.
    assert cold.sharded and warm.sharded
    assert cold.result.fingerprint() == unsharded.fingerprint()
    assert warm.result.fingerprint() == unsharded.fingerprint()
    # Cold executed every shard; warm resumed everything from the cache.
    assert cold.run_stats["executed"] == SHARDED_NUM_SHARDS
    assert warm.run_stats == {
        "executed": 0,
        "cache_hits": SHARDED_NUM_SHARDS,
        "uncacheable": 0,
    }

    import json
    import pathlib

    results_path = (
        pathlib.Path(__file__).parent / "results" / "BENCH_engine.json"
    )
    payload = json.loads(results_path.read_text()) if results_path.exists() else {}
    payload["sharded_stream"] = {
        "workload": (
            f"stream_uniform_jobs: {SHARDED_JOBS // 1000}k single-task "
            "serialized jobs, 16 machines"
        ),
        "num_shards": SHARDED_NUM_SHARDS,
        "jobs_per_sec_unsharded": round(SHARDED_JOBS / unsharded_wall, 1),
        "jobs_per_sec_sharded_cold": round(SHARDED_JOBS / cold_wall, 1),
        # The warm path reloads cached shard results from disk instead of
        # simulating; its wall time is IO, so it is reported as seconds
        # rather than as a gated throughput figure.
        "warm_resume_seconds": round(warm_wall, 3),
        "bit_identical": True,
    }
    save_report_json("BENCH_engine", payload)
