"""Engine throughput benchmark: jobs/sec before vs after raw-speed round three.

Three measurements, all written to ``benchmarks/results/BENCH_engine.json``:

1. **Smoke-workload throughput** -- the scale-0.02 synthetic Google trace
   (the same workload the benchmark suite's sweeps run) replayed under
   SRPTMS+C and FIFO.  The baseline numbers were measured at the
   pre-round-three HEAD (commit ``7297133``, identical container, best of
   5) and are recorded here as the fixed reference; the benchmark measures
   the current engine the same way and asserts no regression.  Round three
   changed no semantics: every measured run's results are bit-identical to
   the baseline engine's (asserted by the determinism suite; the
   optimisations preserved RNG call order and event ordering exactly).

2. **Million-job streaming run** -- a 1,000,000-job lazily generated
   workload (:mod:`repro.workload.stream`) replayed end-to-end under FIFO,
   best of :data:`TIMING_ROUNDS`, with a bounded-memory assertion on the
   first run: the engine must not materialise the trace (its retained-job
   list stays empty, the alive set drains) and the process high-water mark
   must grow by far less than a materialised million-job run would
   require.  Round three's acceptance floor is
   :data:`MILLION_JOB_MIN_JOBS_PER_SEC` jobs/sec.

3. **Sharded streaming run** -- a 200,000-job serialized stream executed
   cold as one monolithic run and cold as shard-and-merge partitions
   through :func:`repro.simulation.run_sharded`, both through identically
   configured cache-backed runners (fresh cache every round, best of
   :data:`SHARDED_ROUNDS`, legs interleaved to cancel machine drift), the
   sharded leg on a ``workers=2`` pool.  The merged result must be
   bit-identical to the unsharded run and a warm re-run must execute zero
   shards.  The cold sharded-vs-monolithic ratio is recorded as the
   first-class ``speedup_sharded_vs_monolithic`` leaf so
   ``tools/check_bench_regression.py`` gates it like any throughput
   number.  With more than one usable CPU the sharded leg must win
   outright (engines and store writes parallelise across the pool); on a
   single usable CPU two time-sliced workers cannot beat one process
   doing strictly less work -- the pool's fork + result-pickling floor is
   irreducible -- so the assertion there is the documented
   :data:`SHARDED_SINGLE_CPU_FLOOR` band instead of parity.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import tempfile
import time

from repro.core.srptms_c import SRPTMSCScheduler
from repro.experiments import ExperimentConfig
from repro.schedulers.fifo import FIFOScheduler
from repro.simulation.engine import SimulationEngine
from repro.simulation import (
    ExperimentRunner,
    RunSpec,
    SchedulerSpec,
    run_sharded,
    run_simulation,
)
from repro.workload.stream import StreamSpec, stream_uniform_jobs

from .conftest import save_report_json

#: Pre-round-three throughput on the smoke workload (scale-0.02 synthetic
#: Google trace, 858 jobs / 3171 tasks / 240 machines), measured at the
#: PR-9 HEAD on the same container, best of 5 runs.
BASELINE_JOBS_PER_SEC = {
    "SRPTMS+C": 3180.8,
    "FIFO": 28639.8,
}
BASELINE_COMMIT = "7297133 (pre-round-three HEAD, same container)"
#: How often each timed configuration is run (the best run is kept;
#: single-core containers are noisy).
TIMING_ROUNDS = 5

MILLION = 1_000_000
#: Memory head-room for the million-job run: JobRecords for 10^6 finished
#: jobs cost ~150 MB; materialising the trace plus its Job/Task/TaskCopy
#: graphs would add roughly a gigabyte, so 600 MB cleanly separates
#: "streamed" from "materialised".
MILLION_JOB_RSS_LIMIT_MB = 600
#: Round-three acceptance floor for the million-job stream.
MILLION_JOB_MIN_JOBS_PER_SEC = 100_000


def _results_payload() -> dict:
    path = pathlib.Path(__file__).parent / "results" / "BENCH_engine.json"
    return json.loads(path.read_text()) if path.exists() else {}


def _best_jobs_per_sec(trace, scheduler_factory, machines) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        run_simulation(trace, scheduler_factory(), machines, seed=0)
        best = min(best, time.perf_counter() - started)
    return trace.num_jobs / best


def _maxrss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_engine_throughput_vs_baseline():
    config = ExperimentConfig(scale=0.02, seeds=(0,))
    trace = config.make_trace()
    measured = {
        "SRPTMS+C": _best_jobs_per_sec(
            trace, lambda: SRPTMSCScheduler(epsilon=0.6, r=3.0), config.machines
        ),
        "FIFO": _best_jobs_per_sec(trace, FIFOScheduler, config.machines),
    }
    speedups = {
        name: measured[name] / BASELINE_JOBS_PER_SEC[name]
        for name in measured
    }
    geomean = 1.0
    for value in speedups.values():
        geomean *= value
    geomean **= 1.0 / len(speedups)

    payload = _results_payload()
    payload.update(
        {
            "workload": "scale-0.02 synthetic Google trace "
                        f"({trace.num_jobs} jobs, {trace.total_tasks} tasks, "
                        f"{config.machines} machines), seed 0, best of "
                        f"{TIMING_ROUNDS}",
            "baseline_commit": BASELINE_COMMIT,
            "jobs_per_sec_before": BASELINE_JOBS_PER_SEC,
            "jobs_per_sec_after": {k: round(v, 1) for k, v in measured.items()},
            "speedup": {k: round(v, 2) for k, v in speedups.items()},
            "speedup_geomean": round(geomean, 2),
        }
    )
    save_report_json("BENCH_engine", payload)

    # The baseline numbers are absolute throughputs from one reference
    # machine, so the regression assertion only holds where measured vs
    # baseline is apples-to-apples.  CI (arbitrary shared runners) sets
    # BENCH_ENGINE_NO_BASELINE_ASSERT=1 and just records/uploads the JSON.
    if os.environ.get("BENCH_ENGINE_NO_BASELINE_ASSERT"):
        return
    # Round three targets the streaming hot path; the smoke workload must
    # simply not regress (0.75 mirrors the regression gate's tolerance).
    assert geomean >= 0.9, (
        f"engine regressed vs round-two baseline: geomean speedup "
        f"{geomean:.2f}x (per scheduler: {speedups})"
    )
    for name, value in speedups.items():
        assert value >= 0.75, f"{name} only {value:.2f}x vs baseline"


def test_million_job_streaming_run_is_bounded_memory():
    spec = StreamSpec(
        factory=stream_uniform_jobs,
        num_jobs=MILLION,
        kwargs={
            "tasks_per_job": 1,
            "reduce_tasks_per_job": 0,
            "mean_duration": 10.0,
            "inter_arrival": 1.0,
        },
        name="uniform-1M",
    )
    # First run under the memory watch: maxrss is monotonic, so only the
    # first replay can separate "streamed" from "materialised".
    stream = spec.build()
    rss_before = _maxrss_mb()
    engine = SimulationEngine(stream, FIFOScheduler(), 16, seed=0)
    started = time.perf_counter()
    result = engine.run()
    best_wall = time.perf_counter() - started
    rss_delta = _maxrss_mb() - rss_before

    # Completed end to end.
    assert result.num_jobs == MILLION
    assert result.total_tasks == MILLION
    assert stream.yielded == MILLION
    # No full-trace materialisation: the engine retained no jobs, the alive
    # set drained, and the only O(num_jobs) state is the per-job records.
    assert engine._jobs == []
    assert engine._alive == {}
    assert rss_delta < MILLION_JOB_RSS_LIMIT_MB, (
        f"million-job stream grew RSS by {rss_delta:.0f} MB "
        f"(limit {MILLION_JOB_RSS_LIMIT_MB} MB)"
    )
    del result, engine

    # Remaining timing rounds (best of TIMING_ROUNDS overall).
    for _ in range(TIMING_ROUNDS - 1):
        stream = spec.build()
        engine = SimulationEngine(stream, FIFOScheduler(), 16, seed=0)
        started = time.perf_counter()
        result = engine.run()
        best_wall = min(best_wall, time.perf_counter() - started)
        assert result.num_jobs == MILLION
        del result, engine

    jobs_per_sec = MILLION / best_wall
    payload = _results_payload()
    payload["million_job_stream"] = {
        "workload": (
            "stream_uniform_jobs: 1M single-task jobs, 16 machines, "
            f"best of {TIMING_ROUNDS}"
        ),
        "jobs_per_sec": round(jobs_per_sec, 1),
        "wall_seconds": round(best_wall, 1),
        "maxrss_delta_mb": round(rss_delta, 1),
        "rss_limit_mb": MILLION_JOB_RSS_LIMIT_MB,
    }
    save_report_json("BENCH_engine", payload)

    if os.environ.get("BENCH_ENGINE_NO_BASELINE_ASSERT"):
        return
    assert jobs_per_sec >= MILLION_JOB_MIN_JOBS_PER_SEC, (
        f"million-job stream at {jobs_per_sec:.0f} jobs/sec "
        f"(floor {MILLION_JOB_MIN_JOBS_PER_SEC})"
    )


#: Size and partitioning of the sharded streaming leg.  ``inter_arrival``
#: exceeds ``mean_duration`` so the run serializes (each job drains before
#: the next arrives) -- the precondition of the shard-and-merge envelope.
SHARDED_JOBS = 200_000
SHARDED_NUM_SHARDS = 4
#: Pool width of the sharded leg (the CI benchmark-smoke job runs the
#: same configuration).
SHARDED_WORKERS = 2
#: Cold-leg repetitions; monolithic and sharded legs alternate within one
#: round so machine drift hits both equally, and the best of each side is
#: compared.
SHARDED_ROUNDS = 3
#: Minimum sharded/monolithic cold-throughput ratio on a single usable
#: CPU: two pool workers time-slicing one core cannot beat one process
#: doing strictly less work, so "at worst match" degrades to the pool's
#: measured fork + IPC floor (~0.74 on the reference container; the
#: regression gate pins the recorded ratio, this looser floor only
#: guards the in-test assertion against timer noise).
SHARDED_SINGLE_CPU_FLOOR = 0.6


def test_sharded_stream_beats_monolithic_and_resumes_from_cache():
    spec = RunSpec(
        trace=StreamSpec(
            factory=stream_uniform_jobs,
            num_jobs=SHARDED_JOBS,
            kwargs={
                "tasks_per_job": 1,
                "reduce_tasks_per_job": 0,
                "mean_duration": 10.0,
                "inter_arrival": 12.0,
            },
            name="uniform-200k-serialized",
        ),
        scheduler=SchedulerSpec(FIFOScheduler),
        num_machines=16,
    )

    mono_best = sharded_best = float("inf")
    mono_fingerprint = None
    warm_cache_dir = tempfile.mkdtemp(prefix="bench-shard-warm-")
    try:
        for round_index in range(SHARDED_ROUNDS):
            last_round = round_index == SHARDED_ROUNDS - 1
            # Sharded cold leg: workers=2 pool, fresh cache.
            with tempfile.TemporaryDirectory() as cache_dir:
                shard_cache = warm_cache_dir if last_round else cache_dir
                started = time.perf_counter()
                cold = run_sharded(
                    spec,
                    SHARDED_NUM_SHARDS,
                    runner=ExperimentRunner(
                        workers=SHARDED_WORKERS, cache_dir=shard_cache
                    ),
                )
                sharded_best = min(
                    sharded_best, time.perf_counter() - started
                )
                assert cold.sharded, cold.fallback_reason
                assert cold.run_stats["executed"] == SHARDED_NUM_SHARDS
                cold_fingerprint = cold.result.fingerprint()
                del cold
            # Monolithic cold leg: identical runner shape, workers=1.
            with tempfile.TemporaryDirectory() as cache_dir:
                started = time.perf_counter()
                mono = ExperimentRunner(workers=1, cache_dir=cache_dir).run(
                    [spec]
                )[0]
                mono_best = min(mono_best, time.perf_counter() - started)
                mono_fingerprint = mono.fingerprint()
                del mono
            # The merge must be exact, not approximate.
            assert cold_fingerprint == mono_fingerprint

        # Warm resume over the last round's shard cache: zero engine runs.
        started = time.perf_counter()
        warm = run_sharded(
            spec,
            SHARDED_NUM_SHARDS,
            runner=ExperimentRunner(
                workers=SHARDED_WORKERS, cache_dir=warm_cache_dir
            ),
        )
        warm_wall = time.perf_counter() - started
        assert warm.sharded
        assert warm.run_stats == {
            "executed": 0,
            "cache_hits": SHARDED_NUM_SHARDS,
            "uncacheable": 0,
        }
        assert warm.result.fingerprint() == mono_fingerprint
        del warm
    finally:
        import shutil

        shutil.rmtree(warm_cache_dir, ignore_errors=True)

    usable_cpus = len(os.sched_getaffinity(0))
    ratio = mono_best / sharded_best
    payload = _results_payload()
    payload["sharded_stream"] = {
        "workload": (
            f"stream_uniform_jobs: {SHARDED_JOBS // 1000}k single-task "
            "serialized jobs, 16 machines, cold cache-backed runners, "
            f"best of {SHARDED_ROUNDS} interleaved rounds"
        ),
        "num_shards": SHARDED_NUM_SHARDS,
        "workers": SHARDED_WORKERS,
        "usable_cpus": usable_cpus,
        "jobs_per_sec_monolithic_cold": round(SHARDED_JOBS / mono_best, 1),
        "jobs_per_sec_sharded_cold": round(SHARDED_JOBS / sharded_best, 1),
        "speedup_sharded_vs_monolithic": round(ratio, 3),
        # The warm path reloads cached shard results from disk instead of
        # simulating; its wall time is IO, so it is reported as seconds
        # rather than as a gated throughput figure.
        "warm_resume_seconds": round(warm_wall, 3),
        "bit_identical": True,
    }
    save_report_json("BENCH_engine", payload)

    if os.environ.get("BENCH_ENGINE_NO_BASELINE_ASSERT"):
        return
    if usable_cpus > 1:
        assert ratio >= 1.0, (
            f"sharded cold ({SHARDED_JOBS / sharded_best:.0f} jobs/sec) lost "
            f"to monolithic ({SHARDED_JOBS / mono_best:.0f} jobs/sec) on "
            f"{usable_cpus} CPUs"
        )
    else:
        assert ratio >= SHARDED_SINGLE_CPU_FLOOR, (
            f"sharded cold fell below the single-CPU floor: ratio "
            f"{ratio:.3f} < {SHARDED_SINGLE_CPU_FLOOR}"
        )
