"""Benchmark: Table II -- synthetic Google-trace statistics vs the paper."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_table2
from repro.workload.google_trace import TABLE_II_TARGETS

from .conftest import save_report


@pytest.mark.benchmark(group="table2")
def test_table2_trace_statistics(benchmark):
    # Full-scale trace generation (no simulation), so the per-task statistics
    # are compared against the paper's at the published trace size.
    config = ExperimentConfig(scale=1.0, seeds=(0,))
    result = benchmark.pedantic(run_table2, args=(config,), rounds=1, iterations=1)
    save_report("table2", result.render())

    stats = result.statistics
    assert stats.total_jobs == TABLE_II_TARGETS["total_jobs"]
    assert stats.average_tasks_per_job == pytest.approx(
        TABLE_II_TARGETS["average_tasks_per_job"], rel=0.25
    )
    assert stats.average_task_duration == pytest.approx(
        TABLE_II_TARGETS["average_task_duration"], rel=0.25
    )
    assert stats.min_task_duration >= 0.8 * TABLE_II_TARGETS["min_task_duration"]
