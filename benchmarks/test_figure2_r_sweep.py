"""Benchmark: Figure 2 -- flowtime vs r for SRPTMS+C (epsilon = 0.6)."""

from __future__ import annotations

import pytest

from repro.experiments import run_figure2

from .conftest import SWEEP_CONFIG, save_report

R_VALUES = (1, 2, 3, 5, 8, 10)


@pytest.mark.benchmark(group="figure2")
def test_figure2_r_sweep(benchmark):
    result = benchmark.pedantic(
        run_figure2, args=(SWEEP_CONFIG, R_VALUES), rounds=1, iterations=1
    )
    save_report("figure2", result.render())

    # Shape check (paper: the curves are nearly flat in r because within-job
    # variation is small): the spread of the unweighted curve stays modest.
    assert result.relative_spread_unweighted < 0.35
