"""Benchmark: Figure 4 -- small-job flowtime CDF for SRPTMS+C / SCA / Mantri."""

from __future__ import annotations

import pytest

from repro.experiments import run_figure4

from .conftest import COMPARISON_CONFIG, save_report


@pytest.mark.benchmark(group="figure4")
def test_figure4_small_job_cdf(benchmark, comparison_results):
    result = benchmark.pedantic(
        run_figure4,
        args=(COMPARISON_CONFIG,),
        kwargs={"results": comparison_results},
        rounds=1,
        iterations=1,
    )
    save_report("figure4", result.render())

    # Shape check (paper: SRPTMS+C completes the largest fraction of jobs
    # within 100 s, ahead of Mantri).
    srptms = result.fraction_within("SRPTMS+C", 100.0)
    mantri = result.fraction_within("Mantri", 100.0)
    assert srptms >= mantri - 0.02
    assert srptms > 0.2
