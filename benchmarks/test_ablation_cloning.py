"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Cloning on/off inside SRPTMS+C (machine sharing only vs sharing + cloning)
   under an injected straggler model.
2. The r-term of the effective workload (r = 0 vs r = 3) -- complements the
   Figure 2 sweep at the comparison scale.
3. Extra reference policies (LATE, Fair, FIFO, plain SRPT) on the same trace,
   extending the Figure 6 comparison.
"""

from __future__ import annotations

import pytest

from repro.analysis.comparison import ComparisonTable
from repro.cluster.stragglers import SlowMachines
from repro.core.srptms_c import SRPTMSCScheduler
from repro.experiments import ExperimentConfig, run_scheduler_comparison
from repro.simulation import run_replications

from .conftest import save_report

ABLATION_CONFIG = ExperimentConfig(scale=0.015, seeds=(0,))


@pytest.mark.benchmark(group="ablation")
def test_ablation_cloning_under_stragglers(benchmark):
    """SRPTMS+C with cloning should beat SRPTMS (no cloning) when a quarter
    of the machines are 4x slow -- the regime cloning is designed for."""

    def run() -> ComparisonTable:
        trace = ABLATION_CONFIG.make_trace()
        results = {}
        for name, cloning in (("SRPTMS+C", True), ("SRPTMS (no cloning)", False)):
            results[name] = run_replications(
                trace,
                lambda c=cloning: SRPTMSCScheduler(epsilon=0.6, r=3.0,
                                                   cloning_enabled=c),
                ABLATION_CONFIG.machines,
                seeds=ABLATION_CONFIG.seeds,
                straggler_model_factory=lambda: SlowMachines(fraction=0.25,
                                                             factor=4.0),
            )
        return ComparisonTable.from_results(results)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_cloning", table.render(baseline="SRPTMS (no cloning)"))
    with_clones = table.row("SRPTMS+C").mean_flowtime
    without = table.row("SRPTMS (no cloning)").mean_flowtime
    assert with_clones < without


@pytest.mark.benchmark(group="ablation")
def test_ablation_extra_baselines(benchmark):
    """Extended Figure 6: all seven policies on the same scaled trace."""
    results = benchmark.pedantic(
        run_scheduler_comparison,
        args=(ABLATION_CONFIG,),
        kwargs={"include_extra": True},
        rounds=1,
        iterations=1,
    )
    table = ComparisonTable.from_results(results)
    save_report("ablation_extra_baselines", table.render(baseline="Mantri"))
    # SRPT-family policies should not lose to FIFO on the unweighted average.
    assert table.row("SRPTMS+C").mean_flowtime <= table.row("FIFO").mean_flowtime
