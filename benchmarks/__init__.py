"""Benchmark suite regenerating the paper's tables and figures.

This file makes ``benchmarks/`` a proper package so that the benchmark
modules' ``from .conftest import ...`` relative imports resolve when pytest
collects the suite from the repository root (without it, collection fails
with "attempted relative import with no known parent package").
"""
