"""Benchmark: Figure 6 -- weighted/unweighted average flowtime per scheduler."""

from __future__ import annotations

import pytest

from repro.experiments import run_figure6

from .conftest import COMPARISON_CONFIG, save_report


@pytest.mark.benchmark(group="figure6")
def test_figure6_scheduler_comparison(benchmark, comparison_results):
    result = benchmark.pedantic(
        run_figure6,
        args=(COMPARISON_CONFIG,),
        kwargs={"results": comparison_results},
        rounds=1,
        iterations=1,
    )
    save_report("figure6", result.render())

    # Shape check (paper: SRPTMS+C reduces both averages relative to Mantri,
    # by ~25% in the paper's setting; the sign and a non-trivial margin is
    # what the scaled reproduction must show).
    assert result.improvement_over_baseline(weighted=False) > 3.0
    assert result.improvement_over_baseline(weighted=True) > 3.0
    # SCA also sits between the two extremes on the unweighted metric.
    table = result.table
    srptms = table.row("SRPTMS+C").mean_flowtime
    mantri = table.row("Mantri").mean_flowtime
    sca = table.row("SCA").mean_flowtime
    assert srptms < mantri
    assert sca < mantri * 1.05
