"""Benchmark: Figure 3 -- flowtime vs cluster size for SRPTMS+C."""

from __future__ import annotations

import pytest

from repro.experiments import run_figure3

from .conftest import SWEEP_CONFIG, save_report

FRACTIONS = (0.5, 0.6667, 0.8333, 1.0)


@pytest.mark.benchmark(group="figure3")
def test_figure3_machines_sweep(benchmark):
    result = benchmark.pedantic(
        run_figure3, args=(SWEEP_CONFIG, FRACTIONS), rounds=1, iterations=1
    )
    save_report("figure3", result.render())

    # Shape check: more machines never hurt, and the largest cluster is
    # strictly better than the smallest.  (The paper's sharper observation --
    # a knee around 2/3 of the full cluster -- is less pronounced at 1/50
    # scale because a 240-machine cluster has far less statistical
    # multiplexing headroom than a 12K-machine one; see EXPERIMENTS.md.)
    assert result.mean_flowtimes[-1] <= result.mean_flowtimes[0]
    assert result.knee_machine_count in result.machine_counts
