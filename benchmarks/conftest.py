"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
scaled synthetic Google trace (see DESIGN.md).  The resulting report text is
printed (so ``pytest benchmarks/ --benchmark-only -s`` shows the reproduced
numbers) and written to ``benchmarks/results/<name>.txt`` so the outputs
survive in the repository after a run.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Configuration shared by the parameter sweeps.  Two replications keep the
#: sweep shapes stable (a single seed is too noisy for the Figure 1 interior
#: minimum at this scale); ``workers=None`` fans the runs out over every
#: usable CPU -- results are bit-identical to serial execution.
SWEEP_CONFIG = ExperimentConfig(scale=0.02, seeds=(0, 1), workers=None)

#: Configuration for the scheduler-comparison figures (two replications).
COMPARISON_CONFIG = ExperimentConfig(scale=0.02, seeds=(0, 1), workers=None)


def save_report(name: str, text: str) -> None:
    """Persist a rendered report and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def save_report_json(name: str, payload: dict) -> None:
    """Persist a machine-readable report (``benchmarks/results/<name>.json``)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True)
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def comparison_results():
    """The Figure 4/5/6 scheduler runs, executed once per benchmark session."""
    from repro.experiments import run_scheduler_comparison

    return run_scheduler_comparison(COMPARISON_CONFIG)
