"""Perf smoke test: serial vs pooled execution of a replicated sweep.

Times a 10-replication figure-1-style sweep (SRPTMS+C at one epsilon on the
scaled synthetic Google trace) executed by :class:`ExperimentRunner` with
``workers=1`` and with a 4-worker pool, checks the two are bit-identical,
and writes the wall-clock numbers to ``benchmarks/results/BENCH_runner.json``.

Honesty rule: a pool on a single usable CPU cannot speed anything up, so
when ``usable_cpus == 1`` the report records ``"degenerate": true`` and
makes **no** speedup claim (no ``speedup`` key at all) instead of
committing a meaningless ~1.0x figure.  The >= 2x speedup assertion only
applies when the machine actually has at least four usable CPUs.

A second benchmark exercises the runner's batched pool dispatch: many
small specs shipped to the pool as whole batches (one IPC round-trip per
batch), with the per-worker dispatch distribution recorded in the report.

Both sections also record ``engine_runs``/``cache_hits`` counted through
the runner's ``on_result`` callback and assert the timed sweeps ran cold:
a warm-cache replay would otherwise report engine "throughput" the engine
never produced, silently disarming the perf-regression gate.
"""

from __future__ import annotations

import json
import time

from repro.core.srptms_c import SRPTMSCScheduler
from repro.experiments import ExperimentConfig
from repro.simulation import ExperimentRunner, RunSpec, SchedulerSpec, default_workers

from .conftest import RESULTS_DIR, save_report_json

#: Replication seeds of the timed sweep (the paper's ten-repetition protocol).
SEEDS = tuple(range(10))
POOL_WORKERS = 4


def _sweep_specs(seeds=SEEDS) -> list:
    config = ExperimentConfig(scale=0.01, seeds=tuple(seeds))
    base = RunSpec(
        trace=config.trace_source(),
        scheduler=SchedulerSpec(
            SRPTMSCScheduler, {"epsilon": config.epsilon, "r": 0.0}
        ),
        num_machines=config.machines,
    )
    return [base.with_seed(seed) for seed in seeds]


def _timed_run(workers: int, specs: list):
    # Count real engine executions through the streaming callback: a
    # timing that was served from a warm cache would claim a "speedup"
    # the engine never earned, so every timed run must prove itself cold
    # (engine_runs == len(specs), cache_hits == 0) before the perf gate
    # (tools/check_bench_regression.py) is allowed to believe it.
    counters = {"engine_runs": 0, "cache_hits": 0}

    def tally(spec, result, cache_hit):
        counters["cache_hits" if cache_hit else "engine_runs"] += 1

    runner = ExperimentRunner(workers=workers, on_result=tally)
    started = time.perf_counter()
    results = runner.run(specs)
    elapsed = time.perf_counter() - started
    assert counters == {"engine_runs": len(specs), "cache_hits": 0}, (
        f"timed sweep was not cold: {counters} for {len(specs)} specs"
    )
    assert runner.last_dispatch_stats["cache_hits"] == 0
    return elapsed, results, runner


def _merge_into_report(section: str, payload: dict) -> None:
    """Add ``section`` to BENCH_runner.json, keeping other sections intact."""
    path = RESULTS_DIR / "BENCH_runner.json"
    report = json.loads(path.read_text()) if path.exists() else {}
    report[section] = payload
    save_report_json("BENCH_runner", report)


def test_runner_parallel_speedup():
    specs = _sweep_specs()
    serial_seconds, serial_results, _ = _timed_run(1, specs)
    parallel_seconds, parallel_results, _ = _timed_run(POOL_WORKERS, specs)

    # Correctness first: the pool must reproduce the serial results bit for bit.
    assert [r.fingerprint() for r in serial_results] == [
        r.fingerprint() for r in parallel_results
    ]

    cpus = default_workers()
    if cpus >= POOL_WORKERS and parallel_seconds > serial_seconds / 2.0:
        # A transient spike on a shared/busy machine can ruin one pooled
        # timing; re-time once and keep the better measurement before
        # judging the speedup.
        retry_seconds, _, _ = _timed_run(POOL_WORKERS, specs)
        parallel_seconds = min(parallel_seconds, retry_seconds)

    payload = {
        "sweep": "figure1-style, SRPTMS+C epsilon=0.6 r=0, scale=0.01",
        "replications": len(SEEDS),
        "pool_workers": POOL_WORKERS,
        "usable_cpus": cpus,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        # Cold-run proof: the timed sweeps executed every spec in the
        # engine (asserted in _timed_run); a warm-cache run can't sneak
        # an inflated figure past the regression gate.
        "engine_runs": len(specs),
        "cache_hits": 0,
    }
    if cpus == 1:
        # One usable CPU: the pooled timing is pure overhead, a "speedup"
        # figure would be noise dressed up as a claim.
        payload["degenerate"] = True
    else:
        speedup = (
            serial_seconds / parallel_seconds
            if parallel_seconds > 0
            else float("inf")
        )
        payload["speedup"] = round(speedup, 3)
    _merge_into_report("pool_speedup", payload)

    if cpus >= POOL_WORKERS:
        speedup = payload["speedup"]
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {POOL_WORKERS} workers on {cpus} CPUs, "
            f"got {speedup:.2f}x ({serial_seconds:.2f}s serial vs "
            f"{parallel_seconds:.2f}s parallel)"
        )


def test_runner_batched_dispatch():
    # 20 small runs, batched 5-per-dispatch: 4 batches total instead of 20
    # pool tasks, each crossing the process boundary as one pickle.
    specs = _sweep_specs(seeds=range(20))
    serial_results = ExperimentRunner(workers=1).run(specs)

    runner = ExperimentRunner(workers=POOL_WORKERS, chunksize=5)
    started = time.perf_counter()
    batched_results = runner.run(specs)
    batched_seconds = time.perf_counter() - started

    assert [r.fingerprint() for r in serial_results] == [
        r.fingerprint() for r in batched_results
    ]
    stats = runner.last_dispatch_stats
    assert stats["batches"] == 4
    assert sum(stats["per_worker"].values()) == stats["batches"]
    # Same honesty rule as the speedup section: the batched timing must
    # be a cold run, not a cache replay.
    assert stats["cache_hits"] == 0
    assert runner.last_run_stats["executed"] == len(specs)

    _merge_into_report(
        "batched_dispatch",
        {
            "sweep": "figure1-style, SRPTMS+C epsilon=0.6 r=0, scale=0.01",
            "runs": len(specs),
            "pool_workers": POOL_WORKERS,
            "usable_cpus": default_workers(),
            "batch_size": stats["batch_size"],
            "batches": stats["batches"],
            # PIDs are run-dependent; commit the distribution, not the ids.
            "per_worker_batches": sorted(
                stats["per_worker"].values(), reverse=True
            ),
            "engine_runs": len(specs),
            "cache_hits": stats["cache_hits"],
            "wall_seconds": round(batched_seconds, 3),
        },
    )
