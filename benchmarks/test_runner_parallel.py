"""Perf smoke test: serial vs pooled execution of a replicated sweep.

Times a 10-replication figure-1-style sweep (SRPTMS+C at one epsilon on the
scaled synthetic Google trace) executed by :class:`ExperimentRunner` with
``workers=1`` and with a 4-worker pool, checks the two are bit-identical,
and writes the wall-clock numbers to ``benchmarks/results/BENCH_runner.json``.

The >= 2x speedup assertion only applies when the machine actually has at
least four usable CPUs; on smaller boxes the numbers are still recorded so
regressions remain visible in the committed report.
"""

from __future__ import annotations

import time

from repro.core.srptms_c import SRPTMSCScheduler
from repro.experiments import ExperimentConfig
from repro.simulation import ExperimentRunner, RunSpec, SchedulerSpec, default_workers

from .conftest import save_report_json

#: Replication seeds of the timed sweep (the paper's ten-repetition protocol).
SEEDS = tuple(range(10))
POOL_WORKERS = 4


def _sweep_specs() -> list:
    config = ExperimentConfig(scale=0.01, seeds=SEEDS)
    base = RunSpec(
        trace=config.trace_source(),
        scheduler=SchedulerSpec(
            SRPTMSCScheduler, {"epsilon": config.epsilon, "r": 0.0}
        ),
        num_machines=config.machines,
    )
    return [base.with_seed(seed) for seed in SEEDS]


def _timed_run(workers: int, specs: list):
    runner = ExperimentRunner(workers=workers)
    started = time.perf_counter()
    results = runner.run(specs)
    return time.perf_counter() - started, results


def test_runner_parallel_speedup():
    specs = _sweep_specs()
    serial_seconds, serial_results = _timed_run(1, specs)
    parallel_seconds, parallel_results = _timed_run(POOL_WORKERS, specs)

    # Correctness first: the pool must reproduce the serial results bit for bit.
    assert [r.fingerprint() for r in serial_results] == [
        r.fingerprint() for r in parallel_results
    ]

    cpus = default_workers()
    if cpus >= POOL_WORKERS and parallel_seconds > serial_seconds / 2.0:
        # A transient spike on a shared/busy machine can ruin one pooled
        # timing; re-time once and keep the better measurement before
        # judging the speedup.
        retry_seconds, _ = _timed_run(POOL_WORKERS, specs)
        parallel_seconds = min(parallel_seconds, retry_seconds)

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    save_report_json(
        "BENCH_runner",
        {
            "sweep": "figure1-style, SRPTMS+C epsilon=0.6 r=0, scale=0.01",
            "replications": len(SEEDS),
            "pool_workers": POOL_WORKERS,
            "usable_cpus": cpus,
            "serial_seconds": round(serial_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "speedup": round(speedup, 3),
        },
    )

    if cpus >= POOL_WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {POOL_WORKERS} workers on {cpus} CPUs, "
            f"got {speedup:.2f}x ({serial_seconds:.2f}s serial vs "
            f"{parallel_seconds:.2f}s parallel)"
        )
