"""Benchmark: Figure 5 -- big-job flowtime CDF for SRPTMS+C / SCA / Mantri."""

from __future__ import annotations

import pytest

from repro.experiments import run_figure5

from .conftest import COMPARISON_CONFIG, save_report


@pytest.mark.benchmark(group="figure5")
def test_figure5_big_job_cdf(benchmark, comparison_results):
    result = benchmark.pedantic(
        run_figure5,
        args=(COMPARISON_CONFIG,),
        kwargs={"results": comparison_results},
        rounds=1,
        iterations=1,
    )
    save_report("figure5", result.render())

    # Shape check (paper: SRPTMS+C completes at least as large a fraction of
    # jobs within 1000 s as Mantri does).
    srptms = result.fraction_within("SRPTMS+C", 1000.0)
    mantri = result.fraction_within("Mantri", 1000.0)
    assert srptms >= mantri - 0.02
