"""Benchmark: scenario sweep -- SCA's advantage under heterogeneity/failures.

Runs the heterogeneity and failure axes of
:func:`repro.experiments.run_scenario_sweep` at a reduced scale and records
the rendered report.  The assertion is directional, not numeric: cloning
(SCA) must not fall behind the best detection/fairness baseline by more
than a small margin once machines misbehave -- the regime the scenario
subsystem exists to study.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_scenario_sweep

from .conftest import save_report

#: Smaller than the figure benchmarks: 2 points per axis, 4 schedulers each.
SWEEP_SCALE_CONFIG = ExperimentConfig(scale=0.01, seeds=(0,), workers=None)
SPEED_SPREADS = (0.0, 0.5)
FAILURE_RATES = (0.0, 1e-4)


@pytest.mark.benchmark(group="scenario-sweep")
def test_scenario_sweep_smoke(benchmark):
    result = benchmark.pedantic(
        run_scenario_sweep,
        args=(SWEEP_SCALE_CONFIG,),
        kwargs={"speed_spreads": SPEED_SPREADS, "failure_rates": FAILURE_RATES},
        rounds=1,
        iterations=1,
    )
    save_report("scenario_sweep", result.render())

    assert result.speed_spreads == SPEED_SPREADS
    assert result.failure_rates == FAILURE_RATES
    for flowtimes in result.hetero_flowtimes.values():
        assert all(value > 0 for value in flowtimes)
    for flowtimes in result.failure_flowtimes.values():
        assert all(value > 0 for value in flowtimes)
