"""Benchmark: Figure 1 -- flowtime vs epsilon for SRPTMS+C (r = 0)."""

from __future__ import annotations

import pytest

from repro.experiments import run_figure1

from .conftest import SWEEP_CONFIG, save_report

EPSILONS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.mark.benchmark(group="figure1")
def test_figure1_epsilon_sweep(benchmark):
    result = benchmark.pedantic(
        run_figure1, args=(SWEEP_CONFIG, EPSILONS), rounds=1, iterations=1
    )
    save_report("figure1", result.render())

    # Shape check (paper: interior minimum near 0.6): a mid-range epsilon
    # should beat the pure-SRPT extreme on the unweighted average, and no
    # value should be wildly off the best.
    best = min(result.mean_flowtimes)
    mid_best = min(
        value for eps, value in zip(result.epsilons, result.mean_flowtimes)
        if 0.3 <= eps <= 0.9
    )
    assert mid_best <= result.mean_flowtimes[0] * 1.02
    assert max(result.mean_flowtimes) <= 2.0 * best
