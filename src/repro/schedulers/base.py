"""Legacy shared machinery of the baseline schedulers.

Both building blocks that used to live here are now part of the policy
kernel (:mod:`repro.policies`):

* the "launch one copy per task, walk the jobs in some order" skeleton is
  :class:`~repro.policies.allocation.GreedyAllocation` (the kernel's
  greedy allocation), and the map/reduce launch gating it relies on is the
  shared :mod:`repro.policies.gating` module;
* :class:`~repro.policies.speculation.SpeculationEstimator` moved beside
  the redundancy policies that consume it (re-exported here so historical
  imports keep working).

:class:`SingleCopyScheduler` survives as the legacy extension point for
code that subclasses it with a custom ``job_order`` (or a filtered
``launchable_tasks``); its walk honours the instance methods, which by
default delegate to the shared gating helpers.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import List, Sequence

from repro.policies.gating import has_launchable_tasks, launchable_tasks
from repro.policies.speculation import SpeculationEstimator
from repro.simulation.scheduler_api import LaunchRequest, Scheduler, SchedulerView
from repro.workload.job import Job, Task

__all__ = ["SingleCopyScheduler", "SpeculationEstimator"]


class SingleCopyScheduler(Scheduler):
    """Walks jobs in a policy-defined order, launching one copy per task.

    Reduce tasks are only launched after the owning job's map phase has
    completed, so machines are never parked on blocked reduce copies (this
    matches how Hadoop's built-in schedulers behave).  This is the same
    static walk :class:`~repro.policies.allocation.GreedyAllocation`
    performs for static orderings, kept as an overridable instance-method
    surface (``job_order`` / ``has_launchable_tasks`` /
    ``launchable_tasks``) for legacy subclasses.
    """

    name = "single-copy"

    @abstractmethod
    def job_order(self, view: SchedulerView) -> Sequence[Job]:
        """Alive jobs in the order machines should be offered to them."""

    @staticmethod
    def has_launchable_tasks(job: Job) -> bool:
        """O(1) counter-based test for :meth:`launchable_tasks` being non-empty."""
        return has_launchable_tasks(job)

    def launchable_tasks(self, job: Job) -> List[Task]:
        """Unscheduled tasks of ``job`` that can run right now."""
        return launchable_tasks(job)

    def schedule(self, view: SchedulerView) -> List[LaunchRequest]:
        """Return the copies to launch at this decision point (see base class)."""
        free = view.num_free_machines
        if free <= 0:
            return []
        requests: List[LaunchRequest] = []
        for job in self.job_order(view):
            if free <= 0:
                break
            if not self.has_launchable_tasks(job):
                continue
            for task in self.launchable_tasks(job):
                if free <= 0:
                    break
                requests.append(LaunchRequest(task=task, num_copies=1))
                free -= 1
        return requests
