"""Plain weighted-SRPT scheduler (no machine sharing, no cloning).

Jobs are served strictly in decreasing order of the online SRPT priority
``w_i / U_i(l)``; the highest-priority job takes as many free machines as it
has launchable tasks before the next job gets any.  This is the
``epsilon -> 0`` limit of SRPTMS+C with cloning disabled, and serves as the
"prioritisation only, no straggler mitigation" ablation point.

Since the policy-kernel refactor this class is a thin alias for the
``srpt+greedy+none`` composition (see :mod:`repro.policies`); it produces
bit-identical results to the historical implementation.
"""

from __future__ import annotations

from repro.simulation.scheduler_api import ComposedScheduler

__all__ = ["SRPTScheduler"]


class SRPTScheduler(ComposedScheduler):
    """Greedy weighted-SRPT ordering of jobs (``srpt+greedy+none``)."""

    def __init__(self, r: float = 0.0) -> None:
        super().__init__("srpt", "greedy", "none", r=r, name="SRPT")

    @property
    def r(self) -> float:
        """The effective-workload std weight (held by the srpt ordering)."""
        return self.ordering.r
