"""Plain weighted-SRPT scheduler (no machine sharing, no cloning).

Jobs are served strictly in decreasing order of the online SRPT priority
``w_i / U_i(l)``; the highest-priority job takes as many free machines as it
has launchable tasks before the next job gets any.  This is the
``epsilon -> 0`` limit of SRPTMS+C with cloning disabled, and serves as the
"prioritisation only, no straggler mitigation" ablation point.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.priority import online_priority
from repro.schedulers.base import SingleCopyScheduler
from repro.simulation.scheduler_api import SchedulerView
from repro.workload.job import Job

__all__ = ["SRPTScheduler"]


class SRPTScheduler(SingleCopyScheduler):
    """Greedy weighted-SRPT ordering of jobs, one copy per task."""

    name = "SRPT"

    def __init__(self, r: float = 0.0) -> None:
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        self.r = r

    def job_order(self, view: SchedulerView) -> Sequence[Job]:
        """Alive jobs in this policy's service order (see base class)."""
        return sorted(
            view.alive_jobs,
            key=lambda job: (-online_priority(job, self.r), job.job_id),
        )
