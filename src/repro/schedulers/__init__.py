"""Baseline scheduling policies the paper compares against (Section VI-A).

* :class:`~repro.schedulers.mantri.MantriScheduler` -- Microsoft Mantri's
  straggler-detection based speculative execution [4].
* :class:`~repro.schedulers.sca.SCAScheduler` -- the Smart Cloning Algorithm
  of the authors' earlier work [26].
* :class:`~repro.schedulers.fifo.FIFOScheduler`,
  :class:`~repro.schedulers.fair.FairScheduler`,
  :class:`~repro.schedulers.srpt.SRPTScheduler`,
  :class:`~repro.schedulers.late.LATEScheduler` -- additional reference
  policies (Hadoop defaults and the LATE speculative scheduler) used by the
  examples and ablation benchmarks.

Since the policy-kernel refactor every class here is a thin alias for a
named ordering+allocation+redundancy composition
(:data:`repro.policies.NAMED_COMPOSITIONS`) run by
:class:`~repro.simulation.scheduler_api.ComposedScheduler`; results are
bit-identical to the historical monolithic implementations.
"""

from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.late import LATEScheduler
from repro.schedulers.mantri import MantriScheduler
from repro.schedulers.sca import SCAScheduler
from repro.schedulers.srpt import SRPTScheduler

__all__ = [
    "FIFOScheduler",
    "FairScheduler",
    "SRPTScheduler",
    "MantriScheduler",
    "SCAScheduler",
    "LATEScheduler",
]
