"""Smart Cloning Algorithm (SCA) baseline, after [26].

The authors' earlier paper proposes, at the beginning of every time slot, to
solve a convex program that chooses the number of clones for each task of
the arriving jobs so as to minimise the total expected weighted flowtime,
then to launch all chosen copies on available machines.  The reproduction
implements the standard greedy/water-filling counterpart of that program:
fair-share single copies first, then leftover machines spent one at a time
on the clone with the largest marginal gain (see
:class:`~repro.policies.redundancy.SCACloning` for the rule and
DESIGN.md "Substitutions" for why the greedy preserves the relevant
behaviour of the original convex program).

Since the policy-kernel refactor this class is a thin alias for the
``fair+greedy+sca`` composition (see :mod:`repro.policies`); it produces
bit-identical results to the historical implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.speedup import SpeedupFunction
from repro.policies.redundancy import SCACloning
from repro.simulation.scheduler_api import ComposedScheduler

__all__ = ["SCAScheduler"]


class SCAScheduler(ComposedScheduler):
    """Fair-share base copies plus greedy marginal-gain cloning (``fair+greedy+sca``)."""

    def __init__(
        self,
        speedup: Optional[SpeedupFunction] = None,
        *,
        max_copies_per_task: int = 8,
    ) -> None:
        cloning = SCACloning(speedup, max_copies_per_task=max_copies_per_task)
        super().__init__("fair", "greedy", cloning, name="SCA")

    @property
    def speedup(self) -> SpeedupFunction:
        """The speedup function pricing each marginal clone."""
        return self.redundancy.speedup

    @property
    def max_copies_per_task(self) -> int:
        """Cap on simultaneous copies of one task."""
        return self.redundancy.max_copies_per_task
