"""Smart Cloning Algorithm (SCA) baseline, after [26].

The authors' earlier paper proposes, at the beginning of every time slot, to
solve a convex program that chooses the number of clones for each task of
the arriving jobs so as to minimise the total expected weighted flowtime,
then to launch all chosen copies on available machines.

The exact convex program is not reproducible verbatim (the paper under
reproduction only summarises it), but its structure is: with concave speedup
functions the optimum equalises the *marginal* reduction in expected
weighted phase-completion time per extra machine across tasks.  The
reproduction therefore implements the standard greedy/water-filling
counterpart of that program:

1. every launchable task (map before reduce, honouring the precedence
   constraint) first receives a single copy; machines are offered to jobs by
   weight-proportional fair sharing, as in Hadoop -- SCA does not apply SRPT
   ordering across jobs, which is the key behavioural difference from
   SRPTMS+C;
2. remaining free machines are then handed out one at a time to the task
   whose additional clone yields the largest marginal gain

       gain = w_i * (E / s(x) - E / s(x + 1)) / (#unfinished tasks in phase)

   where ``x`` is the task's current planned copy count.  Dividing by the
   number of unfinished tasks in the phase captures that a phase only
   completes when *all* its tasks do, so cloning one of many pending tasks
   is worth little -- this is what makes SCA clone *small* jobs
   aggressively, the behaviour [26] reports.

See DESIGN.md ("Substitutions") for why this greedy preserves the relevant
behaviour of the original convex program.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional

from repro.core.speedup import ParetoSpeedup, SpeedupFunction
from repro.schedulers.fair import FairScheduler
from repro.simulation.scheduler_api import LaunchRequest, SchedulerView
from repro.workload.job import Job, Phase, Task

__all__ = ["SCAScheduler"]


class SCAScheduler(FairScheduler):
    """Fair-share base copies plus greedy marginal-gain cloning (the SCA baseline)."""

    name = "SCA"

    def __init__(
        self,
        speedup: Optional[SpeedupFunction] = None,
        *,
        max_copies_per_task: int = 8,
    ) -> None:
        if max_copies_per_task < 1:
            raise ValueError(
                f"max_copies_per_task must be >= 1, got {max_copies_per_task}"
            )
        self.speedup = speedup if speedup is not None else ParetoSpeedup(alpha=2.0)
        self.max_copies_per_task = max_copies_per_task

    # -- clone allocation -------------------------------------------------------------

    def _phase_pending_count(self, job: Job, phase: Phase) -> int:
        """Unfinished task count of one phase, used to scale marginal gains."""
        return job.num_incomplete_tasks(phase)

    def _marginal_gain(self, task: Task, copies: int, pending_in_phase: int) -> float:
        """Weighted reduction in expected phase time from one more clone."""
        mean = task.duration_distribution.mean
        gain = self.speedup.marginal_gain(mean, copies)
        return task.job.weight * gain / max(1, pending_in_phase)

    def _allocate_clones(
        self,
        planned_copies: Dict[str, int],
        tasks_by_id: Dict[str, Task],
        free: int,
    ) -> Dict[str, int]:
        """Distribute ``free`` machines as clones by greedy marginal gain."""
        extra: Dict[str, int] = {}
        if free <= 0 or not planned_copies:
            return extra
        counter = itertools.count()
        heap: List[tuple] = []
        pending_cache: Dict[tuple, int] = {}
        for task_id, copies in planned_copies.items():
            task = tasks_by_id[task_id]
            key = (task.job.job_id, task.phase)
            if key not in pending_cache:
                pending_cache[key] = self._phase_pending_count(task.job, task.phase)
            gain = self._marginal_gain(task, copies, pending_cache[key])
            heapq.heappush(heap, (-gain, next(counter), task_id))

        while free > 0 and heap:
            negative_gain, _, task_id = heapq.heappop(heap)
            if -negative_gain <= 0:
                break
            task = tasks_by_id[task_id]
            current = planned_copies[task_id] + extra.get(task_id, 0)
            if current >= self.max_copies_per_task:
                continue
            extra[task_id] = extra.get(task_id, 0) + 1
            free -= 1
            new_count = current + 1
            if new_count < self.max_copies_per_task:
                key = (task.job.job_id, task.phase)
                gain = self._marginal_gain(task, new_count, pending_cache[key])
                heapq.heappush(heap, (-gain, next(counter), task_id))
        return extra

    # -- decision --------------------------------------------------------------------------

    def schedule(self, view: SchedulerView) -> List[LaunchRequest]:
        """Return the copies to launch at this decision point (see base class)."""
        free = view.num_free_machines
        if free <= 0:
            return []
        # Step 1: fair-share single copies for every launchable task.
        base_requests = super().schedule(view)
        planned: Dict[str, int] = {}
        tasks_by_id: Dict[str, Task] = {}
        used = 0
        for request in base_requests:
            planned[request.task.task_id] = request.num_copies
            tasks_by_id[request.task.task_id] = request.task
            used += request.num_copies
        # Step 2: spend leftover machines on clones by marginal gain.
        extra = self._allocate_clones(planned, tasks_by_id, free - used)
        requests: List[LaunchRequest] = []
        for task_id, copies in planned.items():
            total = copies + extra.get(task_id, 0)
            requests.append(
                LaunchRequest(task=tasks_by_id[task_id], num_copies=total)
            )
        return requests
