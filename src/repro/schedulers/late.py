"""LATE (Longest Approximate Time to End) speculative execution [28].

LATE is the classic Hadoop-era improvement over naive speculation and is
included as an extra detection-based reference point beyond Mantri.  The
underlying job scheduler is, as in Hadoop, the fair scheduler; the
speculation rule itself lives in
:class:`~repro.policies.redundancy.LATESpeculation`.

Since the policy-kernel refactor this class is a thin alias for the
``fair+greedy+late`` composition (see :mod:`repro.policies`); it produces
bit-identical results to the historical implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.policies.redundancy import LATESpeculation
from repro.policies.speculation import SpeculationEstimator
from repro.simulation.scheduler_api import ComposedScheduler

__all__ = ["LATEScheduler"]


class LATEScheduler(ComposedScheduler):
    """Fair sharing plus the LATE speculative-execution heuristic (``fair+greedy+late``)."""

    def __init__(
        self,
        *,
        slow_task_percentile: float = 25.0,
        speculative_cap: float = 0.1,
        tick_interval: Optional[float] = 5.0,
        min_progress: float = 0.05,
        min_elapsed: float = 1.0,
    ) -> None:
        speculation = LATESpeculation(
            slow_task_percentile=slow_task_percentile,
            speculative_cap=speculative_cap,
            tick_interval=tick_interval,
            min_progress=min_progress,
            min_elapsed=min_elapsed,
        )
        super().__init__("fair", "greedy", speculation, name="LATE")

    @property
    def slow_task_percentile(self) -> float:
        """Progress-rate percentile below which attempts are speculated on."""
        return self.redundancy.slow_task_percentile

    @property
    def speculative_cap(self) -> float:
        """Cluster fraction the speculation budget is capped at."""
        return self.redundancy.speculative_cap

    @property
    def estimator(self) -> SpeculationEstimator:
        """The progress-based time-left estimator feeding the rule."""
        return self.redundancy.estimator

    @property
    def speculative_copies_launched(self) -> int:
        """Speculative duplicates launched so far (exposed for tests/benches).

        The same quantity is available on every scheduler's result as
        ``SimulationResult.redundant_copies_launched``.
        """
        return self.redundancy.copies_launched
