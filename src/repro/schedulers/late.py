"""LATE (Longest Approximate Time to End) speculative execution [28].

LATE is the classic Hadoop-era improvement over naive speculation and is
included as an extra detection-based reference point beyond Mantri:

* estimate each running attempt's time-to-end by progress-rate
  extrapolation;
* speculate only on attempts whose *progress rate* falls below the
  ``slow_task_percentile`` of currently running attempts;
* among those, duplicate the attempts with the *longest* estimated time to
  end first;
* never exceed ``speculative_cap`` (a fraction of the cluster) concurrent
  speculative copies, and at most one duplicate per task.

The underlying job scheduler is, as in Hadoop, the fair scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.schedulers.base import SpeculationEstimator
from repro.schedulers.fair import FairScheduler
from repro.simulation.scheduler_api import LaunchRequest, SchedulerView

__all__ = ["LATEScheduler"]


class LATEScheduler(FairScheduler):
    """Fair sharing plus the LATE speculative-execution heuristic."""

    name = "LATE"

    def __init__(
        self,
        *,
        slow_task_percentile: float = 25.0,
        speculative_cap: float = 0.1,
        tick_interval: Optional[float] = 5.0,
        min_progress: float = 0.05,
        min_elapsed: float = 1.0,
    ) -> None:
        if not 0.0 < slow_task_percentile < 100.0:
            raise ValueError(
                f"slow_task_percentile must be in (0, 100), got {slow_task_percentile}"
            )
        if not 0.0 < speculative_cap <= 1.0:
            raise ValueError(
                f"speculative_cap must be in (0, 1], got {speculative_cap}"
            )
        self.slow_task_percentile = slow_task_percentile
        self.speculative_cap = speculative_cap
        self.tick_interval = tick_interval
        self.estimator = SpeculationEstimator(
            min_progress=min_progress, min_elapsed=min_elapsed, min_samples=1
        )
        self.speculative_copies_launched = 0

    def on_task_completion(self, task, time: float) -> None:
        """Feed the finished task's duration into the time-left estimator."""
        self.estimator.record_completion(task, time)

    def _progress_rates(self, view: SchedulerView) -> Dict[int, float]:
        """Progress per unit time of every estimable running copy."""
        rates: Dict[int, float] = {}
        for copy in view.running_copies():
            elapsed = view.copy_elapsed(copy)
            if elapsed < self.estimator.min_elapsed:
                continue
            rates[id(copy)] = view.copy_progress(copy) / elapsed
        return rates

    def _speculate(self, view: SchedulerView, free: int) -> List[LaunchRequest]:
        if free <= 0:
            return []
        cap = int(self.speculative_cap * view.num_machines)
        budget = min(free, cap)
        if budget <= 0:
            return []
        rates = self._progress_rates(view)
        if not rates:
            return []
        threshold = float(
            np.percentile(list(rates.values()), self.slow_task_percentile)
        )
        candidates: List[tuple] = []
        for copy in view.running_copies():
            key = id(copy)
            if key not in rates or rates[key] > threshold:
                continue
            task = copy.task
            if task.num_active_copies >= 2:
                continue
            time_left = self.estimator.remaining_time(view, copy)
            if time_left is None:
                continue
            candidates.append((-time_left, copy))
        candidates.sort(key=lambda item: item[0])

        requests: List[LaunchRequest] = []
        duplicated = set()
        for _, copy in candidates:
            if budget <= 0:
                break
            task = copy.task
            if id(task) in duplicated:
                continue
            requests.append(LaunchRequest(task=task, num_copies=1))
            duplicated.add(id(task))
            self.speculative_copies_launched += 1
            budget -= 1
        return requests

    def schedule(self, view: SchedulerView) -> List[LaunchRequest]:
        """Return the copies to launch at this decision point (see base class)."""
        requests = list(super().schedule(view))
        used = sum(request.num_copies for request in requests)
        free = view.num_free_machines - used
        requests.extend(self._speculate(view, free))
        return requests
