"""Hadoop Fair Scheduler baseline (weight-proportional machine sharing).

Every alive job is entitled to a share of the cluster proportional to its
weight; free machines are handed out one at a time, each to the job whose
ratio of occupied machines to weight is currently smallest among jobs that
still have launchable tasks (water-filling).  No speculation and no cloning
are performed.

The paper observes that SRPTMS+C with ``epsilon = 1`` degenerates to this
fair scheduler, which the integration tests verify (up to the cloning of
leftover machines).

Since the policy-kernel refactor this class is a thin alias for the
``fair+greedy+none`` composition (see :mod:`repro.policies`); the
water-filling loop lives in
:class:`~repro.policies.allocation.GreedyAllocation` (dynamic-ordering
path) and produces bit-identical results to the historical implementation.
"""

from __future__ import annotations

from repro.simulation.scheduler_api import ComposedScheduler

__all__ = ["FairScheduler"]


class FairScheduler(ComposedScheduler):
    """Weight-proportional fair sharing (``fair+greedy+none``)."""

    def __init__(self) -> None:
        super().__init__("fair", "greedy", "none", name="Fair")
