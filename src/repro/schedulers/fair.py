"""Hadoop Fair Scheduler baseline (weight-proportional machine sharing).

Every alive job is entitled to a share of the cluster proportional to its
weight.  The implementation is a water-filling loop: free machines are
handed out one at a time, each to the job whose ratio of occupied machines
to weight is currently smallest among jobs that still have launchable
tasks.  No speculation and no cloning are performed.

The paper observes that SRPTMS+C with ``epsilon = 1`` degenerates to this
fair scheduler, which the integration tests verify (up to the cloning of
leftover machines).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List

from repro.schedulers.base import SingleCopyScheduler
from repro.simulation.scheduler_api import LaunchRequest, SchedulerView
from repro.workload.job import Job

__all__ = ["FairScheduler"]


class FairScheduler(SingleCopyScheduler):
    """Weight-proportional fair sharing across alive jobs."""

    name = "Fair"

    def job_order(self, view: SchedulerView) -> List[Job]:
        """Jobs ordered by increasing occupied-machines-per-weight ratio."""
        return sorted(
            view.alive_jobs,
            key=lambda job: (job.num_running_copies / job.weight, job.job_id),
        )

    def schedule(self, view: SchedulerView) -> List[LaunchRequest]:
        """Return the copies to launch at this decision point (see base class)."""
        free = view.num_free_machines
        if free <= 0:
            return []
        # Water-filling: repeatedly give one machine to the most underserved
        # job that still has a launchable task.
        candidates: Dict[int, List] = {}
        jobs: Dict[int, Job] = {}
        for job in view.alive_jobs:
            if not self.has_launchable_tasks(job):
                continue
            candidates[job.job_id] = self.launchable_tasks(job)
            jobs[job.job_id] = job
        if not candidates:
            return []

        counter = itertools.count()
        heap = []
        occupied: Dict[int, int] = {}
        for job_id, job in jobs.items():
            occupied[job_id] = job.num_running_copies
            heapq.heappush(
                heap, (occupied[job_id] / job.weight, next(counter), job_id)
            )

        requests: List[LaunchRequest] = []
        while free > 0 and heap:
            _, _, job_id = heapq.heappop(heap)
            tasks = candidates[job_id]
            if not tasks:
                continue
            task = tasks.pop(0)
            requests.append(LaunchRequest(task=task, num_copies=1))
            free -= 1
            occupied[job_id] += 1
            if tasks:
                heapq.heappush(
                    heap,
                    (occupied[job_id] / jobs[job_id].weight, next(counter), job_id),
                )
        return requests
