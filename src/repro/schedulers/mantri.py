"""Microsoft Mantri speculative-execution baseline [4].

Mantri is the strongest straggler-*detection* based scheme the paper
compares against (Section VI-A).  The cluster scheduler itself is a
weight-proportional fair scheduler (Mantri is an outlier-mitigation layer,
not a job scheduler); the published duplicate-launch rule --
``P(t_rem > 2 * t_new) > delta`` evaluated against empirical duration
samples -- lives in :class:`~repro.policies.redundancy.MantriSpeculation`.
A periodic tick wakes the scheduler so that speculation can trigger even
when no arrival/completion event occurs, reflecting Mantri's continuous
progress monitoring.

Since the policy-kernel refactor this class is a thin alias for the
``fair+greedy+mantri`` composition (see :mod:`repro.policies`); it
produces bit-identical results to the historical implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.policies.redundancy import MantriSpeculation
from repro.policies.speculation import SpeculationEstimator
from repro.simulation.scheduler_api import ComposedScheduler

__all__ = ["MantriScheduler"]


class MantriScheduler(ComposedScheduler):
    """Fair sharing plus Mantri's duplicate-launch rule (``fair+greedy+mantri``)."""

    def __init__(
        self,
        delta: float = 0.25,
        *,
        max_copies_per_task: int = 2,
        tick_interval: Optional[float] = 5.0,
        min_progress: float = 0.05,
        min_elapsed: float = 1.0,
        min_samples: int = 3,
    ) -> None:
        speculation = MantriSpeculation(
            delta=delta,
            max_copies_per_task=max_copies_per_task,
            tick_interval=tick_interval,
            min_progress=min_progress,
            min_elapsed=min_elapsed,
            min_samples=min_samples,
        )
        super().__init__("fair", "greedy", speculation, name="Mantri")

    @property
    def delta(self) -> float:
        """The straggler-probability threshold of Mantri's inequality."""
        return self.redundancy.delta

    @property
    def max_copies_per_task(self) -> int:
        """Cap on simultaneous attempts per task."""
        return self.redundancy.max_copies_per_task

    @property
    def estimator(self) -> SpeculationEstimator:
        """The progress-based t_rem/t_new estimator feeding the rule."""
        return self.redundancy.estimator

    @property
    def speculative_copies_launched(self) -> int:
        """Speculative duplicates launched so far (exposed for tests/benches).

        The same quantity is available on every scheduler's result as
        ``SimulationResult.redundant_copies_launched``.
        """
        return self.redundancy.copies_launched
