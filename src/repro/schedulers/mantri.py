"""Microsoft Mantri speculative-execution baseline [4].

Mantri is the strongest straggler-*detection* based scheme the paper
compares against (Section VI-A).  The reproduction follows the published
decision rule:

* the cluster scheduler itself is a weight-proportional fair scheduler
  (Mantri is an outlier-mitigation layer, not a job scheduler);
* for every running attempt Mantri tracks a progress score and estimates the
  remaining time ``t_rem`` by progress-rate extrapolation, and the duration
  ``t_new`` of a restarted copy from the empirical durations of finished
  copies of the same job phase;
* whenever a machine becomes available, a duplicate of a running task is
  launched if ``P(t_rem > 2 * t_new) > delta`` -- the paper's inequality --
  where the probability is evaluated against the empirical duration samples;
* at most ``max_copies_per_task`` simultaneous attempts per task (Mantri's
  "schedule a duplicate only if total resource consumption decreases" rule
  caps this at two in practice).

Pending (never-yet-launched) tasks always take priority over speculative
duplicates, matching the production system.  A periodic tick wakes the
scheduler so that speculation can trigger even when no arrival/completion
event occurs, reflecting Mantri's continuous progress monitoring.
"""

from __future__ import annotations

from typing import List, Optional

from repro.schedulers.base import SpeculationEstimator
from repro.schedulers.fair import FairScheduler
from repro.simulation.scheduler_api import LaunchRequest, SchedulerView
from repro.workload.job import TaskCopy

__all__ = ["MantriScheduler"]


class MantriScheduler(FairScheduler):
    """Fair sharing plus Mantri's duplicate-launch rule."""

    name = "Mantri"

    def __init__(
        self,
        delta: float = 0.25,
        *,
        max_copies_per_task: int = 2,
        tick_interval: Optional[float] = 5.0,
        min_progress: float = 0.05,
        min_elapsed: float = 1.0,
        min_samples: int = 3,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        if max_copies_per_task < 2:
            raise ValueError(
                f"max_copies_per_task must be at least 2, got {max_copies_per_task}"
            )
        self.delta = delta
        self.max_copies_per_task = max_copies_per_task
        self.tick_interval = tick_interval
        self.estimator = SpeculationEstimator(
            min_progress=min_progress,
            min_elapsed=min_elapsed,
            min_samples=min_samples,
        )
        #: Number of speculative duplicates launched (exposed for tests/benches).
        self.speculative_copies_launched = 0

    # -- notifications ----------------------------------------------------------------

    def on_task_completion(self, task, time: float) -> None:
        """Feed the finished task's duration into the t_new estimator."""
        self.estimator.record_completion(task, time)

    # -- speculation ------------------------------------------------------------------

    def _speculation_candidates(self, view: SchedulerView) -> List[TaskCopy]:
        """Running copies eligible for a duplicate, worst straggler first."""
        scored: List[tuple] = []
        for copy in view.running_copies():
            task = copy.task
            if task.num_active_copies >= self.max_copies_per_task:
                continue
            probability = self.estimator.straggler_probability(view, copy)
            if probability is None or probability <= self.delta:
                continue
            t_rem = self.estimator.remaining_time(view, copy)
            scored.append((-(t_rem or 0.0), copy))
        scored.sort(key=lambda item: item[0])
        return [copy for _, copy in scored]

    def _speculate(self, view: SchedulerView, free: int) -> List[LaunchRequest]:
        """Spend up to ``free`` machines on duplicates of detected stragglers."""
        if free <= 0:
            return []
        requests: List[LaunchRequest] = []
        duplicated = set()
        for copy in self._speculation_candidates(view):
            if free <= 0:
                break
            task = copy.task
            if id(task) in duplicated:
                continue
            requests.append(LaunchRequest(task=task, num_copies=1))
            duplicated.add(id(task))
            self.speculative_copies_launched += 1
            free -= 1
        return requests

    # -- decision ----------------------------------------------------------------------

    def schedule(self, view: SchedulerView) -> List[LaunchRequest]:
        """Return the copies to launch at this decision point (see base class)."""
        requests = list(super().schedule(view))
        used = sum(request.num_copies for request in requests)
        free = view.num_free_machines - used
        requests.extend(self._speculate(view, free))
        return requests
