"""FIFO job scheduler -- Hadoop's original default (no speculation, no cloning).

Machines are offered to jobs strictly in arrival order.  This is the
simplest possible reference point: small jobs arriving behind a large job
wait for it, which is exactly the head-of-line blocking that motivates SRPT
ordering in the paper.

Since the policy-kernel refactor this class is a thin alias for the
``fifo+greedy+none`` composition (see :mod:`repro.policies`); it produces
bit-identical results to the historical implementation.
"""

from __future__ import annotations

from repro.simulation.scheduler_api import ComposedScheduler

__all__ = ["FIFOScheduler"]


class FIFOScheduler(ComposedScheduler):
    """Serve jobs in order of arrival time (``fifo+greedy+none``)."""

    def __init__(self) -> None:
        super().__init__("fifo", "greedy", "none", name="FIFO")
