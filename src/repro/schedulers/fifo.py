"""FIFO job scheduler -- Hadoop's original default (no speculation, no cloning).

Machines are offered to jobs strictly in arrival order.  This is the
simplest possible reference point: small jobs arriving behind a large job
wait for it, which is exactly the head-of-line blocking that motivates SRPT
ordering in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.schedulers.base import SingleCopyScheduler
from repro.simulation.scheduler_api import SchedulerView
from repro.workload.job import Job

__all__ = ["FIFOScheduler"]


class FIFOScheduler(SingleCopyScheduler):
    """Serve jobs in order of arrival time (ties broken by job id)."""

    name = "FIFO"

    def job_order(self, view: SchedulerView) -> Sequence[Job]:
        """Alive jobs in arrival order.

        The engine maintains the alive set in arrival-event order, which is
        exactly ``(arrival_time, job_id)``: traces are sorted on that key
        and simultaneous arrivals are enqueued in trace order.  Returning
        the view's order directly is therefore identical to re-sorting --
        and O(n) instead of O(n log n) at every decision point.
        """
        return view.alive_jobs
