"""FIFO job scheduler -- Hadoop's original default (no speculation, no cloning).

Machines are offered to jobs strictly in arrival order.  This is the
simplest possible reference point: small jobs arriving behind a large job
wait for it, which is exactly the head-of-line blocking that motivates SRPT
ordering in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.schedulers.base import SingleCopyScheduler
from repro.simulation.scheduler_api import SchedulerView
from repro.workload.job import Job

__all__ = ["FIFOScheduler"]


class FIFOScheduler(SingleCopyScheduler):
    """Serve jobs in order of arrival time (ties broken by job id)."""

    name = "FIFO"

    def job_order(self, view: SchedulerView) -> Sequence[Job]:
        return sorted(view.alive_jobs, key=lambda job: (job.arrival_time, job.job_id))
