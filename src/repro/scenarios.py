"""Scenario subsystem: heterogeneous machines, dynamic stragglers, failures.

The paper's bounds (Sections III-V) are derived for a homogeneous cluster of
``M`` unit-speed machines, but the stragglers that cloning mitigates come
from real clusters that are heterogeneous and failure-prone.  A
:class:`ScenarioSpec` describes one such cluster environment in picklable
form so it can ride inside a
:class:`~repro.simulation.experiment_runner.RunSpec` across process
boundaries:

* a **machine-speed distribution** (:class:`UniformSpeeds`,
  :class:`BimodalSpeeds`, :class:`ZipfSpeeds`) sampled once per run to give
  every machine its own static speed;
* a **dynamic straggler process**
  (:class:`~repro.cluster.stragglers.DynamicStragglers`) under which each
  machine independently alternates between normal operation and slow
  periods -- the onset/recovery events change the machine's effective speed
  *while copies are running*, so the engine re-estimates their remaining
  work;
* a **failure/restart process** (:class:`MachineFailures`) that takes
  machines down, killing the resident copy (which the scheduler then
  re-dispatches), and brings them back after a repair time.

Seeding contract
----------------
All scenario randomness is derived from the run seed through *dedicated*
streams that never touch the engine's workload-sampling generator:

* machine speeds come from ``default_rng([_SPEED_STREAM, seed])``;
* each machine's failure/slowdown event times come from
  ``default_rng([_PROCESS_STREAM, seed, machine_id])``;
* per-job input placement (the preferred rack of a job's tasks under a
  :class:`TopologySpec`) comes from ``default_rng([_PLACEMENT_STREAM,
  seed])``, consumed in job-arrival order.

Two consequences: (1) enabling a scenario never perturbs the task workloads
sampled for the equivalent homogeneous run, and (2) every scenario run is a
pure function of its :class:`RunSpec`, so pooled execution is bit-identical
to serial execution (asserted in ``tests/test_scenarios.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cluster.stragglers import DynamicStragglers

__all__ = [
    "DEFAULT_MEAN_REPAIR",
    "DEFAULT_SLOWDOWN_DURATION",
    "DEFAULT_SLOWDOWN_FACTOR",
    "DEFAULT_REMOTE_SLOWDOWN",
    "DEFAULT_LOCALITY_WAIT",
    "SpeedDistribution",
    "UniformSpeeds",
    "BimodalSpeeds",
    "ZipfSpeeds",
    "MachineFailures",
    "TopologySpec",
    "ScenarioSpec",
    "SCENARIO_PRESETS",
    "scenario_preset",
    "speed_rng",
    "machine_process_rng",
    "placement_rng",
]

#: Seed-stream tags keeping scenario randomness off the workload stream.
_SPEED_STREAM = 0x535044  # "SPD"
_PROCESS_STREAM = 0x50524F43  # "PROC"
_PLACEMENT_STREAM = 0x504C43  # "PLC"

#: Defaults shared by the presets, the CLI fallbacks and the scenario
#: sweep's failure axis -- one constant each, no drift.
DEFAULT_MEAN_REPAIR = 300.0
DEFAULT_SLOWDOWN_DURATION = 200.0
DEFAULT_SLOWDOWN_FACTOR = 4.0
DEFAULT_REMOTE_SLOWDOWN = 2.0
#: Default delay-scheduling wait, re-exported so the CLI and the Study
#: layer share one constant with the ``delay`` allocation policy.
DEFAULT_LOCALITY_WAIT = 3.0


def speed_rng(seed: int) -> np.random.Generator:
    """The dedicated generator machine speeds are sampled from."""
    return np.random.default_rng([_SPEED_STREAM, seed])


def machine_process_rng(seed: int, machine_id: int) -> np.random.Generator:
    """The dedicated generator for one machine's failure/slowdown timeline."""
    return np.random.default_rng([_PROCESS_STREAM, seed, machine_id])


def placement_rng(seed: int) -> np.random.Generator:
    """The dedicated generator per-job input placement is drawn from.

    One stream per run, consumed in job-arrival order (one draw per
    arriving job), so placement depends only on ``(seed, arrival index)``
    -- never on the scheduler or on pool sharding -- and pooled execution
    stays bit-identical to serial.
    """
    return np.random.default_rng([_PLACEMENT_STREAM, seed])


# ---------------------------------------------------------------- speed models


class SpeedDistribution(ABC):
    """Distribution the per-machine static speeds are drawn from."""

    @abstractmethod
    def sample(self, num_machines: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one speed per machine (all strictly positive)."""


@dataclass(frozen=True)
class UniformSpeeds(SpeedDistribution):
    """Speeds drawn uniformly from ``[low, high]``.

    The natural one-knob heterogeneity model: centre the interval on 1 and
    widen it to raise speed variance while keeping the mean fixed.
    """

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.low <= 0:
            raise ValueError(f"low must be positive, got {self.low}")
        if self.high < self.low:
            raise ValueError(f"high must be >= low, got [{self.low}, {self.high}]")

    def sample(self, num_machines: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one speed per machine (see base class)."""
        return rng.uniform(self.low, self.high, size=num_machines)


@dataclass(frozen=True)
class BimodalSpeeds(SpeedDistribution):
    """A two-class cluster: a ``slow_fraction`` of machines at ``slow_speed``.

    Models a generation gap (old vs new hardware); which machines are slow
    is drawn per run.
    """

    slow_fraction: float = 0.2
    slow_speed: float = 0.5
    fast_speed: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.slow_fraction <= 1.0:
            raise ValueError(
                f"slow_fraction must be in [0, 1], got {self.slow_fraction}"
            )
        if self.slow_speed <= 0 or self.fast_speed <= 0:
            raise ValueError("speeds must be positive")
        if self.slow_speed > self.fast_speed:
            raise ValueError(
                f"slow_speed {self.slow_speed} exceeds fast_speed {self.fast_speed}"
            )

    def sample(self, num_machines: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one speed per machine (see base class)."""
        slow = rng.random(num_machines) < self.slow_fraction
        return np.where(slow, self.slow_speed, self.fast_speed)


@dataclass(frozen=True)
class ZipfSpeeds(SpeedDistribution):
    """Speed tiers with Zipf-distributed membership.

    Tier ``k`` (``1 <= k <= num_tiers``) has speed ``1 / k`` and is chosen
    with probability proportional to ``k ** -alpha``: most machines land in
    the fast tier, a heavy tail of machines is progressively slower -- the
    long-tailed heterogeneity profile reported for production clusters.
    """

    alpha: float = 1.5
    num_tiers: int = 4

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.num_tiers < 1:
            raise ValueError(f"num_tiers must be >= 1, got {self.num_tiers}")

    def sample(self, num_machines: int, rng: np.random.Generator) -> np.ndarray:
        """Draw one speed per machine (see base class)."""
        tiers = np.arange(1, self.num_tiers + 1, dtype=float)
        weights = tiers**-self.alpha
        probabilities = weights / weights.sum()
        chosen = rng.choice(self.num_tiers, size=num_machines, p=probabilities)
        return 1.0 / (chosen + 1.0)


# ---------------------------------------------------------------- failure model


@dataclass(frozen=True)
class MachineFailures:
    """A per-machine fail/repair renewal process.

    Every machine stays up for an exponential time with rate ``rate``
    (events per simulated second per machine), then goes down -- killing the
    copy it was running, which the scheduler must re-dispatch -- and comes
    back after a repair time with mean ``mean_repair`` (exponential, or
    exactly ``mean_repair`` when ``fixed_repair`` is set -- useful for
    deterministic tests).
    """

    rate: float
    mean_repair: float
    fixed_repair: bool = False

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"failure rate must be positive, got {self.rate}")
        if self.mean_repair <= 0:
            raise ValueError(
                f"mean_repair must be positive, got {self.mean_repair}"
            )

    def draw_uptime(self, rng: np.random.Generator) -> float:
        """Time until the next failure of a machine that just came up."""
        return float(rng.exponential(1.0 / self.rate))

    def draw_repair(self, rng: np.random.Generator) -> float:
        """How long the machine stays down."""
        if self.fixed_repair:
            return self.mean_repair
        return float(rng.exponential(self.mean_repair))


# ---------------------------------------------------------------- topology


@dataclass(frozen=True)
class TopologySpec:
    """A rack topology with remote-read penalties.

    Machines are assigned to racks round-robin (machine ``m`` lives on
    rack ``m % racks``), every arriving job draws one *preferred rack*
    (the rack holding its input splits) from the dedicated
    :func:`placement_rng` stream, and a copy launched off its task's
    preferred rack pays ``remote_slowdown`` on its wall-clock duration
    (its effective processing rate is divided by the factor, composing
    multiplicatively with machine speeds, dynamic stragglers and
    checkpoint resumes).

    The degenerate topology -- one rack, or a unit slowdown factor --
    is behaviourally indistinguishable from no topology at all, and the
    engine treats it identically (bit-identical results, locality
    counters stay zero); ``tests/test_topology.py`` pins this.
    """

    racks: int = 1
    remote_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.racks, int) or isinstance(self.racks, bool):
            raise TypeError(f"racks must be an int, got {self.racks!r}")
        if self.racks < 1:
            raise ValueError(f"racks must be >= 1, got {self.racks}")
        if self.remote_slowdown < 1.0:
            raise ValueError(
                f"remote_slowdown must be >= 1.0, got {self.remote_slowdown}"
            )

    @property
    def is_degenerate(self) -> bool:
        """True when the topology cannot affect any run (single rack or no penalty)."""
        return self.racks == 1 or self.remote_slowdown == 1.0


# ---------------------------------------------------------------- the scenario


@dataclass(frozen=True)
class ScenarioSpec:
    """Picklable description of one cluster environment.

    Attributes
    ----------
    speeds:
        Static per-machine speed distribution; ``None`` keeps the paper's
        homogeneous cluster.
    normalize_mean_speed:
        Rescale the sampled speeds so their empirical mean is exactly 1,
        isolating the *variance* of the speeds from total cluster capacity
        (the scenario sweep uses this so flowtime differences are not just
        capacity differences).
    stragglers:
        Dynamic slowdown process; ``None`` disables it.  Static (per-copy)
        straggler models remain available through
        ``RunSpec.straggler_factory``.
    failures:
        Machine failure/restart process; ``None`` disables it.
    topology:
        Rack topology with remote-read penalties; ``None`` keeps the
        paper's flat (placement-insensitive) cluster.
    """

    speeds: Optional[SpeedDistribution] = None
    normalize_mean_speed: bool = False
    stragglers: Optional[DynamicStragglers] = None
    failures: Optional[MachineFailures] = None
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        if self.topology is not None and not isinstance(self.topology, TopologySpec):
            raise TypeError(
                f"topology must be a TopologySpec, got {self.topology!r}"
            )
        if self.speeds is not None and not isinstance(self.speeds, SpeedDistribution):
            raise TypeError(
                f"speeds must be a SpeedDistribution, got {self.speeds!r}"
            )
        if self.stragglers is not None and not isinstance(
            self.stragglers, DynamicStragglers
        ):
            raise TypeError(
                f"stragglers must be DynamicStragglers, got {self.stragglers!r}"
            )
        if self.failures is not None and not isinstance(
            self.failures, MachineFailures
        ):
            raise TypeError(
                f"failures must be MachineFailures, got {self.failures!r}"
            )

    @property
    def is_dynamic(self) -> bool:
        """True when machine rates can change while copies run."""
        return self.stragglers is not None or self.failures is not None

    @property
    def is_default(self) -> bool:
        """True when the scenario is the paper's homogeneous static cluster."""
        return (
            self.speeds is None and not self.is_dynamic and self.topology is None
        )

    def machine_speeds(self, num_machines: int, seed: int) -> Optional[np.ndarray]:
        """Sample per-machine speeds for one run (``None`` when homogeneous).

        Speeds come from the dedicated :func:`speed_rng` stream, so they
        depend only on ``(seed, speeds spec)`` -- never on the trace or the
        scheduler -- and leave the workload stream untouched.
        """
        if self.speeds is None:
            return None
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        sampled = np.asarray(
            self.speeds.sample(num_machines, speed_rng(seed)), dtype=float
        )
        if sampled.shape != (num_machines,):
            raise ValueError(
                f"speed distribution returned shape {sampled.shape}, "
                f"expected ({num_machines},)"
            )
        if np.any(sampled <= 0):
            raise ValueError("speed distribution produced a non-positive speed")
        if self.normalize_mean_speed:
            sampled = sampled / sampled.mean()
        return sampled


#: Named scenarios the CLI exposes through ``--scenario``.  Process rates are
#: scaled to the synthetic Google trace (tasks average ~640 s): mean machine
#: uptime stays an order of magnitude above the typical task duration, so
#: failures disturb the schedule without making task completion improbable.
SCENARIO_PRESETS: Dict[str, ScenarioSpec] = {
    "homogeneous": ScenarioSpec(),
    "uniform-hetero": ScenarioSpec(
        speeds=UniformSpeeds(0.5, 1.5), normalize_mean_speed=True
    ),
    "bimodal-hetero": ScenarioSpec(
        speeds=BimodalSpeeds(slow_fraction=0.2, slow_speed=0.5, fast_speed=1.0),
        normalize_mean_speed=True,
    ),
    "zipf-hetero": ScenarioSpec(
        speeds=ZipfSpeeds(alpha=1.5, num_tiers=4), normalize_mean_speed=True
    ),
    "dynamic-stragglers": ScenarioSpec(
        stragglers=DynamicStragglers(
            onset_rate=1.0 / 2000.0,
            mean_duration=DEFAULT_SLOWDOWN_DURATION,
            factor=DEFAULT_SLOWDOWN_FACTOR,
        )
    ),
    "failures": ScenarioSpec(
        failures=MachineFailures(rate=5e-5, mean_repair=DEFAULT_MEAN_REPAIR)
    ),
    "hostile": ScenarioSpec(
        speeds=UniformSpeeds(0.5, 1.5),
        normalize_mean_speed=True,
        stragglers=DynamicStragglers(
            onset_rate=1.0 / 2000.0,
            mean_duration=DEFAULT_SLOWDOWN_DURATION,
            factor=DEFAULT_SLOWDOWN_FACTOR,
        ),
        failures=MachineFailures(rate=5e-5, mean_repair=DEFAULT_MEAN_REPAIR),
    ),
}


def scenario_preset(name: str) -> ScenarioSpec:
    """Look up a named preset (raises ``KeyError`` with the known names)."""
    try:
        return SCENARIO_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_PRESETS))
        raise KeyError(f"unknown scenario {name!r}; known presets: {known}") from None
