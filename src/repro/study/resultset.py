"""Tidy result sets: per-run records with their axis coordinates attached.

:meth:`Study.run <repro.study.core.Study.run>` returns a :class:`ResultSet`
holding one :class:`StudyRun` per executed cell of the axes product.  Each
run knows its coordinate vector (``workload``/``scenario``/``scheduler``/
scalar axes/``seed``) and its full
:class:`~repro.simulation.metrics.SimulationResult`, so the set behaves
like a small tidy data frame:

* :meth:`ResultSet.filter` selects runs by coordinate values;
* :meth:`ResultSet.group_by` partitions into sub-sets per coordinate combo;
* :meth:`ResultSet.aggregate` collapses the seed axis (or any other) into
  ``mean``/``std``/``min``/``max``/``median``/``p95``/``p99``/``ci95``
  statistics -- the same numpy reductions
  :class:`~repro.simulation.experiment_runner.ReplicatedResult` uses, so
  aggregated numbers match the per-figure drivers digit for digit;
* :meth:`ResultSet.to_records` / :meth:`ResultSet.to_csv` /
  :meth:`ResultSet.to_json` export tidy rows for external tooling.

``ResultSet.fingerprint()`` hashes every run's coordinates together with
its result fingerprint; two sets are bit-identical if and only if their
fingerprints match (this is what the serial-vs-pooled and cold-vs-warm
CLI equivalence tests compare).
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.simulation.metrics import SimulationResult

__all__ = ["StudyRun", "ResultSet", "DEFAULT_METRICS", "AGGREGATE_STATS"]

#: Metrics exported by default (all are ``SimulationResult`` attributes).
DEFAULT_METRICS: Tuple[str, ...] = (
    "num_jobs",
    "mean_flowtime",
    "weighted_mean_flowtime",
    "median_flowtime",
    "max_flowtime",
    "makespan",
    "cloning_ratio",
    "redundant_copies_launched",
)

MetricLike = Union[str, Callable[[SimulationResult], float]]


def _metric_value(result: SimulationResult, metric: MetricLike) -> float:
    if callable(metric):
        return float(metric(result))
    return float(getattr(result, metric))


def _metric_name(metric: MetricLike) -> str:
    if callable(metric):
        return getattr(metric, "__name__", "metric")
    return metric


class StudyRun:
    """One executed cell: a coordinate vector plus its simulation result."""

    __slots__ = ("coords", "result")

    def __init__(
        self, coords: Sequence[Tuple[str, Any]], result: SimulationResult
    ) -> None:
        self.coords: "OrderedDict[str, Any]" = OrderedDict(coords)
        self.result = result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        coords = ", ".join(f"{k}={v!r}" for k, v in self.coords.items())
        return f"StudyRun({coords})"

    def record(self, metrics: Sequence[MetricLike] = DEFAULT_METRICS) -> Dict[str, Any]:
        """One tidy row: the coordinates followed by the chosen metrics."""
        row: Dict[str, Any] = dict(self.coords)
        for metric in metrics:
            row[_metric_name(metric)] = _metric_value(self.result, metric)
        return row


#: Statistics :meth:`ResultSet.aggregate` understands.
AGGREGATE_STATS: Tuple[str, ...] = (
    "mean",
    "std",
    "min",
    "max",
    "median",
    "p95",
    "p99",
    "ci95",
    "count",
)


def _aggregate(values: List[float], stat: str) -> float:
    array = np.array(values, dtype=float)
    if stat == "mean":
        return float(array.mean())
    if stat == "std":
        return float(array.std(ddof=0))
    if stat == "min":
        return float(array.min())
    if stat == "max":
        return float(array.max())
    if stat == "median":
        return float(np.median(array))
    if stat == "p95":
        return float(np.percentile(array, 95.0))
    if stat == "p99":
        return float(np.percentile(array, 99.0))
    if stat == "ci95":
        # Half-width of the normal-approximation 95% confidence interval.
        if len(array) < 2:
            return 0.0
        return float(1.96 * array.std(ddof=1) / np.sqrt(len(array)))
    if stat == "count":
        return float(len(array))
    raise ValueError(f"unknown statistic {stat!r}; known: {', '.join(AGGREGATE_STATS)}")


class ResultSet:
    """An ordered collection of :class:`StudyRun` records (see module doc)."""

    def __init__(self, runs: Iterable[StudyRun], name: str = "") -> None:
        self.runs: List[StudyRun] = list(runs)
        self.name = name

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[StudyRun]:
        return iter(self.runs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultSet(name={self.name!r}, runs={len(self.runs)})"

    @property
    def axis_names(self) -> Tuple[str, ...]:
        """Coordinate axes of the records (empty for an empty set)."""
        if not self.runs:
            return ()
        return tuple(self.runs[0].coords)

    @property
    def results(self) -> List[SimulationResult]:
        """The raw simulation results, in run order."""
        return [run.result for run in self.runs]

    def coordinates(self, axis: str) -> List[Any]:
        """Distinct values of ``axis`` in first-occurrence order."""
        seen: "OrderedDict[Any, None]" = OrderedDict()
        for run in self.runs:
            seen.setdefault(run.coords[axis])
        return list(seen)

    # -- selection -----------------------------------------------------------

    def filter(
        self,
        predicate: Optional[Callable[[StudyRun], bool]] = None,
        **coords: Any,
    ) -> "ResultSet":
        """Runs matching every given coordinate (and the predicate, if any).

        A coordinate value may be a single value or a set/list/tuple of
        admissible values.  Unknown axis names raise ``KeyError`` rather
        than silently matching nothing.
        """
        if self.runs:
            known = set(self.runs[0].coords)
            unknown = set(coords) - known
            if unknown:
                raise KeyError(
                    f"unknown axes {sorted(unknown)}; known: {sorted(known)}"
                )

        def matches(run: StudyRun) -> bool:
            for axis, wanted in coords.items():
                value = run.coords[axis]
                if isinstance(wanted, (set, frozenset, list, tuple)):
                    if value not in wanted:
                        return False
                elif value != wanted:
                    return False
            return predicate(run) if predicate is not None else True

        return ResultSet([run for run in self.runs if matches(run)], name=self.name)

    def group_by(self, *axes: str) -> "OrderedDict[Tuple[Any, ...], ResultSet]":
        """Partition into sub-sets keyed by the given axes' value tuples.

        Groups appear in first-occurrence order; runs keep their order
        within each group.
        """
        if not axes:
            raise ValueError("group_by needs at least one axis name")
        grouped: "OrderedDict[Tuple[Any, ...], List[StudyRun]]" = OrderedDict()
        for run in self.runs:
            key = tuple(run.coords[axis] for axis in axes)
            grouped.setdefault(key, []).append(run)
        return OrderedDict(
            (key, ResultSet(runs, name=self.name)) for key, runs in grouped.items()
        )

    # -- metrics and aggregation ---------------------------------------------

    def values(self, metric: MetricLike) -> List[float]:
        """The metric evaluated on every run, in run order."""
        return [_metric_value(run.result, metric) for run in self.runs]

    def mean(self, metric: MetricLike) -> float:
        """Mean of ``metric`` over the whole set (numpy semantics)."""
        return _aggregate(self.values(metric), "mean")

    def aggregate(
        self,
        metrics: Sequence[MetricLike] = ("mean_flowtime", "weighted_mean_flowtime"),
        *,
        over: str = "seed",
        by: Optional[Sequence[str]] = None,
        stats: Sequence[str] = ("mean",),
    ) -> List[Dict[str, Any]]:
        """Collapse the ``over`` axis into statistics, one tidy row per group.

        ``by`` defaults to every axis except ``over``; each output row
        carries the group's coordinates plus ``<metric>_<stat>`` columns
        (a bare ``<metric>`` column when the only statistic is ``mean``).
        """
        if by is None:
            by = [axis for axis in self.axis_names if axis != over]
        rows: List[Dict[str, Any]] = []
        groups = (
            self.group_by(*by) if by else OrderedDict([((), self)])
        )
        bare = len(stats) == 1 and stats[0] == "mean"
        for key, group in groups.items():
            row: Dict[str, Any] = dict(zip(by, key))
            for metric in metrics:
                metric_values = group.values(metric)
                for stat in stats:
                    column = (
                        _metric_name(metric)
                        if bare
                        else f"{_metric_name(metric)}_{stat}"
                    )
                    row[column] = _aggregate(metric_values, stat)
            rows.append(row)
        return rows

    # -- export ----------------------------------------------------------------

    def to_records(
        self, metrics: Sequence[MetricLike] = DEFAULT_METRICS
    ) -> List[Dict[str, Any]]:
        """Tidy per-run rows: axis coordinates plus the chosen metrics."""
        return [run.record(metrics) for run in self.runs]

    def to_csv(
        self,
        path: Optional[str] = None,
        *,
        metrics: Sequence[MetricLike] = DEFAULT_METRICS,
    ) -> str:
        """Render (and optionally write) the records as CSV.

        Floats are written with ``repr`` (exact round-trip), so two
        bit-identical result sets export byte-identical CSV.
        """
        records = self.to_records(metrics)
        buffer = io.StringIO()
        if records:
            writer = csv.DictWriter(
                buffer, fieldnames=list(records[0]), lineterminator="\n"
            )
            writer.writeheader()
            for record in records:
                writer.writerow({key: repr(v) if isinstance(v, float) else v
                                 for key, v in record.items()})
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def to_json(
        self,
        path: Optional[str] = None,
        *,
        metrics: Sequence[MetricLike] = DEFAULT_METRICS,
    ) -> str:
        """Render (and optionally write) the records as a JSON array."""
        text = json.dumps(self.to_records(metrics), indent=2, sort_keys=False)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    # -- identity ---------------------------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 over every run's coordinates and result fingerprint.

        Equal fingerprints mean the two sets contain bit-identical results
        at identical coordinates in identical order (wall-clock runtime
        excluded).
        """
        digest = hashlib.sha256()
        for run in self.runs:
            coords = json.dumps(
                {key: repr(v) for key, v in run.coords.items()}, sort_keys=True
            )
            digest.update(coords.encode("utf-8"))
            digest.update(run.result.fingerprint().encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()
