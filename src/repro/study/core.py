"""Declarative studies: a named cartesian product of experiment axes.

A :class:`Study` describes a whole comparative evaluation -- *which
schedulers, under which cluster scenarios, on which workloads, over which
seeds and parameter sweeps* -- as data, not as a bespoke driver loop.
:meth:`Study.compile` expands the axes product into the picklable
:class:`~repro.simulation.experiment_runner.RunSpec` list the existing
:class:`~repro.simulation.experiment_runner.ExperimentRunner` executes, so
parallel pools, streaming workloads and the results cache all come for
free; :meth:`Study.run` returns a tidy
:class:`~repro.study.resultset.ResultSet` with the axis coordinates
attached to every run.

Axes
----
Four structural axes are first-class constructor arguments:

* ``schedulers`` -- policy names from :data:`SCHEDULER_NAMES` (optionally
  with keyword overrides), e.g. ``("SRPTMS+C", {"name": "SRPT", "r": 2})``;
* ``scenarios`` -- cluster environments: ``None``/``"none"`` (the paper's
  homogeneous cluster), a preset name from
  :data:`repro.scenarios.SCENARIO_PRESETS`, a table of CLI-style knobs
  (``{"speed_spread": 0.5}``), or a raw
  :class:`~repro.scenarios.ScenarioSpec`;
* ``workloads`` -- ``"google"`` (the synthetic paper trace at the study's
  scale), a ``{"kind": "stream", "factory": ...}`` recipe over
  :mod:`repro.workload.stream`, or a raw
  trace/:class:`~repro.simulation.experiment_runner.TraceSpec`/
  :class:`~repro.workload.stream.StreamSpec` object;
* ``seeds`` -- replication seeds (always the innermost axis).

Scalar knobs (``scale``, ``epsilon``, ``r``, ``machines`` ...) hold one
value each; any of them can instead be swept by listing it in ``axes``
(``axes={"epsilon": (0.1, ..., 1.0)}``), which inserts an extra product
axis.  Every run's coordinates -- one ``(axis, label)`` pair per axis --
ride along as the spec's ``tag`` and come back on the result records.

The compile contract
--------------------
Compilation is pure and deterministic: the same ``Study`` always produces
the same spec list in the same order (workloads x scenarios x schedulers x
scalar axes in declaration order x seeds, last axis fastest), and every
produced spec is cache-fingerprintable, so re-running a study against a
warm :class:`~repro.simulation.results_store.ResultsStore` touches the
engine zero times.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.policies import parse_composition
from repro.scenarios import (
    DEFAULT_MEAN_REPAIR,
    DEFAULT_REMOTE_SLOWDOWN,
    DEFAULT_SLOWDOWN_DURATION,
    DEFAULT_SLOWDOWN_FACTOR,
    MachineFailures,
    ScenarioSpec,
    TopologySpec,
    UniformSpeeds,
    scenario_preset,
)
from repro.simulation.experiment_runner import (
    ExperimentRunner,
    RunSpec,
    SchedulerSpec,
    TraceSource,
    TraceSpec,
)
from repro.study.resultset import ResultSet, StudyRun
from repro.workload.google_trace import TABLE_II_TARGETS, GoogleTraceConfig
from repro.workload.stream import (
    StreamSpec,
    stream_dag_chain_jobs,
    stream_dag_diamond_jobs,
    stream_heavy_tail_jobs,
    stream_poisson_jobs,
    stream_uniform_jobs,
)
from repro.workload.trace import Trace

__all__ = [
    "Study",
    "SchedulerRef",
    "ScenarioRef",
    "WorkloadRef",
    "StudyPoint",
    "SCHEDULER_NAMES",
    "STREAM_FACTORIES",
    "SCALAR_AXES",
]


def _freeze_kwargs(kwargs: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a kwargs mapping to a sorted, hashable tuple of pairs."""
    return tuple(sorted(kwargs.items()))


# ------------------------------------------------------------ scheduler axis


def _build_srptms_c(point: "StudyPoint", kwargs: Dict[str, Any]) -> SchedulerSpec:
    from repro.core.srptms_c import SRPTMSCScheduler

    return SchedulerSpec(
        SRPTMSCScheduler, {"epsilon": point.epsilon, "r": point.r, **kwargs}
    )


def _build_srpt(point: "StudyPoint", kwargs: Dict[str, Any]) -> SchedulerSpec:
    from repro.schedulers import SRPTScheduler

    return SchedulerSpec(SRPTScheduler, {"r": point.r, **kwargs})


def _build_offline(point: "StudyPoint", kwargs: Dict[str, Any]) -> SchedulerSpec:
    from repro.core.offline import OfflineSRPTScheduler

    return SchedulerSpec(
        OfflineSRPTScheduler, {"r": point.r, "seed": point.seed, **kwargs}
    )


def _plain_builder(scheduler_classpath: str):
    def build(point: "StudyPoint", kwargs: Dict[str, Any]) -> SchedulerSpec:
        import repro.schedulers as schedulers

        return SchedulerSpec(getattr(schedulers, scheduler_classpath), kwargs)

    return build


#: Scheduler-name registry: how each named policy consumes the point's
#: parameters.  SRPTMS+C reads the point's ``epsilon``/``r``, SRPT and the
#: offline Algorithm 1 read ``r`` (the offline scheduler also receives the
#: replication seed for its randomised tie-breaking); explicit per-ref
#: kwargs always win over point parameters.
_SCHEDULER_BUILDERS = {
    "SRPTMS+C": _build_srptms_c,
    "SCA": _plain_builder("SCAScheduler"),
    "Mantri": _plain_builder("MantriScheduler"),
    "LATE": _plain_builder("LATEScheduler"),
    "Fair": _plain_builder("FairScheduler"),
    "FIFO": _plain_builder("FIFOScheduler"),
    "SRPT": _build_srpt,
    "Offline": _build_offline,
}

#: The policy names a study's ``schedulers`` axis accepts.  Beyond these,
#: any policy-kernel composition triple ``"<ordering>+<allocation>+
#: <redundancy>"`` (e.g. ``"srpt+greedy+late"``, ``"fifo+share+clone"``;
#: see :mod:`repro.policies`) is accepted too -- the triple consumes the
#: point's ``epsilon`` (share allocation) and ``r`` (srpt ordering) unless
#: overridden by per-ref kwargs.
SCHEDULER_NAMES: Tuple[str, ...] = tuple(_SCHEDULER_BUILDERS)


def _build_composition(
    name: str, point: "StudyPoint", kwargs: Dict[str, Any]
) -> SchedulerSpec:
    """SchedulerSpec for a policy-kernel triple (``ordering+allocation+redundancy``)."""
    from repro.simulation.scheduler_api import ComposedScheduler

    ordering, allocation, redundancy = parse_composition(name)
    composed_kwargs: Dict[str, Any] = {
        "ordering": ordering,
        "allocation": allocation,
        "redundancy": redundancy,
        "epsilon": point.epsilon,
        "r": point.r,
    }
    composed_kwargs.update(kwargs)
    return SchedulerSpec(ComposedScheduler, composed_kwargs)


@dataclass(frozen=True)
class SchedulerRef:
    """One labelled point on a study's scheduler axis.

    ``name`` selects a registered policy (:data:`SCHEDULER_NAMES`);
    ``kwargs`` override the constructor arguments the policy would
    otherwise derive from the study point (e.g. ``epsilon``/``r``).
    ``label`` is the coordinate value on result records; it defaults to
    the policy name, suffixed with the overrides when present so two
    differently parameterised refs of one policy stay distinguishable.
    """

    name: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if (
            self.name not in _SCHEDULER_BUILDERS
            and parse_composition(self.name) is None
        ):
            known = ", ".join(sorted(_SCHEDULER_BUILDERS))
            raise ValueError(
                f"unknown scheduler {self.name!r}; known schedulers: {known}, "
                "or a policy-kernel triple like 'srpt+greedy+late' "
                "(<ordering>+<allocation>+<redundancy>, see repro.policies)"
            )
        if not self.label:
            object.__setattr__(self, "label", self.default_label())

    def default_label(self) -> str:
        """The label used when none is given explicitly."""
        if not self.kwargs:
            return self.name
        items = ",".join(f"{key}={value!r}" for key, value in self.kwargs)
        return f"{self.name}({items})"

    @classmethod
    def coerce(cls, value: "SchedulerLike") -> "SchedulerRef":
        """Normalise a user-supplied axis entry into a :class:`SchedulerRef`."""
        if isinstance(value, SchedulerRef):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            data = dict(value)
            try:
                name = data.pop("name")
            except KeyError:
                raise ValueError(
                    f"scheduler table {value!r} needs a 'name' key "
                    f"(one of: {', '.join(sorted(_SCHEDULER_BUILDERS))})"
                ) from None
            label = data.pop("label", "")
            return cls(name=name, kwargs=_freeze_kwargs(data), label=label)
        raise TypeError(
            f"scheduler axis entries must be names, tables or SchedulerRef, "
            f"got {value!r}"
        )

    def build(self, point: "StudyPoint") -> SchedulerSpec:
        """The picklable scheduler recipe for one study point."""
        builder = _SCHEDULER_BUILDERS.get(self.name)
        if builder is not None:
            return builder(point, dict(self.kwargs))
        return _build_composition(self.name, point, dict(self.kwargs))


SchedulerLike = Union[str, Mapping[str, Any], SchedulerRef]


# ------------------------------------------------------------- scenario axis

#: Knobs a scenario table may set, mirroring the CLI scenario flags.
_SCENARIO_TABLE_KEYS = frozenset(
    {
        "speed_spread",
        "failure_rate",
        "mean_repair",
        "slowdown_rate",
        "slowdown_duration",
        "slowdown_factor",
        "racks",
        "remote_slowdown",
        "label",
    }
)


def _scenario_from_table(data: Mapping[str, float]) -> Optional[ScenarioSpec]:
    """Compose a ScenarioSpec from CLI-style knobs (None = homogeneous)."""
    from repro.cluster.stragglers import DynamicStragglers

    unknown = set(data) - _SCENARIO_TABLE_KEYS
    if unknown:
        raise ValueError(
            f"unknown scenario keys {sorted(unknown)}; "
            f"allowed: {sorted(_SCENARIO_TABLE_KEYS)}"
        )
    speed_spread = float(data.get("speed_spread", 0.0))
    failure_rate = float(data.get("failure_rate", 0.0))
    slowdown_rate = float(data.get("slowdown_rate", 0.0))
    if not 0.0 <= speed_spread < 1.0:
        raise ValueError(f"speed_spread must lie in [0, 1), got {speed_spread}")
    if "mean_repair" in data and failure_rate == 0.0:
        raise ValueError("mean_repair needs failure_rate > 0")
    if (
        "slowdown_duration" in data or "slowdown_factor" in data
    ) and slowdown_rate == 0.0:
        raise ValueError("slowdown_duration/slowdown_factor need slowdown_rate > 0")
    racks = int(data.get("racks", 1))
    if "remote_slowdown" in data and racks <= 1:
        raise ValueError("remote_slowdown needs racks > 1")
    speeds = None
    normalize = False
    if speed_spread > 0.0:
        speeds = UniformSpeeds(1.0 - speed_spread, 1.0 + speed_spread)
        normalize = True
    failures = None
    if failure_rate > 0.0:
        failures = MachineFailures(
            rate=failure_rate,
            mean_repair=float(data.get("mean_repair", DEFAULT_MEAN_REPAIR)),
        )
    stragglers = None
    if slowdown_rate > 0.0:
        stragglers = DynamicStragglers(
            onset_rate=slowdown_rate,
            mean_duration=float(
                data.get("slowdown_duration", DEFAULT_SLOWDOWN_DURATION)
            ),
            factor=float(data.get("slowdown_factor", DEFAULT_SLOWDOWN_FACTOR)),
        )
    topology = None
    if racks > 1:
        topology = TopologySpec(
            racks=racks,
            remote_slowdown=float(
                data.get("remote_slowdown", DEFAULT_REMOTE_SLOWDOWN)
            ),
        )
    spec = ScenarioSpec(
        speeds=speeds,
        normalize_mean_speed=normalize,
        stragglers=stragglers,
        failures=failures,
        topology=topology,
    )
    return None if spec.is_default else spec


@dataclass(frozen=True)
class ScenarioRef:
    """One labelled point on a study's scenario axis.

    ``decl`` keeps the declarative form the ref was built from (``None``
    for the homogeneous cluster, a preset name, or a tuple of knob pairs)
    so spec files can round-trip it; refs built from a raw
    :class:`~repro.scenarios.ScenarioSpec` carry ``decl="object"`` and are
    not spec-file serialisable.
    """

    label: str
    spec: Optional[ScenarioSpec] = None
    decl: Union[None, str, Tuple[Tuple[str, Any], ...]] = None

    @classmethod
    def coerce(cls, value: "ScenarioLike") -> "ScenarioRef":
        """Normalise a user-supplied axis entry into a :class:`ScenarioRef`."""
        if isinstance(value, ScenarioRef):
            return value
        if value is None or value == "none":
            return cls(label="none", spec=None, decl=None)
        if isinstance(value, str):
            return cls(label=value, spec=scenario_preset(value), decl=value)
        if isinstance(value, Mapping):
            data = dict(value)
            label = data.pop("label", "")
            spec = _scenario_from_table(data)
            # An empty knob table is the homogeneous cluster: same decl as
            # None, so a relabelled 'none' round-trips through spec files.
            ref = cls(label="x", spec=spec, decl=_freeze_kwargs(data) if data else None)
            return replace(ref, label=label or ref.default_label())
        if isinstance(value, ScenarioSpec):
            return cls(label="custom", spec=value, decl="object")
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[0], str)
        ):
            return replace(cls.coerce(value[1]), label=value[0])
        raise TypeError(
            f"scenario axis entries must be None, 'none', a preset name, a "
            f"knob table, a ScenarioSpec or a (label, value) pair; got "
            f"{value!r}"
        )

    def default_label(self) -> str:
        """The label a ref of this declarative form gets when none is given.

        The single source for the derivation -- the spec-file encoder
        compares against this to decide whether an explicit ``label`` key
        must be emitted.
        """
        if self.decl is None:
            return "none"
        if self.decl == "object":
            return "custom"
        if isinstance(self.decl, str):
            return self.decl
        return ",".join(f"{k}={v:g}" for k, v in sorted(dict(self.decl).items()))


ScenarioLike = Union[
    None, str, Mapping[str, Any], ScenarioSpec, Tuple[str, Any], "ScenarioRef"
]


# ------------------------------------------------------------- workload axis

#: Named stream recipes a ``{"kind": "stream"}`` workload may select.
STREAM_FACTORIES = {
    "uniform": stream_uniform_jobs,
    "poisson": stream_poisson_jobs,
    "heavy_tail": stream_heavy_tail_jobs,
    "dag_chain": stream_dag_chain_jobs,
    "dag_diamond": stream_dag_diamond_jobs,
}

_GOOGLE_WORKLOAD_KEYS = frozenset({"kind", "label", "scale", "trace_seed", "within_job_cv"})

#: Keyword parameters :func:`repro.workload.generators.bulk_arrival_trace`
#: accepts (strict-spec validation rejects anything else at load time).
_BULK_WORKLOAD_KEYS = frozenset(
    {"job_sizes", "mean_duration", "cv", "weights", "reduce_fraction", "name"}
)


def _stream_factory_keys(factory_name: str) -> frozenset:
    """Keyword parameters the named stream factory accepts (minus num_jobs)."""
    import inspect

    signature = inspect.signature(STREAM_FACTORIES[factory_name])
    return frozenset(signature.parameters) - {"num_jobs"}


@dataclass(frozen=True)
class WorkloadRef:
    """One labelled point on a study's workload axis.

    ``kind`` is ``"google"`` (the synthetic paper trace, parameterised by
    the point's scale unless overridden in ``params``), ``"stream"`` (a
    :class:`~repro.workload.stream.StreamSpec` recipe over
    :data:`STREAM_FACTORIES`), ``"bulk"`` (the offline bulk-arrival
    instance of :func:`repro.workload.generators.bulk_arrival_trace`), or
    ``"object"`` (a raw trace source passed through as-is; not spec-file
    serialisable).
    """

    kind: str
    label: str
    params: Tuple[Tuple[str, Any], ...] = ()
    source: Optional[Any] = field(default=None, compare=True)

    @classmethod
    def coerce(cls, value: "WorkloadLike") -> "WorkloadRef":
        """Normalise a user-supplied axis entry into a :class:`WorkloadRef`."""
        if isinstance(value, WorkloadRef):
            return value
        if value == "google":
            return cls(kind="google", label="google")
        if isinstance(value, str):
            raise ValueError(
                f"unknown workload name {value!r}; use 'google' or a "
                "{'kind': ...} table"
            )
        if isinstance(value, Mapping):
            data = dict(value)
            kind = data.pop("kind", None)
            label = data.pop("label", "")
            if kind == "google":
                unknown = set(data) - {"scale", "trace_seed", "within_job_cv"}
                if unknown:
                    raise ValueError(
                        f"unknown google-workload keys {sorted(unknown)}; "
                        f"allowed: {sorted(_GOOGLE_WORKLOAD_KEYS)}"
                    )
                return cls(
                    kind="google",
                    label=label or "google",
                    params=_freeze_kwargs(data),
                )
            if kind == "stream":
                try:
                    factory = data.pop("factory")
                    num_jobs = data.pop("num_jobs")
                except KeyError as exc:
                    raise ValueError(
                        f"stream workloads need {exc} (and a 'factory' from: "
                        f"{', '.join(sorted(STREAM_FACTORIES))})"
                    ) from None
                if factory not in STREAM_FACTORIES:
                    raise ValueError(
                        f"unknown stream factory {factory!r}; known: "
                        f"{', '.join(sorted(STREAM_FACTORIES))}"
                    )
                allowed = _stream_factory_keys(factory)
                unknown = set(data) - allowed
                if unknown:
                    raise ValueError(
                        f"unknown {factory}-stream keys {sorted(unknown)}; "
                        f"allowed: {sorted(allowed)}"
                    )
                params = _freeze_kwargs(
                    {"factory": factory, "num_jobs": int(num_jobs), **data}
                )
                ref = cls(kind="stream", label="x", params=params)
                return replace(ref, label=label or ref.default_label())
            if kind == "bulk":
                unknown = set(data) - _BULK_WORKLOAD_KEYS
                if unknown:
                    raise ValueError(
                        f"unknown bulk-workload keys {sorted(unknown)}; "
                        f"allowed: {sorted(_BULK_WORKLOAD_KEYS)}"
                    )
                try:
                    job_sizes = tuple(int(size) for size in data.pop("job_sizes"))
                except KeyError:
                    raise ValueError(
                        "bulk workloads need a 'job_sizes' array"
                    ) from None
                if "weights" in data:
                    data["weights"] = tuple(float(w) for w in data["weights"])
                params = _freeze_kwargs({"job_sizes": job_sizes, **data})
                return cls(kind="bulk", label=label or "bulk", params=params)
            raise ValueError(
                f"workload tables need kind 'google', 'stream' or 'bulk', "
                f"got {kind!r}"
            )
        if isinstance(value, (Trace, TraceSpec, StreamSpec)):
            label = getattr(value, "name", None) or "trace"
            return cls(kind="object", label=str(label), source=value)
        if (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[0], str)
        ):
            return replace(cls.coerce(value[1]), label=value[0])
        raise TypeError(
            f"workload axis entries must be 'google', a table, a "
            f"Trace/TraceSpec/StreamSpec or a (label, value) pair; got "
            f"{value!r}"
        )

    def default_label(self) -> str:
        """The label a ref of this declarative form gets when none is given.

        The single source for the derivation -- the spec-file encoder
        compares against this to decide whether an explicit ``label`` key
        must be emitted.
        """
        if self.kind == "stream":
            params = dict(self.params)
            return f"{params['factory']}-{params['num_jobs']}"
        if self.kind == "object":
            return str(getattr(self.source, "name", None) or "trace")
        return self.kind  # "google" / "bulk"

    def resolve(self, point: "StudyPoint") -> TraceSource:
        """The picklable trace source this workload contributes to a point."""
        if self.kind == "object":
            return self.source
        params = dict(self.params)
        if self.kind == "google":
            # Import here: repro.experiments.config imports this package's
            # consumers, so a module-level import would be cyclic.  The
            # factory identity must match ExperimentConfig.trace_source()
            # exactly -- same function, same kwargs -- so preset studies hit
            # the same results-cache entries as the legacy drivers.
            from repro.experiments.config import generate_google_trace

            trace_config = GoogleTraceConfig(
                scale=float(params.get("scale", point.scale)),
                within_job_cv=float(
                    params.get("within_job_cv", point.within_job_cv)
                ),
            )
            seed = int(params.get("trace_seed", point.trace_seed))
            return TraceSpec(
                factory=generate_google_trace,
                kwargs={"trace_config": trace_config, "seed": seed},
            )
        if self.kind == "bulk":
            from repro.workload.generators import bulk_arrival_trace

            return TraceSpec(factory=bulk_arrival_trace, kwargs=params)
        factory = STREAM_FACTORIES[params.pop("factory")]
        num_jobs = params.pop("num_jobs")
        return StreamSpec(
            factory=factory, num_jobs=num_jobs, kwargs=params, name=self.label
        )


WorkloadLike = Union[str, Mapping[str, Any], Trace, TraceSpec, StreamSpec, Tuple[str, Any], "WorkloadRef"]


# ------------------------------------------------------------------- points

#: Scalar knobs that may be swept through ``Study.axes``.
SCALAR_AXES: Tuple[str, ...] = ("epsilon", "r", "machines", "machine_fraction", "scale")

#: Structural axis names, in product order (seed is always innermost).
_STRUCTURAL_AXES = ("workload", "scenario", "scheduler")


@dataclass(frozen=True)
class StudyPoint:
    """One fully resolved cell of the axes product.

    ``coords`` is the point's coordinate vector -- one ``(axis, label)``
    pair per axis, in axis order -- and rides along as the compiled spec's
    ``tag``; the remaining attributes are the resolved parameters the spec
    is built from.
    """

    coords: Tuple[Tuple[str, Any], ...]
    workload: WorkloadRef
    scenario: ScenarioRef
    scheduler: SchedulerRef
    seed: int
    scale: float
    epsilon: float
    r: float
    machines: int
    trace_seed: int
    within_job_cv: float
    max_time: Optional[float]

    def to_run_spec(self) -> RunSpec:
        """Compile this point into a picklable run spec."""
        return RunSpec(
            trace=self.workload.resolve(self),
            scheduler=self.scheduler.build(self),
            num_machines=self.machines,
            seed=self.seed,
            scenario=self.scenario.spec,
            max_time=self.max_time,
            tag=self.coords,
        )


# -------------------------------------------------------------------- study


def _default_machines(scale: float) -> int:
    """The paper-load cluster size at ``scale`` (12000 machines at 1.0)."""
    return max(1, int(round(TABLE_II_TARGETS["num_machines"] * scale)))


@dataclass(frozen=True)
class Study:
    """A named cartesian product of experiment axes (see module docstring).

    ``schedulers``/``scenarios``/``workloads``/``seeds`` are the structural
    axes; ``axes`` adds scalar sweep axes over any of
    :data:`SCALAR_AXES`; the remaining fields are scalar knobs applied to
    every point (a scalar listed in ``axes`` is swept instead).  An empty
    ``schedulers`` axis is allowed and compiles to zero runs -- the escape
    hatch for analysis-only studies such as the Table II statistics.
    """

    name: str
    schedulers: Tuple[SchedulerRef, ...] = ("SRPTMS+C", "SCA", "Mantri")
    scenarios: Tuple[ScenarioRef, ...] = (None,)
    workloads: Tuple[WorkloadRef, ...] = ("google",)
    seeds: Tuple[int, ...] = (0, 1)
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    scale: float = 0.02
    epsilon: float = 0.6
    r: float = 3.0
    machines: Optional[int] = None
    trace_seed: int = 0
    within_job_cv: float = 0.6
    max_time: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a study needs a non-empty name")
        object.__setattr__(
            self,
            "schedulers",
            tuple(SchedulerRef.coerce(entry) for entry in self.schedulers),
        )
        object.__setattr__(
            self,
            "scenarios",
            tuple(ScenarioRef.coerce(entry) for entry in self.scenarios),
        )
        object.__setattr__(
            self,
            "workloads",
            tuple(WorkloadRef.coerce(entry) for entry in self.workloads),
        )
        object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))
        object.__setattr__(self, "axes", self._normalise_axes(self.axes))
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(self, "r", float(self.r))
        if self.machines is not None:
            object.__setattr__(self, "machines", int(self.machines))
        object.__setattr__(self, "trace_seed", int(self.trace_seed))
        object.__setattr__(self, "within_job_cv", float(self.within_job_cv))
        if self.max_time is not None:
            object.__setattr__(self, "max_time", float(self.max_time))
        if not self.scenarios or not self.workloads or not self.seeds:
            raise ValueError(
                "scenarios, workloads and seeds must each have at least one "
                "entry (only the scheduler axis may be empty)"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        for axis in ("workload", "scenario", "scheduler"):
            labels = [
                ref.label for ref in getattr(self, axis + "s")
            ]
            duplicates = {label for label in labels if labels.count(label) > 1}
            if duplicates:
                raise ValueError(
                    f"duplicate {axis} labels {sorted(duplicates)}; give "
                    f"distinct 'label's to repeated entries"
                )

    @staticmethod
    def _normalise_axes(axes: Any) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
        if isinstance(axes, Mapping):
            items = list(axes.items())
        else:
            items = [(name, values) for name, values in axes]
        normalised: List[Tuple[str, Tuple[Any, ...]]] = []
        seen = set()
        for name, values in items:
            if name in ("seed", "seeds"):
                raise ValueError("sweep seeds through the seeds= axis, not axes=")
            if name in ("scheduler", "schedulers", "scenario", "scenarios", "workload", "workloads"):
                raise ValueError(
                    f"sweep {name} through the {name.rstrip('s')}s= axis, not axes="
                )
            if name not in SCALAR_AXES:
                raise ValueError(
                    f"unknown scalar axis {name!r}; allowed: "
                    f"{', '.join(SCALAR_AXES)}"
                )
            if name in seen:
                raise ValueError(f"duplicate scalar axis {name!r}")
            seen.add(name)
            coerce = int if name == "machines" else float
            values = tuple(coerce(value) for value in values)
            if not values:
                raise ValueError(f"scalar axis {name!r} must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(f"scalar axis {name!r} has duplicate values")
            normalised.append((name, values))
        return tuple(normalised)

    # -- product expansion -----------------------------------------------------

    @property
    def axis_names(self) -> Tuple[str, ...]:
        """All axis names in coordinate order (seed last)."""
        return (
            _STRUCTURAL_AXES
            + tuple(name for name, _ in self.axes)
            + ("seed",)
        )

    def num_points(self) -> int:
        """Size of the axes product (the number of runs a sweep executes)."""
        count = (
            len(self.workloads)
            * len(self.scenarios)
            * len(self.schedulers)
            * len(self.seeds)
        )
        for _, values in self.axes:
            count *= len(values)
        return count

    def points(self) -> List[StudyPoint]:
        """Expand the axes product into fully resolved points, in order."""
        scalar_names = [name for name, _ in self.axes]
        scalar_values = [values for _, values in self.axes]
        points: List[StudyPoint] = []
        for workload, scenario, scheduler in itertools.product(
            self.workloads, self.scenarios, self.schedulers
        ):
            for scalars in itertools.product(*scalar_values):
                overrides = dict(zip(scalar_names, scalars))
                scale = overrides.get("scale", self.scale)
                epsilon = overrides.get("epsilon", self.epsilon)
                r = overrides.get("r", self.r)
                machines = overrides.get(
                    "machines",
                    self.machines
                    if self.machines is not None
                    else _default_machines(scale),
                )
                fraction = overrides.get("machine_fraction")
                if fraction is not None:
                    machines = max(1, int(round(machines * fraction)))
                for seed in self.seeds:
                    coords = (
                        ("workload", workload.label),
                        ("scenario", scenario.label),
                        ("scheduler", scheduler.label),
                        *zip(scalar_names, scalars),
                        ("seed", seed),
                    )
                    points.append(
                        StudyPoint(
                            coords=coords,
                            workload=workload,
                            scenario=scenario,
                            scheduler=scheduler,
                            seed=seed,
                            scale=scale,
                            epsilon=epsilon,
                            r=r,
                            machines=int(machines),
                            trace_seed=self.trace_seed,
                            within_job_cv=self.within_job_cv,
                            max_time=self.max_time,
                        )
                    )
        return points

    def compile(self) -> List[RunSpec]:
        """The axes product as a flat, ordered, picklable spec list."""
        return [point.to_run_spec() for point in self.points()]

    # -- execution --------------------------------------------------------------

    def run(
        self,
        *,
        workers: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        runner: Optional[ExperimentRunner] = None,
        select: Optional[Callable[[StudyPoint], bool]] = None,
    ) -> ResultSet:
        """Execute the study (or a selection of it) and return its result set.

        ``workers`` follows the library convention (``1`` serial, ``N``
        processes, ``0``/``None`` all CPUs); ``cache_dir`` enables the
        results cache.  Pass an existing ``runner`` to reuse its pool/cache
        configuration instead.  ``select`` filters the compiled points
        before execution -- the escape hatch for reports that consume a
        non-rectangular subset of the product (e.g. the offline-bound
        preset reads only the diagonal of workloads x r).  Results are
        bit-identical for any worker count and across cold/warm caches
        (each run is a pure function of its spec).
        """
        if runner is None:
            runner = ExperimentRunner(workers=workers, cache_dir=cache_dir)
        points = self.points()
        if select is not None:
            points = [point for point in points if select(point)]
        results = runner.run([point.to_run_spec() for point in points])
        runs = [
            StudyRun(coords=point.coords, result=result)
            for point, result in zip(points, results)
        ]
        return ResultSet(runs, name=self.name)

    def run_incremental(
        self,
        on_result: Callable[[StudyPoint, Any, bool], None],
        *,
        workers: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        runner: Optional[ExperimentRunner] = None,
        select: Optional[Callable[[StudyPoint], bool]] = None,
    ) -> ResultSet:
        """Execute the study, streaming per-point results as they land.

        Identical to :meth:`run` (same spec list, same final
        :class:`~repro.study.resultset.ResultSet`, bit-identical results)
        except that ``on_result(point, result, cache_hit)`` is invoked for
        every point as its :class:`~repro.simulation.metrics.SimulationResult`
        arrives: cache hits first (point order), then executed points as
        they complete (point order on the serial and the pooled path; each
        is persisted to the cache before its callback fires).  This is the
        entry point for consumers that surface progress while a sweep is
        still running -- the ``repro-mapreduce serve`` daemon's study
        registry streams through the same mechanism.
        """
        if runner is None:
            runner = ExperimentRunner(workers=workers, cache_dir=cache_dir)
        points = self.points()
        if select is not None:
            points = [point for point in points if select(point)]
        specs = [point.to_run_spec() for point in points]
        point_of = {id(spec): point for spec, point in zip(specs, points)}

        def relay(spec: RunSpec, result: Any, cache_hit: bool) -> None:
            on_result(point_of[id(spec)], result, cache_hit)

        results = runner.run(specs, on_result=relay)
        runs = [
            StudyRun(coords=point.coords, result=result)
            for point, result in zip(points, results)
        ]
        return ResultSet(runs, name=self.name)
