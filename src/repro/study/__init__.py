"""Declarative study API: axes-product sweeps with tidy results.

The layer every comparative evaluation goes through:

* :class:`~repro.study.core.Study` -- a named cartesian product of axes
  (schedulers x scenarios x workloads x seeds x scalar sweeps) that
  compiles to :class:`~repro.simulation.experiment_runner.RunSpec` lists
  and executes on the existing
  :class:`~repro.simulation.experiment_runner.ExperimentRunner` (pools,
  streams and the results cache included);
* :class:`~repro.study.resultset.ResultSet` -- tidy per-run records with
  axis coordinates attached (``filter``/``group_by``/``aggregate``,
  CSV/JSON export, bit-identity fingerprints);
* :mod:`~repro.study.specfile` -- strict TOML/JSON spec files, so new
  sweeps need a file rather than a driver
  (``repro-mapreduce sweep --spec study.toml``);
* :mod:`~repro.study.presets` -- the paper drivers and the policy-grid
  sweep as ready-made studies
  (:data:`~repro.study.presets.STUDY_PRESETS`).
"""

from repro.study.core import (
    SCALAR_AXES,
    SCHEDULER_NAMES,
    STREAM_FACTORIES,
    ScenarioRef,
    SchedulerRef,
    Study,
    StudyPoint,
    WorkloadRef,
)
from repro.study.presets import STUDY_PRESETS, StudyPreset, preset_study, run_preset_report
from repro.study.resultset import AGGREGATE_STATS, DEFAULT_METRICS, ResultSet, StudyRun
from repro.study.specfile import (
    StudySpecError,
    dump_study,
    load_study,
    study_from_dict,
    study_from_json,
    study_from_toml,
    study_to_dict,
    study_to_json,
    study_to_toml,
)

__all__ = [
    "Study",
    "StudyPoint",
    "SchedulerRef",
    "ScenarioRef",
    "WorkloadRef",
    "SCHEDULER_NAMES",
    "STREAM_FACTORIES",
    "SCALAR_AXES",
    "ResultSet",
    "StudyRun",
    "DEFAULT_METRICS",
    "AGGREGATE_STATS",
    "StudySpecError",
    "study_to_dict",
    "study_from_dict",
    "study_to_toml",
    "study_from_toml",
    "study_to_json",
    "study_from_json",
    "load_study",
    "dump_study",
    "StudyPreset",
    "STUDY_PRESETS",
    "preset_study",
    "run_preset_report",
]
