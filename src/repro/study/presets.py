"""The paper's tables and figures as declarative :class:`Study` presets.

Every legacy driver (``run_table2``, ``run_figure1`` .. ``run_figure6``,
``run_offline_bound``, ``run_scenario_sweep``) is reimplemented here as a
*preset*: a builder returning the declarative :class:`Study` the driver
sweeps, plus a ``compute_*`` function that runs the study through
:meth:`Study.run` and reassembles the driver's legacy result object --
whose ``render()`` output is byte-identical to the pre-Study drivers
(asserted against the golden reports in ``tests/test_study_presets.py``).
The thin ``run_*`` wrappers in :mod:`repro.experiments` delegate here, so
presets are the one place driver sweeps are defined.

:data:`STUDY_PRESETS` registers all nine by their CLI names -- plus the
``policy-grid`` sweep of the policy kernel (novel ordering x allocation x
redundancy compositions vs SRPTMS+C across scenarios); each entry exposes
``build(config)`` (the study itself, e.g. to dump as a spec file) and
``report(config)`` (run + render).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.theory import offline_bound_check
from repro.experiments.config import ExperimentConfig, generate_google_trace
from repro.simulation.experiment_runner import ReplicatedResult
from repro.study.core import Study
from repro.study.resultset import ResultSet
from repro.workload.google_trace import GoogleTraceConfig

__all__ = [
    "StudyPreset",
    "STUDY_PRESETS",
    "preset_study",
    "run_preset_report",
    "comparison_study",
    "compute_comparison",
    "figure1_study",
    "compute_figure1",
    "figure2_study",
    "compute_figure2",
    "figure3_study",
    "compute_figure3",
    "table2_study",
    "compute_table2",
    "offline_bound_study",
    "compute_offline_bound",
    "scenario_sweep_study",
    "compute_scenario_sweep",
    "policy_grid_study",
    "compute_policy_grid",
    "dag_redundancy_study",
    "compute_dag_redundancy",
    "locality_study",
    "compute_locality",
]


def _config(config: Optional[ExperimentConfig]) -> ExperimentConfig:
    return config if config is not None else ExperimentConfig.default_bench()


def _base_study_kwargs(config: ExperimentConfig) -> Dict[str, object]:
    """The scalar knobs every google-trace study inherits from a config."""
    return config.study_kwargs()


def _run(study: Study, config: ExperimentConfig, select=None) -> ResultSet:
    """Execute a preset study under the config's runner settings."""
    return study.run(runner=config.make_runner(), select=select)


def _replicated(group: ResultSet) -> ReplicatedResult:
    results = group.results
    return ReplicatedResult(
        scheduler_name=results[0].scheduler_name, results=results
    )


# ------------------------------------------------- scheduler comparison (4-6)

#: The paper's compared policies, in report order.
COMPARISON_SCHEDULERS: Tuple[str, ...] = ("SRPTMS+C", "SCA", "Mantri")
#: Extra reference policies of the ablation benchmarks.
EXTRA_SCHEDULERS: Tuple[str, ...] = ("LATE", "SRPT", "Fair", "FIFO")


def comparison_study(
    config: Optional[ExperimentConfig] = None,
    *,
    trace=None,
    include_extra: bool = False,
    schedulers: Optional[Sequence[str]] = None,
) -> Study:
    """The Figure 4/5/6 comparison as a study (one scheduler axis)."""
    config = _config(config)
    names = COMPARISON_SCHEDULERS + (EXTRA_SCHEDULERS if include_extra else ())
    if schedulers is not None:
        unknown = set(schedulers) - set(names)
        if unknown:
            raise ValueError(f"unknown scheduler names: {sorted(unknown)}")
        names = tuple(schedulers)
    kwargs = _base_study_kwargs(config)
    if trace is not None:
        kwargs["workloads"] = (trace,)
    return Study(name="scheduler-comparison", schedulers=names, **kwargs)


def compute_comparison(
    config: Optional[ExperimentConfig] = None,
    *,
    trace=None,
    include_extra: bool = False,
    schedulers: Optional[Sequence[str]] = None,
) -> Dict[str, ReplicatedResult]:
    """Run the comparison study; results keyed by policy name, in axis order."""
    config = _config(config)
    study = comparison_study(
        config, trace=trace, include_extra=include_extra, schedulers=schedulers
    )
    results = _run(study, config)
    return {
        key[0]: _replicated(group)
        for key, group in results.group_by("scheduler").items()
    }


# ----------------------------------------------------------- figure 1 (epsilon)


def figure1_study(
    config: Optional[ExperimentConfig] = None,
    epsilons: Sequence[float] = (),
    r: float = 0.0,
) -> Study:
    """SRPTMS+C swept over epsilon at fixed r (Figure 1's axes product)."""
    config = _config(config)
    kwargs = _base_study_kwargs(config)
    kwargs["epsilon"] = 0.6  # unused: the axis overrides it at every point
    kwargs["r"] = float(r)
    return Study(
        name="figure1",
        schedulers=("SRPTMS+C",),
        axes={"epsilon": tuple(float(e) for e in epsilons)},
        **kwargs,
    )


def compute_figure1(
    config: ExperimentConfig, epsilons: Sequence[float], r: float
):
    """Run the Figure 1 sweep and assemble its legacy result object."""
    from repro.experiments.figure1 import Figure1Result

    results = _run(figure1_study(config, epsilons=epsilons, r=r), config)
    means, weighted = [], []
    for epsilon in epsilons:
        replicated = _replicated(results.filter(epsilon=float(epsilon)))
        means.append(replicated.mean_flowtime)
        weighted.append(replicated.weighted_mean_flowtime)
    return Figure1Result(
        epsilons=tuple(epsilons),
        mean_flowtimes=tuple(means),
        weighted_mean_flowtimes=tuple(weighted),
        r=r,
    )


# ----------------------------------------------------------------- figure 2 (r)


def figure2_study(
    config: Optional[ExperimentConfig] = None,
    r_values: Sequence[float] = (),
    epsilon: float = 0.6,
) -> Study:
    """SRPTMS+C swept over r at fixed epsilon (Figure 2's axes product)."""
    config = _config(config)
    kwargs = _base_study_kwargs(config)
    kwargs["epsilon"] = float(epsilon)
    return Study(
        name="figure2",
        schedulers=("SRPTMS+C",),
        axes={"r": tuple(float(v) for v in r_values)},
        **kwargs,
    )


def compute_figure2(
    config: ExperimentConfig, r_values: Sequence[float], epsilon: float
):
    """Run the Figure 2 sweep and assemble its legacy result object."""
    from repro.experiments.figure2 import Figure2Result

    results = _run(figure2_study(config, r_values=r_values, epsilon=epsilon), config)
    means, weighted = [], []
    for r in r_values:
        replicated = _replicated(results.filter(r=float(r)))
        means.append(replicated.mean_flowtime)
        weighted.append(replicated.weighted_mean_flowtime)
    return Figure2Result(
        r_values=tuple(r_values),
        mean_flowtimes=tuple(means),
        weighted_mean_flowtimes=tuple(weighted),
        epsilon=epsilon,
    )


# -------------------------------------------------------- figure 3 (cluster size)


def figure3_study(
    config: Optional[ExperimentConfig] = None,
    machine_fractions: Sequence[float] = (),
) -> Study:
    """SRPTMS+C swept over cluster-size fractions (Figure 3's axes product)."""
    config = _config(config)
    return Study(
        name="figure3",
        schedulers=("SRPTMS+C",),
        axes={"machine_fraction": tuple(float(f) for f in machine_fractions)},
        **_base_study_kwargs(config),
    )


def compute_figure3(config: ExperimentConfig, machine_fractions: Sequence[float]):
    """Run the Figure 3 sweep and assemble its legacy result object."""
    from repro.experiments.figure3 import Figure3Result

    results = _run(figure3_study(config, machine_fractions=machine_fractions), config)
    full_cluster = config.machines
    counts, means, weighted = [], [], []
    for fraction in machine_fractions:
        counts.append(max(1, int(round(full_cluster * fraction))))
        replicated = _replicated(results.filter(machine_fraction=float(fraction)))
        means.append(replicated.mean_flowtime)
        weighted.append(replicated.weighted_mean_flowtime)
    return Figure3Result(
        machine_counts=tuple(counts),
        mean_flowtimes=tuple(means),
        weighted_mean_flowtimes=tuple(weighted),
        epsilon=config.epsilon,
        r=config.r,
    )


# ------------------------------------------------------------------- table II


def table2_study(config: Optional[ExperimentConfig] = None) -> Study:
    """Table II as a zero-run study: pure statistics of the workload axis."""
    config = _config(config)
    return Study(
        name="table2",
        schedulers=(),  # nothing to simulate: the workload itself is the result
        seeds=config.seeds,
        scale=config.scale,
        trace_seed=config.trace_seed,
        within_job_cv=config.within_job_cv,
    )


def compute_table2(config: ExperimentConfig):
    """Generate the study's trace and compute its Table II statistics."""
    from repro.experiments.table2 import Table2Result

    study = table2_study(config)
    trace = generate_google_trace(
        GoogleTraceConfig(scale=study.scale, within_job_cv=study.within_job_cv),
        seed=study.trace_seed,
    )
    rng = np.random.default_rng(study.trace_seed)
    return Table2Result(statistics=trace.statistics(rng=rng), scale=study.scale)


# -------------------------------------------------------------- offline bound


def offline_bound_study(
    config: Optional[ExperimentConfig] = None,
    *,
    job_sizes: Sequence[int] = (),
    num_machines: int = 20,
    mean_duration: float = 10.0,
    noisy_cv: float = 0.3,
    r: float = 3.0,
    weights: Optional[Sequence[float]] = None,
) -> Study:
    """Algorithm 1 on deterministic and noisy bulk arrivals, as one product.

    The axes are workloads (deterministic/noisy task durations) x r
    (``0`` for the Remark 2 regime, ``r`` for the Theorem 1 regime); the
    report consumes only the two diagonal cells, which
    :func:`compute_offline_bound` selects at run time (``Study.run``'s
    ``select`` hook), so just two simulations execute.
    """
    config = _config(config)

    def bulk_table(cv: float) -> Dict[str, object]:
        table: Dict[str, object] = {
            "kind": "bulk",
            "job_sizes": tuple(int(size) for size in job_sizes),
            "mean_duration": float(mean_duration),
            "cv": float(cv),
        }
        if weights is not None:
            table["weights"] = tuple(float(w) for w in weights)
        return table

    r_axis = (0.0, float(r)) if r != 0.0 else (0.0,)
    return Study(
        name="offline-bound",
        schedulers=("Offline",),
        workloads=(
            ("deterministic", bulk_table(0.0)),
            ("noisy", bulk_table(noisy_cv)),
        ),
        seeds=(config.seeds[0],),
        axes={"r": r_axis},
        machines=num_machines,
        scale=config.scale,
    )


def compute_offline_bound(
    config: ExperimentConfig,
    *,
    job_sizes: Sequence[int],
    num_machines: int,
    mean_duration: float,
    noisy_cv: float,
    r: float,
    weights: Optional[Sequence[float]],
):
    """Run the offline-bound study and assemble its legacy result object."""
    from repro.experiments.offline_bound import OfflineBoundResult

    study = offline_bound_study(
        config,
        job_sizes=job_sizes,
        num_machines=num_machines,
        mean_duration=mean_duration,
        noisy_cv=noisy_cv,
        r=r,
        weights=weights,
    )
    # Only the diagonal of the workloads x r product is reported, and only
    # it is simulated (same two engine runs as the legacy driver).
    wanted = {("deterministic", 0.0), ("noisy", float(r))}
    results = _run(
        study,
        config,
        select=lambda point: (
            dict(point.coords)["workload"],
            dict(point.coords)["r"],
        )
        in wanted,
    )
    workloads = {ref.label: ref for ref in study.workloads}
    deterministic = results.filter(workload="deterministic", r=0.0).results[0]
    noisy = results.filter(workload="noisy", r=float(r)).results[0]
    # The bound check reads the trace's job specs; rebuilding from the
    # workload recipe yields content-identical traces (bulk traces are a
    # pure function of their arguments).
    deterministic_report = offline_bound_check(
        deterministic,
        workloads["deterministic"].resolve(None).build(),
        num_machines,
        r=0.0,
    )
    noisy_report = offline_bound_check(
        noisy, workloads["noisy"].resolve(None).build(), num_machines, r=r
    )
    return OfflineBoundResult(
        deterministic=deterministic_report,
        noisy=noisy_report,
        r=r,
        num_machines=num_machines,
    )


# -------------------------------------------------------------- scenario sweep

#: The cloning policy the sweep studies plus its baselines, in report order.
SWEEP_SCHEDULERS: Tuple[str, ...] = ("SCA", "LATE", "Mantri", "Fair")


def _sweep_scenario_label(axis: str, value: float) -> str:
    return "base" if value == 0.0 else f"{axis}:{value:g}"


def scenario_sweep_study(
    config: Optional[ExperimentConfig] = None,
    *,
    speed_spreads: Sequence[float] = (),
    failure_rates: Sequence[float] = (),
    mean_repair: float = 300.0,
) -> Study:
    """Both adversity axes of the scenario sweep as one scenario axis.

    The two sweeps share their zero point (the homogeneous cluster), so it
    appears once, labelled ``base`` -- exactly the deduplication the legacy
    driver performed by tagging.  Every scenario is declared through knob
    tables, so this study round-trips through spec files.
    """
    config = _config(config)
    scenarios: list = []
    seen_labels = set()

    def add(label: str, table) -> None:
        # Duplicate axis values collapse to one scenario (the legacy
        # driver's seen-tags dedup), and 'base' appears only when some
        # axis actually contains the zero point.
        if label not in seen_labels:
            seen_labels.add(label)
            scenarios.append((label, table))

    for spread in speed_spreads:
        if spread == 0.0:
            add("base", None)
        else:
            add(_sweep_scenario_label("hetero", spread), {"speed_spread": spread})
    for rate in failure_rates:
        if rate == 0.0:
            add("base", None)
        else:
            add(
                _sweep_scenario_label("failure", rate),
                {"failure_rate": rate, "mean_repair": mean_repair},
            )
    kwargs = _base_study_kwargs(config)
    kwargs["scenarios"] = tuple(scenarios)
    return Study(name="scenario-sweep", schedulers=SWEEP_SCHEDULERS, **kwargs)


def compute_scenario_sweep(
    config: ExperimentConfig,
    *,
    speed_spreads: Sequence[float],
    failure_rates: Sequence[float],
    mean_repair: float,
):
    """Run the scenario sweep and assemble its legacy result object."""
    from repro.experiments.scenario_sweep import ScenarioSweepResult

    study = scenario_sweep_study(
        config,
        speed_spreads=speed_spreads,
        failure_rates=failure_rates,
        mean_repair=mean_repair,
    )
    results = _run(study, config)

    def mean_flowtime(axis: str, value: float, scheduler: str) -> float:
        group = results.filter(
            scenario=_sweep_scenario_label(axis, value), scheduler=scheduler
        )
        return _replicated(group).mean_flowtime

    hetero = {
        name: tuple(
            mean_flowtime("hetero", spread, name) for spread in speed_spreads
        )
        for name in SWEEP_SCHEDULERS
    }
    failures = {
        name: tuple(
            mean_flowtime("failure", rate, name) for rate in failure_rates
        )
        for name in SWEEP_SCHEDULERS
    }
    return ScenarioSweepResult(
        speed_spreads=tuple(speed_spreads),
        failure_rates=tuple(failure_rates),
        schedulers=SWEEP_SCHEDULERS,
        hetero_flowtimes=hetero,
        failure_flowtimes=failures,
        mean_repair=mean_repair,
    )


# --------------------------------------------------------------- policy grid


def policy_grid_study(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> Study:
    """Novel policy compositions + SRPTMS+C across scenario presets.

    The scheduler axis holds the reference (``SRPTMS+C``) followed by the
    composition triples of the grid (``"srpt+greedy+late"`` style, see
    :mod:`repro.policies`); the scenario axis holds named presets, so the
    whole study round-trips through spec files.
    """
    from repro.experiments.policy_grid import (
        DEFAULT_GRID,
        DEFAULT_GRID_SCENARIOS,
        REFERENCE_SCHEDULER,
    )

    config = _config(config)
    grid = tuple(grid) if grid is not None else DEFAULT_GRID
    scenarios = (
        tuple(scenarios) if scenarios is not None else DEFAULT_GRID_SCENARIOS
    )
    kwargs = _base_study_kwargs(config)
    kwargs["scenarios"] = scenarios
    return Study(
        name="policy-grid",
        schedulers=(REFERENCE_SCHEDULER,) + grid,
        **kwargs,
    )


def compute_policy_grid(
    config: ExperimentConfig,
    *,
    grid: Sequence[str],
    scenarios: Sequence[str],
):
    """Run the policy-grid study and assemble its result object."""
    from repro.experiments.policy_grid import (
        PolicyGridResult,
        REFERENCE_SCHEDULER,
    )

    study = policy_grid_study(config, grid=grid, scenarios=scenarios)
    results = _run(study, config)
    names = (REFERENCE_SCHEDULER,) + tuple(grid)
    scenario_labels = tuple(ref.label for ref in study.scenarios)
    means: Dict[str, Dict[str, float]] = {}
    weighted: Dict[str, Dict[str, float]] = {}
    redundant: Dict[str, Dict[str, float]] = {}
    for label in scenario_labels:
        means[label] = {}
        weighted[label] = {}
        redundant[label] = {}
        for name in names:
            group = results.filter(scenario=label, scheduler=name)
            replicated = _replicated(group)
            means[label][name] = replicated.mean_flowtime
            weighted[label][name] = replicated.weighted_mean_flowtime
            redundant[label][name] = float(
                np.mean(
                    [r.redundant_copies_launched for r in group.results]
                )
            )
    return PolicyGridResult(
        scenarios=scenario_labels,
        compositions=tuple(grid),
        reference=REFERENCE_SCHEDULER,
        mean_flowtimes=means,
        weighted_mean_flowtimes=weighted,
        redundant_copies=redundant,
    )


# ------------------------------------------------------------ dag redundancy


def dag_redundancy_study(
    config: Optional[ExperimentConfig] = None,
    *,
    redundancies: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence] = None,
    workloads: Optional[Sequence] = None,
) -> Study:
    """Redundancy policies on DAG workloads under failure-heavy scenarios.

    The scheduler axis holds one ``srpt+greedy+<redundancy>`` composition
    per policy (redundancy is the only varying factor); the workload axis
    holds the DAG stream recipes (multi-round chain, fan-out/fan-in
    diamond); the scenario axis holds failure-heavy knob tables.  All axes
    are declarative, so the study round-trips through spec files.
    """
    from repro.experiments.dag_redundancy import (
        DEFAULT_DAG_MACHINES,
        DEFAULT_DAG_WORKLOADS,
        DEFAULT_FAILURE_SCENARIOS,
        DEFAULT_REDUNDANCIES,
        composition_of,
    )

    config = _config(config)
    redundancies = (
        tuple(redundancies) if redundancies is not None else DEFAULT_REDUNDANCIES
    )
    scenarios = (
        tuple(scenarios) if scenarios is not None else DEFAULT_FAILURE_SCENARIOS
    )
    workloads = (
        tuple(workloads) if workloads is not None else DEFAULT_DAG_WORKLOADS
    )
    return Study(
        name="dag-redundancy",
        schedulers=tuple(composition_of(name) for name in redundancies),
        scenarios=scenarios,
        workloads=workloads,
        seeds=config.seeds,
        scale=config.scale,
        r=config.r,
        epsilon=config.epsilon,
        machines=DEFAULT_DAG_MACHINES,
    )


def compute_dag_redundancy(
    config: ExperimentConfig,
    *,
    redundancies: Sequence[str],
    scenarios: Sequence,
    workloads: Sequence,
):
    """Run the dag-redundancy study and assemble its result object."""
    from repro.experiments.dag_redundancy import (
        BASELINE_REDUNDANCY,
        DagRedundancyResult,
        composition_of,
    )

    study = dag_redundancy_study(
        config,
        redundancies=redundancies,
        scenarios=scenarios,
        workloads=workloads,
    )
    results = _run(study, config)
    scenario_labels = tuple(ref.label for ref in study.scenarios)
    workload_labels = tuple(ref.label for ref in study.workloads)
    means: Dict[str, Dict[str, Dict[str, float]]] = {}
    kills: Dict[str, Dict[str, float]] = {}
    resumes: Dict[str, Dict[str, float]] = {}
    saved: Dict[str, Dict[str, float]] = {}
    for scenario in scenario_labels:
        means[scenario] = {w: {} for w in workload_labels}
        kills[scenario] = {}
        resumes[scenario] = {}
        saved[scenario] = {}
        for name in redundancies:
            scheduler = composition_of(name)
            kill_total = resume_total = saved_total = 0.0
            for workload in workload_labels:
                group = results.filter(
                    scenario=scenario, workload=workload, scheduler=scheduler
                )
                replicated = _replicated(group)
                means[scenario][workload][name] = replicated.mean_flowtime
                kill_total += float(
                    np.mean([r.copies_killed_by_failure for r in group.results])
                )
                resume_total += float(
                    np.mean([r.checkpoint_resumes for r in group.results])
                )
                saved_total += float(
                    np.mean(
                        [r.work_saved_by_checkpointing for r in group.results]
                    )
                )
            kills[scenario][name] = kill_total
            resumes[scenario][name] = resume_total
            saved[scenario][name] = saved_total
    return DagRedundancyResult(
        scenarios=scenario_labels,
        workloads=workload_labels,
        redundancies=tuple(redundancies),
        baseline=BASELINE_REDUNDANCY,
        mean_flowtimes=means,
        failure_kills=kills,
        checkpoint_resumes=resumes,
        work_saved=saved,
    )


# ----------------------------------------------------------------- locality


def locality_study(
    config: Optional[ExperimentConfig] = None,
    *,
    schedulers: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence] = None,
    workloads: Optional[Sequence] = None,
) -> Study:
    """Placement policies on a flat cluster vs a multi-rack topology.

    The scheduler axis varies the allocation policy (placement-blind
    ``greedy`` vs delay-scheduling ``delay``, each with and without
    cloning) over a fixed SRPT ordering; the scenario axis holds the same
    failure process with and without a rack topology; the workload axis
    holds a Poisson stream recipe.  All axes are declarative, so the study
    round-trips through spec files.
    """
    from repro.experiments.locality import (
        DEFAULT_LOCALITY_MACHINES,
        DEFAULT_LOCALITY_SCHEDULERS,
        DEFAULT_LOCALITY_WORKLOADS,
        DEFAULT_TOPOLOGY_SCENARIOS,
    )

    config = _config(config)
    schedulers = (
        tuple(schedulers)
        if schedulers is not None
        else DEFAULT_LOCALITY_SCHEDULERS
    )
    scenarios = (
        tuple(scenarios) if scenarios is not None else DEFAULT_TOPOLOGY_SCENARIOS
    )
    workloads = (
        tuple(workloads) if workloads is not None else DEFAULT_LOCALITY_WORKLOADS
    )
    return Study(
        name="locality",
        schedulers=schedulers,
        scenarios=scenarios,
        workloads=workloads,
        seeds=config.seeds,
        scale=config.scale,
        r=config.r,
        epsilon=config.epsilon,
        machines=DEFAULT_LOCALITY_MACHINES,
    )


def compute_locality(
    config: ExperimentConfig,
    *,
    schedulers: Sequence[str],
    scenarios: Sequence,
    workloads: Sequence,
):
    """Run the locality study and assemble its result object."""
    from repro.experiments.locality import BASELINE_SCHEDULER, LocalityResult

    study = locality_study(
        config,
        schedulers=schedulers,
        scenarios=scenarios,
        workloads=workloads,
    )
    results = _run(study, config)
    scenario_labels = tuple(ref.label for ref in study.scenarios)
    means: Dict[str, Dict[str, float]] = {}
    local: Dict[str, Dict[str, float]] = {}
    remote: Dict[str, Dict[str, float]] = {}
    for scenario in scenario_labels:
        means[scenario] = {}
        local[scenario] = {}
        remote[scenario] = {}
        for name in schedulers:
            group = results.filter(scenario=scenario, scheduler=name)
            replicated = _replicated(group)
            means[scenario][name] = replicated.mean_flowtime
            local[scenario][name] = float(
                np.mean([r.local_launches for r in group.results])
            )
            remote[scenario][name] = float(
                np.mean([r.remote_launches for r in group.results])
            )
    return LocalityResult(
        scenarios=scenario_labels,
        schedulers=tuple(schedulers),
        baseline=BASELINE_SCHEDULER,
        mean_flowtimes=means,
        local_launches=local,
        remote_launches=remote,
    )


# ------------------------------------------------------------------- registry


@dataclass(frozen=True)
class StudyPreset:
    """A named, ready-to-run study: its builder and its report function."""

    name: str
    build: Callable[[Optional[ExperimentConfig]], Study]
    report: Callable[[Optional[ExperimentConfig]], str]


def _figure1_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.figure1 import run_figure1

    return run_figure1(config).render()


def _figure2_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.figure2 import run_figure2

    return run_figure2(config).render()


def _figure3_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.figure3 import run_figure3

    return run_figure3(config).render()


def _figure4_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.figure4 import run_figure4

    return run_figure4(config).render()


def _figure5_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.figure5 import run_figure5

    return run_figure5(config).render()


def _figure6_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.figure6 import run_figure6

    return run_figure6(config).render()


def _table2_report(config: Optional[ExperimentConfig] = None) -> str:
    return compute_table2(_config(config)).render()


def _offline_bound_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.offline_bound import run_offline_bound

    return run_offline_bound(config).render()


def _scenario_sweep_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.scenario_sweep import run_scenario_sweep

    return run_scenario_sweep(config).render()


def _policy_grid_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.policy_grid import run_policy_grid

    return run_policy_grid(config).render()


def _dag_redundancy_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.dag_redundancy import run_dag_redundancy

    return run_dag_redundancy(config).render()


def _locality_report(config: Optional[ExperimentConfig] = None) -> str:
    from repro.experiments.locality import run_locality

    return run_locality(config).render()


def _default_figure1_study(config: Optional[ExperimentConfig] = None) -> Study:
    from repro.experiments.figure1 import DEFAULT_EPSILONS

    return figure1_study(config, epsilons=DEFAULT_EPSILONS, r=0.0)


def _default_figure2_study(config: Optional[ExperimentConfig] = None) -> Study:
    from repro.experiments.figure2 import DEFAULT_R_VALUES

    return figure2_study(config, r_values=DEFAULT_R_VALUES, epsilon=0.6)


def _default_figure3_study(config: Optional[ExperimentConfig] = None) -> Study:
    from repro.experiments.figure3 import DEFAULT_MACHINE_FRACTIONS

    return figure3_study(config, machine_fractions=DEFAULT_MACHINE_FRACTIONS)


def _default_offline_bound_study(
    config: Optional[ExperimentConfig] = None,
) -> Study:
    from repro.experiments.offline_bound import DEFAULT_JOB_SIZES

    return offline_bound_study(config, job_sizes=DEFAULT_JOB_SIZES)


def _default_scenario_sweep_study(
    config: Optional[ExperimentConfig] = None,
) -> Study:
    from repro.experiments.scenario_sweep import (
        DEFAULT_FAILURE_RATES,
        DEFAULT_SPEED_SPREADS,
    )
    from repro.scenarios import DEFAULT_MEAN_REPAIR

    return scenario_sweep_study(
        config,
        speed_spreads=DEFAULT_SPEED_SPREADS,
        failure_rates=DEFAULT_FAILURE_RATES,
        mean_repair=DEFAULT_MEAN_REPAIR,
    )


#: All nine legacy drivers plus the policy-grid sweep, by their CLI names.
STUDY_PRESETS: Dict[str, StudyPreset] = {
    "table2": StudyPreset("table2", table2_study, _table2_report),
    "figure1": StudyPreset("figure1", _default_figure1_study, _figure1_report),
    "figure2": StudyPreset("figure2", _default_figure2_study, _figure2_report),
    "figure3": StudyPreset("figure3", _default_figure3_study, _figure3_report),
    "figure4": StudyPreset("figure4", comparison_study, _figure4_report),
    "figure5": StudyPreset("figure5", comparison_study, _figure5_report),
    "figure6": StudyPreset("figure6", comparison_study, _figure6_report),
    "offline-bound": StudyPreset(
        "offline-bound", _default_offline_bound_study, _offline_bound_report
    ),
    "scenario-sweep": StudyPreset(
        "scenario-sweep", _default_scenario_sweep_study, _scenario_sweep_report
    ),
    "policy-grid": StudyPreset(
        "policy-grid", policy_grid_study, _policy_grid_report
    ),
    "dag-redundancy": StudyPreset(
        "dag-redundancy", dag_redundancy_study, _dag_redundancy_report
    ),
    "locality": StudyPreset("locality", locality_study, _locality_report),
}


def preset_study(name: str, config: Optional[ExperimentConfig] = None) -> Study:
    """The default study a named preset sweeps (see :data:`STUDY_PRESETS`)."""
    try:
        preset = STUDY_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(STUDY_PRESETS))
        raise KeyError(f"unknown preset {name!r}; known presets: {known}") from None
    return preset.build(config)


def run_preset_report(name: str, config: Optional[ExperimentConfig] = None) -> str:
    """Run a named preset end to end and return its plain-text report."""
    try:
        preset = STUDY_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(STUDY_PRESETS))
        raise KeyError(f"unknown preset {name!r}; known presets: {known}") from None
    return preset.report(config)
