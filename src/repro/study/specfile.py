"""Study spec files: TOML/JSON <-> :class:`~repro.study.core.Study`.

A spec file is a single ``[study]`` table describing the axes product, so
new scheduler/scenario sweeps need zero new code -- write a file, run
``repro-mapreduce sweep --spec study.toml``::

    [study]
    name = "clone-vs-adversity"
    schedulers = ["SCA", "LATE", "Mantri"]
    scenarios = ["none", { speed_spread = 0.5 }, "failures"]
    seeds = [0, 1, 2]
    scale = 0.01

    [study.axes]
    epsilon = [0.4, 0.6, 0.8]

Parsing is strict: unknown keys are rejected with the allowed-key list in
the error (a typo must fail loudly, not silently drop an axis), and
``study_from_dict(study_to_dict(study)) == study`` round-trips exactly --
as do the TOML and JSON encodings built on it.  Raw
Trace/ScenarioSpec objects embedded in a Python-constructed study have no
declarative form and raise :class:`StudySpecError` on serialisation.

TOML *reading* needs :mod:`tomllib` (Python >= 3.11); on older
interpreters use the JSON encoding.  TOML *writing* uses a minimal
emitter local to this module (the stdlib has no TOML writer).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    tomllib = None

from repro.study.core import ScenarioRef, SchedulerRef, Study, WorkloadRef

__all__ = [
    "StudySpecError",
    "study_to_dict",
    "study_from_dict",
    "study_to_toml",
    "study_from_toml",
    "study_to_json",
    "study_from_json",
    "load_study",
    "dump_study",
]


class StudySpecError(ValueError):
    """A spec file (or dict) does not describe a valid study."""


#: Scalar study fields that serialise verbatim, with their coercions.
_SCALAR_FIELDS = {
    "name": str,
    "scale": float,
    "epsilon": float,
    "r": float,
    "machines": int,
    "trace_seed": int,
    "within_job_cv": float,
    "max_time": float,
}

_ALLOWED_KEYS = frozenset(_SCALAR_FIELDS) | {
    "schedulers",
    "scenarios",
    "workloads",
    "seeds",
    "axes",
}


# ------------------------------------------------------------- dict encoding


def _scheduler_decl(ref: SchedulerRef) -> Union[str, Dict[str, Any]]:
    if not ref.kwargs and ref.label == ref.default_label():
        return ref.name
    decl: Dict[str, Any] = {"name": ref.name, **dict(ref.kwargs)}
    if ref.label != ref.default_label():
        decl["label"] = ref.label
    return decl


def _scenario_decl(ref: ScenarioRef) -> Union[str, Dict[str, Any]]:
    if ref.decl == "object":
        raise StudySpecError(
            f"scenario {ref.label!r} was built from a raw ScenarioSpec and "
            "has no spec-file form; use a preset name or a knob table "
            "(speed_spread/failure_rate/...) instead"
        )
    if ref.decl is None:
        return "none" if ref.label == ref.default_label() else {"label": ref.label}
    if isinstance(ref.decl, str):
        return ref.decl
    decl = dict(ref.decl)
    if ref.label != ref.default_label():
        decl["label"] = ref.label
    return decl


def _workload_decl(ref: WorkloadRef) -> Union[str, Dict[str, Any]]:
    if ref.kind == "object":
        raise StudySpecError(
            f"workload {ref.label!r} wraps a raw trace object and has no "
            "spec-file form; use 'google' or a {'kind': 'stream', ...} table"
        )
    params = dict(ref.params)
    if ref.kind == "google":
        if not params and ref.label == ref.default_label():
            return "google"
        decl: Dict[str, Any] = {"kind": "google", **params}
        if ref.label != ref.default_label():
            decl["label"] = ref.label
        return decl
    if ref.kind == "bulk":
        decl = {"kind": "bulk"}
        for key, value in ref.params:
            decl[key] = list(value) if isinstance(value, tuple) else value
        if ref.label != ref.default_label():
            decl["label"] = ref.label
        return decl
    factory = params.pop("factory")
    num_jobs = params.pop("num_jobs")
    decl = {"kind": "stream", "factory": factory, "num_jobs": num_jobs, **params}
    if ref.label != ref.default_label():
        decl["label"] = ref.label
    return decl


def study_to_dict(study: Study) -> Dict[str, Any]:
    """The study as a plain, JSON/TOML-serialisable ``{"study": ...}`` dict."""
    table: Dict[str, Any] = {"name": study.name}
    for key in ("scale", "epsilon", "r", "trace_seed", "within_job_cv"):
        table[key] = getattr(study, key)
    if study.machines is not None:
        table["machines"] = study.machines
    if study.max_time is not None:
        table["max_time"] = study.max_time
    table["seeds"] = list(study.seeds)
    table["schedulers"] = [_scheduler_decl(ref) for ref in study.schedulers]
    table["scenarios"] = [_scenario_decl(ref) for ref in study.scenarios]
    table["workloads"] = [_workload_decl(ref) for ref in study.workloads]
    if study.axes:
        table["axes"] = {name: list(values) for name, values in study.axes}
    return {"study": table}


def study_from_dict(data: Mapping[str, Any]) -> Study:
    """Build a :class:`Study` from :func:`study_to_dict`'s encoding.

    Unknown keys -- at the top level and inside the study table -- raise
    :class:`StudySpecError` naming the offender and the allowed keys.
    """
    if not isinstance(data, Mapping):
        raise StudySpecError(f"a study spec must be a mapping, got {data!r}")
    unknown = set(data) - {"study"}
    if unknown:
        raise StudySpecError(
            f"unknown top-level keys {sorted(unknown)}; a spec file holds a "
            "single [study] table"
        )
    if "study" not in data:
        raise StudySpecError("missing the [study] table")
    table = data["study"]
    if not isinstance(table, Mapping):
        raise StudySpecError(f"[study] must be a table, got {table!r}")
    unknown = set(table) - _ALLOWED_KEYS
    if unknown:
        raise StudySpecError(
            f"unknown [study] keys {sorted(unknown)}; "
            f"allowed: {sorted(_ALLOWED_KEYS)}"
        )
    if "name" not in table:
        raise StudySpecError("[study] needs a 'name'")
    kwargs: Dict[str, Any] = {}
    for key, coerce in _SCALAR_FIELDS.items():
        if key in table:
            try:
                kwargs[key] = coerce(table[key])
            except (TypeError, ValueError) as exc:
                raise StudySpecError(f"[study] {key}: {exc}") from None
    for key in ("schedulers", "scenarios", "workloads", "seeds"):
        if key in table:
            value = table[key]
            if not isinstance(value, (list, tuple)):
                raise StudySpecError(f"[study] {key} must be an array")
            kwargs[key] = tuple(value)
    if "axes" in table:
        axes = table["axes"]
        if not isinstance(axes, Mapping):
            raise StudySpecError("[study.axes] must be a table of arrays")
        kwargs["axes"] = {name: tuple(values) for name, values in axes.items()}
    try:
        return Study(**kwargs)
    except (TypeError, ValueError) as exc:
        raise StudySpecError(str(exc)) from exc


# ------------------------------------------------------------- TOML encoding


def _toml_value(value: Any) -> str:
    """Render one value in TOML syntax (strings, numbers, arrays, tables)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return json.dumps(value)  # valid TOML basic string
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise StudySpecError(f"cannot encode non-finite float {value!r}")
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    if isinstance(value, Mapping):
        items = ", ".join(f"{key} = {_toml_value(v)}" for key, v in value.items())
        return "{" + items + "}"
    raise StudySpecError(f"cannot encode {value!r} in a spec file")


def study_to_toml(study: Study) -> str:
    """The study as a TOML document (one ``[study]`` table)."""
    table = study_to_dict(study)["study"]
    axes = table.pop("axes", None)
    lines = ["[study]"]
    for key, value in table.items():
        lines.append(f"{key} = {_toml_value(value)}")
    if axes:
        lines.append("")
        lines.append("[study.axes]")
        for name, values in axes.items():
            lines.append(f"{name} = {_toml_value(values)}")
    return "\n".join(lines) + "\n"


def study_from_toml(text: str) -> Study:
    """Parse a TOML spec document into a :class:`Study`."""
    if tomllib is None:  # pragma: no cover - Python < 3.11
        raise StudySpecError(
            "reading TOML spec files needs Python >= 3.11 (tomllib); "
            "use the JSON encoding instead"
        )
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise StudySpecError(f"invalid TOML: {exc}") from None
    return study_from_dict(data)


# ------------------------------------------------------------- JSON encoding


def study_to_json(study: Study) -> str:
    """The study as a JSON document (same shape as the TOML encoding)."""
    return json.dumps(study_to_dict(study), indent=2)


def study_from_json(text: str) -> Study:
    """Parse a JSON spec document into a :class:`Study`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StudySpecError(f"invalid JSON: {exc}") from None
    return study_from_dict(data)


# ------------------------------------------------------------------- files


def load_study(path: Union[str, Path]) -> Study:
    """Load a study spec file, dispatching on the ``.toml``/``.json`` suffix."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise StudySpecError(f"cannot read spec file {path}: {exc}") from None
    suffix = path.suffix.lower()
    if suffix == ".toml":
        return study_from_toml(text)
    if suffix == ".json":
        return study_from_json(text)
    raise StudySpecError(
        f"unsupported spec-file suffix {suffix!r} (use .toml or .json)"
    )


def dump_study(study: Study, path: Union[str, Path]) -> None:
    """Write a study spec file, dispatching on the ``.toml``/``.json`` suffix."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        path.write_text(study_to_toml(study))
    elif suffix == ".json":
        path.write_text(study_to_json(study) + "\n")
    else:
        raise StudySpecError(
            f"unsupported spec-file suffix {suffix!r} (use .toml or .json)"
        )
