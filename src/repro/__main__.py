"""Allow ``python -m repro <experiment>`` as an alias of the console script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
