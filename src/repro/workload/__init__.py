"""Workload substrate: job/task data model, duration distributions and traces.

This subpackage provides everything the schedulers consume as *input*:

* :mod:`repro.workload.distributions` -- task-duration distributions with
  known first and second moments (the only statistics the paper's algorithms
  are allowed to use).
* :mod:`repro.workload.job` -- the ``JobSpec`` / ``Job`` / ``Task`` /
  ``TaskCopy`` data model including the Map/Reduce precedence state machine.
* :mod:`repro.workload.trace` -- a container of job specs plus the Table II
  statistics.
* :mod:`repro.workload.google_trace` -- a synthetic generator calibrated to
  the Google cluster-usage trace statistics published in the paper.
* :mod:`repro.workload.generators` -- additional synthetic workloads used by
  the tests, examples and ablation benchmarks.
* :mod:`repro.workload.stream` -- the streaming workload layer: picklable
  :class:`StreamSpec` recipes and lazily generated, bounded-memory
  :class:`TraceStream` sources for million-job experiments.
"""

from repro.workload.distributions import (
    BoundedPareto,
    Deterministic,
    DurationDistribution,
    Empirical,
    Exponential,
    Floored,
    LogNormal,
    ShiftedExponential,
    TruncatedNormal,
    Uniform,
)
from repro.workload.job import (
    Job,
    JobSpec,
    Phase,
    Task,
    TaskCopy,
    TaskStatus,
)
from repro.workload.trace import Trace, TraceStatistics
from repro.workload.google_trace import GoogleTraceGenerator, GoogleTraceConfig
from repro.workload.generators import (
    bimodal_trace,
    bulk_arrival_trace,
    poisson_trace,
    uniform_trace,
)
from repro.workload.stream import (
    StreamSpec,
    TraceStream,
    stream_heavy_tail_jobs,
    stream_poisson_jobs,
    stream_uniform_jobs,
)

__all__ = [
    "BoundedPareto",
    "Deterministic",
    "DurationDistribution",
    "Empirical",
    "Exponential",
    "Floored",
    "LogNormal",
    "ShiftedExponential",
    "TruncatedNormal",
    "Uniform",
    "Job",
    "JobSpec",
    "Phase",
    "Task",
    "TaskCopy",
    "TaskStatus",
    "Trace",
    "TraceStatistics",
    "GoogleTraceGenerator",
    "GoogleTraceConfig",
    "bimodal_trace",
    "bulk_arrival_trace",
    "poisson_trace",
    "uniform_trace",
    "StreamSpec",
    "TraceStream",
    "stream_heavy_tail_jobs",
    "stream_poisson_jobs",
    "stream_uniform_jobs",
]
