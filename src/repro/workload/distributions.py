"""Task-duration distributions with analytically known first and second moments.

The paper's scheduling algorithms (Section III) assume only that the *mean*
``E_i^c`` and *standard deviation* ``sigma_i^c`` of task durations within each
job phase are known a priori.  Every distribution here therefore exposes
``mean`` and ``std`` properties that the schedulers may read, and a
``sample`` method that only the simulator may call (it plays the role of the
physical cluster drawing actual task durations).

The heavy-tailed distributions (:class:`BoundedPareto`, :class:`LogNormal`)
are the ones observed in production MapReduce traces [4, 26]; they are what
creates stragglers in the first place.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "DurationDistribution",
    "Deterministic",
    "Uniform",
    "Exponential",
    "ShiftedExponential",
    "BoundedPareto",
    "LogNormal",
    "TruncatedNormal",
    "Empirical",
    "Floored",
]


class DurationDistribution(ABC):
    """A non-negative random variable describing one task's workload.

    Subclasses must guarantee that every sample is strictly positive: a task
    with zero workload would complete instantaneously and break the
    time-slotted semantics of the simulator.
    """

    @property
    @abstractmethod
    def mean(self) -> float:
        """First moment of the distribution (the ``E_i^c`` of the paper)."""

    @property
    @abstractmethod
    def std(self) -> float:
        """Standard deviation of the distribution (the ``sigma_i^c``)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads.

        Parameters
        ----------
        rng:
            The simulator-owned random generator.  Schedulers never call this.
        size:
            Number of independent draws.
        """

    def sample_one(self, rng: np.random.Generator) -> float:
        """Draw a single workload as a Python float."""
        return float(self.sample(rng, 1)[0])

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` workloads in one vectorized call.

        RNG-consumption contract
        ------------------------
        ``sample_batch(rng, n)`` must advance ``rng`` exactly as ``n``
        successive ``sample(rng, 1)`` calls would, and return the same
        values in the same order.  Batching is then *invisible* to every
        consumer: splitting one batch into two, fusing adjacent batches,
        or replacing a per-task sampling loop with one batched draw
        leaves the stream of drawn durations -- and therefore every
        simulation fingerprint -- bit-identical.

        The default delegates to :meth:`sample`, which satisfies the
        contract for every distribution in this module: each implements
        ``sample`` as a single vectorized ``numpy.random.Generator``
        call, and the Generator fills its output element by element from
        the underlying bit stream, so a size-``n`` draw consumes exactly
        the bits of ``n`` size-1 draws (asserted per distribution by
        ``tests/test_sample_batch.py``).  A subclass whose ``sample``
        issues size-*dependent* draws must override this method before it
        can be used on the batched paths (engine arrival pre-sampling,
        stream generation, trace materialisation).
        """
        return self.sample(rng, size)

    def sample_list(self, rng: np.random.Generator, size: int) -> list:
        """Draw ``size`` workloads as a plain Python list.

        Engine hot-path helper: semantically ``sample_batch(...).tolist()``
        and bound by the same RNG-consumption contract.  Subclasses that
        consume no randomness (:class:`Deterministic`) may override it to
        skip the numpy round-trip entirely -- permitted exactly because no
        RNG draw is saved or reordered by doing so.
        """
        return self.sample_batch(rng, size).tolist()

    @property
    def variance(self) -> float:
        """Second central moment."""
        return self.std**2

    @property
    def coefficient_of_variation(self) -> float:
        """``std / mean`` -- the paper's straggler severity knob."""
        if self.mean == 0:
            return 0.0
        return self.std / self.mean

    def scaled(self, factor: float) -> "DurationDistribution":
        """Return a distribution whose samples are multiplied by ``factor``.

        Used by the straggler-injection models and by the trace scaler.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return _Scaled(self, factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(mean={self.mean:.3f}, std={self.std:.3f})"
        )


class _Scaled(DurationDistribution):
    """A distribution multiplied by a positive constant."""

    def __init__(self, base: DurationDistribution, factor: float) -> None:
        self._base = base
        self._factor = float(factor)

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return self._base.mean * self._factor

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return self._base.std * self._factor

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        return self._base.sample(rng, size) * self._factor


class Deterministic(DurationDistribution):
    """A constant workload -- the "negligible variance" regime of Section IV.

    Under this distribution the offline Algorithm 1 is provably 2-competitive
    (Remark 2 of the paper), which the test-suite verifies empirically.
    """

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"deterministic workload must be positive, got {value}")
        self._value = float(value)

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return self._value

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return 0.0

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        return np.full(size, self._value)

    def sample_list(self, rng: np.random.Generator, size: int) -> list:
        """Constant workloads without the numpy round-trip (no RNG use)."""
        return [self._value] * size


class Uniform(DurationDistribution):
    """Uniform workload on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low <= 0:
            raise ValueError(f"low bound must be positive, got {low}")
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self._low = float(low)
        self._high = float(high)

    @property
    def low(self) -> float:
        """Lower bound of the support."""
        return self._low

    @property
    def high(self) -> float:
        """Upper bound of the support."""
        return self._high

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return (self._low + self._high) / 2.0

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return (self._high - self._low) / math.sqrt(12.0)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        return rng.uniform(self._low, self._high, size)


class Exponential(DurationDistribution):
    """Exponential workload with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return self._mean

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return self._mean

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        samples = rng.exponential(self._mean, size)
        # Guard against the measure-zero event of a zero draw.
        return np.maximum(samples, np.finfo(float).tiny)


class ShiftedExponential(DurationDistribution):
    """``shift + Exponential(scale)`` -- a minimum service time plus a tail.

    Models tasks that always pay a fixed startup cost (JVM launch, input
    split fetch) before the data-dependent part of the work.
    """

    def __init__(self, shift: float, scale: float) -> None:
        if shift < 0:
            raise ValueError(f"shift must be non-negative, got {shift}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if shift == 0 and scale == 0:
            raise ValueError("shift and scale cannot both be zero")
        self._shift = float(shift)
        self._scale = float(scale)

    @property
    def shift(self) -> float:
        """Deterministic minimum workload (the shift)."""
        return self._shift

    @property
    def scale(self) -> float:
        """Mean of the exponential part."""
        return self._scale

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return self._shift + self._scale

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return self._scale

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        samples = self._shift + rng.exponential(self._scale, size)
        return np.maximum(samples, np.finfo(float).tiny)


class BoundedPareto(DurationDistribution):
    """Pareto distribution truncated to ``[minimum, maximum]``.

    The paper's Section III-A derives the speedup function from a (pure)
    Pareto tail ``Pr(p < t) = 1 - (mu / t)^alpha``.  Real traces are bounded
    above, so we use the bounded Pareto, whose moments are available in
    closed form.  ``alpha`` close to 1 gives the extreme heavy tail (severe
    stragglers); large ``alpha`` approaches :class:`Deterministic`.
    """

    def __init__(self, minimum: float, maximum: float, alpha: float) -> None:
        if minimum <= 0:
            raise ValueError(f"minimum must be positive, got {minimum}")
        if maximum <= minimum:
            raise ValueError(
                f"maximum ({maximum}) must exceed minimum ({minimum})"
            )
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self._low = float(minimum)
        self._high = float(maximum)
        self._alpha = float(alpha)
        self._mean, self._std = self._moments()

    @property
    def minimum(self) -> float:
        """Lower bound of the support."""
        return self._low

    @property
    def maximum(self) -> float:
        """Upper bound of the support."""
        return self._high

    @property
    def alpha(self) -> float:
        """Pareto tail exponent."""
        return self._alpha

    def _raw_moment(self, k: int) -> float:
        """k-th raw moment of the bounded Pareto."""
        low, high, alpha = self._low, self._high, self._alpha
        if math.isclose(alpha, k):
            # Degenerate case: the generic formula has a 0/0; use the limit.
            ratio = 1.0 - (low / high) ** alpha
            return alpha * low**alpha * math.log(high / low) / ratio
        ratio = 1.0 - (low / high) ** alpha
        numerator = alpha * (low**k) * (1.0 - (low / high) ** (alpha - k))
        return numerator / ((alpha - k) * ratio)

    def _moments(self) -> tuple[float, float]:
        m1 = self._raw_moment(1)
        m2 = self._raw_moment(2)
        variance = max(m2 - m1 * m1, 0.0)
        return m1, math.sqrt(variance)

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return self._mean

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return self._std

    def quantile(self, u) -> np.ndarray:
        """Inverse CDF evaluated at ``u`` (scalar or array in ``[0, 1)``)."""
        u_arr = np.asarray(u, dtype=float)
        if np.any(u_arr < 0.0) or np.any(u_arr >= 1.0):
            raise ValueError("quantile argument must lie in [0, 1)")
        low_a = self._low**self._alpha
        high_a = self._high**self._alpha
        denom = 1.0 - u_arr * (1.0 - low_a / high_a)
        return self._low / np.power(denom, 1.0 / self._alpha)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        # Inverse-CDF sampling of the bounded Pareto.
        """Draw ``size`` independent workloads (see base class)."""
        return self.quantile(rng.uniform(0.0, 1.0, size))

    @classmethod
    def from_mean(
        cls, mean: float, alpha: float, maximum_ratio: float = 50.0
    ) -> "BoundedPareto":
        """Build a bounded Pareto with a target mean.

        The maximum is placed at ``maximum_ratio * minimum`` and the minimum
        is solved numerically so the resulting mean matches ``mean``.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        # Mean scales linearly with the minimum, so one probe suffices.
        probe = cls(1.0, maximum_ratio, alpha)
        minimum = mean / probe.mean
        return cls(minimum, minimum * maximum_ratio, alpha)


class LogNormal(DurationDistribution):
    """Log-normal workload parameterised directly by its mean and std.

    Log-normal task durations are a standard fit for the Google trace's
    task-duration histogram; the generator in
    :mod:`repro.workload.google_trace` uses this class for the per-job task
    duration model.
    """

    def __init__(self, mean: float, std: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        self._mean = float(mean)
        self._std = float(std)
        if std == 0:
            self._mu = math.log(mean)
            self._sigma = 0.0
        else:
            variance_ratio = 1.0 + (std / mean) ** 2
            self._sigma = math.sqrt(math.log(variance_ratio))
            self._mu = math.log(mean) - 0.5 * self._sigma**2

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return self._mean

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return self._std

    @property
    def mu(self) -> float:
        """Location parameter of the underlying normal."""
        return self._mu

    @property
    def sigma(self) -> float:
        """Scale parameter of the underlying normal."""
        return self._sigma

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        if self._sigma == 0.0:
            return np.full(size, self._mean)
        return rng.lognormal(self._mu, self._sigma, size)


class TruncatedNormal(DurationDistribution):
    """Normal distribution truncated below at ``floor`` (default a tiny positive).

    Useful for workloads with mild, symmetric-ish variation.  The reported
    ``mean``/``std`` are the *target* parameters of the untruncated normal;
    for the small coefficients of variation used in the benchmarks the
    truncation bias is negligible, and the scheduler only needs consistent
    moments, not exact ones.
    """

    def __init__(self, mean: float, std: float, floor: float = 1e-6) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        self._mean = float(mean)
        self._std = float(std)
        self._floor = float(floor)

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return self._mean

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return self._std

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        if self._std == 0.0:
            return np.full(size, self._mean)
        samples = rng.normal(self._mean, self._std, size)
        return np.maximum(samples, self._floor)


class Floored(DurationDistribution):
    """Clamp another distribution's samples below at ``floor``.

    Real MapReduce tasks have a minimum service time (container start, split
    fetch); the Google trace's shortest task is 12.8 s.  Wrapping a
    heavy-tailed base distribution in :class:`Floored` reproduces that hard
    minimum.  The reported ``mean``/``std`` are those of the base
    distribution: the clamp only moves a small amount of probability mass
    when the floor sits in the lower tail, and the schedulers treat the
    moments as estimates anyway.
    """

    def __init__(self, base: DurationDistribution, floor: float) -> None:
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        self._base = base
        self._floor = float(floor)

    @property
    def base(self) -> DurationDistribution:
        """The wrapped distribution."""
        return self._base

    @property
    def floor(self) -> float:
        """Minimum workload any sample is clipped to."""
        return self._floor

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return max(self._base.mean, self._floor)

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return self._base.std

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        return np.maximum(self._base.sample(rng, size), self._floor)


class Empirical(DurationDistribution):
    """Resampling distribution backed by observed durations.

    This is how a real deployment would estimate the per-phase duration
    distribution from history: the simulator feeds completed-task durations
    into an :class:`Empirical` and clones draw i.i.d. samples from it
    ("the workload for this clone is just drawn independently from the
    estimated distribution", Section VI).
    """

    def __init__(self, samples: Sequence[float]) -> None:
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ValueError("empirical distribution needs at least one sample")
        if np.any(values <= 0):
            raise ValueError("all empirical samples must be positive")
        self._values = values
        self._mean = float(values.mean())
        self._std = float(values.std(ddof=0))

    @property
    def values(self) -> np.ndarray:
        """The backing samples (read-only copy)."""
        return self._values.copy()

    @property
    def n_samples(self) -> int:
        """Number of empirical samples backing the distribution."""
        return int(self._values.size)

    @property
    def mean(self) -> float:
        """First moment ``E`` of the distribution."""
        return self._mean

    @property
    def std(self) -> float:
        """Standard deviation ``sigma`` of the distribution."""
        return self._std

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent workloads (see base class)."""
        return rng.choice(self._values, size=size, replace=True)

    @classmethod
    def from_distribution(
        cls,
        base: DurationDistribution,
        rng: np.random.Generator,
        n_samples: int = 1000,
    ) -> "Empirical":
        """Estimate an empirical distribution by sampling ``base``."""
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        return cls(base.sample(rng, n_samples))
