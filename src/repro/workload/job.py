"""Job / Task / TaskCopy data model with the MapReduce precedence state machine.

The model mirrors Section III of the paper:

* A job ``J_i`` arrives at time ``a_i`` with weight ``w_i``, ``m_i`` map
  tasks and ``r_i`` reduce tasks.
* Task workloads within a phase are i.i.d. with known mean ``E_i^c`` and
  standard deviation ``sigma_i^c`` (carried here as a
  :class:`~repro.workload.distributions.DurationDistribution` per phase).
* The reduce phase of a job may not make progress until every map task of
  the job has finished (constraint (1g)).  A reduce *copy* may however be
  placed on a machine earlier; it then occupies the machine without doing
  work, exactly as described at the end of Section IV-A.
* A task finishes when its earliest-finishing copy finishes (speedup via
  cloning, Section III-A); the remaining copies are killed and their
  machines are reclaimed.

``JobSpec`` is the immutable description found in a trace.  ``Job``,
``Task`` and ``TaskCopy`` are the mutable runtime objects owned by the
simulation engine.

Performance invariants (the engine hot path depends on these)
-------------------------------------------------------------
``Job``, ``Task`` and ``TaskCopy`` are ``__slots__`` classes, and the
scheduler-facing counters -- unscheduled tasks per phase ``m_i(l)`` /
``r_i(l)``, running copies ``sigma_i(l)``, incomplete tasks per phase --
are maintained *incrementally* on every copy/task state transition instead
of being recomputed by scanning task lists.  A task is counted
"unscheduled" exactly while it is not completed and has no active copy;
the transitions that preserve this invariant are:

* :meth:`Task.add_copy`    -- ``0 -> 1`` active copies: leave unscheduled;
* copy finish/kill         -- ``1 -> 0`` active copies on an incomplete
  task: re-enter unscheduled (this is how a failure-killed copy's task
  becomes schedulable again, exactly once);
* :meth:`Task.complete`    -- an unscheduled-counted task leaving via
  completion is removed from the count.

Consequently ``Job.remaining_effective_workload`` (Equation (4)) and every
priority computation built on it are O(1) per job, which is what makes the
per-event scheduler consultations affordable at million-job scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.workload.distributions import DurationDistribution

__all__ = ["Phase", "TaskStatus", "JobSpec", "Job", "Task", "TaskCopy"]


class Phase(enum.Enum):
    """The two MapReduce phases; ``c`` in the paper's notation."""

    MAP = "map"
    REDUCE = "reduce"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TaskStatus(enum.Enum):
    """Lifecycle of a task (not of an individual copy)."""

    #: No copy has been launched yet.
    PENDING = "pending"
    #: At least one copy has been launched and the task is not finished.
    RUNNING = "running"
    #: The earliest copy finished; the task (and all clones) are done.
    COMPLETED = "completed"


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one job in a trace.

    Attributes
    ----------
    job_id:
        Unique identifier within the trace.
    arrival_time:
        ``a_i`` -- the time (seconds) the job enters the cluster.
    weight:
        ``w_i`` -- the job priority/weight used by weighted flowtime.
    num_map_tasks / num_reduce_tasks:
        ``m_i`` and ``r_i``.
    map_duration / reduce_duration:
        Per-phase task duration distributions.  The schedulers may only read
        ``mean`` and ``std``; the simulator samples actual workloads.
    """

    job_id: int
    arrival_time: float
    weight: float
    num_map_tasks: int
    num_reduce_tasks: int
    map_duration: DurationDistribution
    reduce_duration: DurationDistribution

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.num_map_tasks < 0 or self.num_reduce_tasks < 0:
            raise ValueError("task counts must be non-negative")
        if self.num_map_tasks + self.num_reduce_tasks == 0:
            raise ValueError(f"job {self.job_id} has no tasks")

    def num_tasks(self, phase: Phase) -> int:
        """Number of tasks in ``phase``."""
        if phase is Phase.MAP:
            return self.num_map_tasks
        return self.num_reduce_tasks

    def duration(self, phase: Phase) -> DurationDistribution:
        """Duration distribution of tasks in ``phase``."""
        if phase is Phase.MAP:
            return self.map_duration
        return self.reduce_duration

    @property
    def total_tasks(self) -> int:
        """``m_i + r_i``."""
        return self.num_map_tasks + self.num_reduce_tasks

    @property
    def expected_total_work(self) -> float:
        """Expected sum of task workloads, ``m_i * E_i^m + r_i * E_i^r``."""
        return (
            self.num_map_tasks * self.map_duration.mean
            + self.num_reduce_tasks * self.reduce_duration.mean
        )

    def effective_workload(self, r: float) -> float:
        """``phi_i`` of Equation (2): the variance-adjusted total workload."""
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        return self.num_map_tasks * (
            self.map_duration.mean + r * self.map_duration.std
        ) + self.num_reduce_tasks * (
            self.reduce_duration.mean + r * self.reduce_duration.std
        )


class TaskCopy:
    """One physical copy (the original or a clone) of a task on a machine.

    Attributes
    ----------
    start_time:
        Time at which the copy actually starts consuming CPU.  Equals
        ``launch_time`` for map copies; for reduce copies it is
        ``max(launch_time, map-phase completion)`` and stays ``None`` while
        the copy is blocked behind unfinished map tasks.
    work:
        Raw work units of this copy (post straggler inflation, before the
        hosting machine's speed is applied).  Engine-managed; lets dynamic
        scenarios recompute the wall-clock ``workload`` when the machine's
        effective speed changes.
    finish_version:
        Version of the copy's currently valid finish event
        (engine-managed).  A queued finish event with a smaller version is
        stale.
    """

    __slots__ = (
        "copy_id",
        "task",
        "machine_id",
        "launch_time",
        "workload",
        "start_time",
        "finish_time",
        "killed_at",
        "work",
        "finish_version",
    )

    def __init__(
        self,
        copy_id: int,
        task: "Task",
        machine_id: int,
        launch_time: float,
        workload: float,
        start_time: Optional[float] = None,
        finish_time: Optional[float] = None,
        killed_at: Optional[float] = None,
        work: Optional[float] = None,
        finish_version: int = 0,
    ) -> None:
        if workload <= 0:
            raise ValueError(f"copy workload must be positive, got {workload}")
        if launch_time < 0:
            raise ValueError(f"launch_time must be >= 0, got {launch_time}")
        self.copy_id = copy_id
        self.task = task
        self.machine_id = machine_id
        self.launch_time = launch_time
        self.workload = workload
        self.start_time = start_time
        self.finish_time = finish_time
        self.killed_at = killed_at
        self.work = work
        self.finish_version = finish_version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskCopy(copy_id={self.copy_id}, task={self.task.task_id!r}, "
            f"machine_id={self.machine_id}, launch_time={self.launch_time}, "
            f"workload={self.workload})"
        )

    @property
    def is_finished(self) -> bool:
        """True once the copy has run to completion (and was not killed)."""
        return self.finish_time is not None and self.killed_at is None

    @property
    def is_killed(self) -> bool:
        """True once the copy has been killed (clone lost the race, etc.)."""
        return self.killed_at is not None

    @property
    def is_active(self) -> bool:
        """True while the copy occupies a machine (running or blocked)."""
        return self.finish_time is None and self.killed_at is None

    @property
    def is_blocked(self) -> bool:
        """True for a reduce copy parked behind an unfinished map phase."""
        return self.is_active and self.start_time is None

    def start(self, time: float) -> None:
        """Mark the instant processing begins (engine-only)."""
        if not self.is_active:
            raise ValueError(f"cannot start inactive copy {self.copy_id}")
        if self.start_time is not None:
            raise ValueError(f"copy {self.copy_id} already started")
        if time < self.launch_time:
            raise ValueError(
                f"start time {time} precedes launch time {self.launch_time}"
            )
        self.start_time = time

    def finish(self, time: float) -> None:
        """Mark the copy as finished (engine-only)."""
        if not self.is_active:
            raise ValueError(f"cannot finish inactive copy {self.copy_id}")
        if self.start_time is None:
            raise ValueError(f"copy {self.copy_id} finished without starting")
        self.finish_time = time
        self.task._copy_deactivated()

    def kill(self, time: float) -> None:
        """Kill the copy (its sibling finished first, or the scheduler preempted it)."""
        if not self.is_active:
            raise ValueError(f"cannot kill inactive copy {self.copy_id}")
        self.killed_at = time
        self.task._copy_deactivated()

    @property
    def expected_finish_time(self) -> Optional[float]:
        """``start_time + workload`` if the copy has started, else ``None``."""
        if self.start_time is None:
            return None
        return self.start_time + self.workload

    def elapsed(self, time: float) -> float:
        """Processing time consumed by this copy up to ``time``."""
        if self.start_time is None:
            return 0.0
        end = self.finish_time if self.finish_time is not None else time
        if self.killed_at is not None:
            end = min(end if end is not None else self.killed_at, self.killed_at)
        return max(0.0, min(end, time) - self.start_time)

    def progress(self, time: float) -> float:
        """Fraction of the copy's workload processed by ``time``, in [0, 1]."""
        return min(1.0, self.elapsed(time) / self.workload)

    def remaining_work(self, time: float) -> float:
        """Workload still to be processed at ``time`` (0 once finished)."""
        if self.is_finished:
            return 0.0
        return self.workload - self.elapsed(time)


class Task:
    """One logical map or reduce task ``delta_i^{c,j}``.

    A task may have several :class:`TaskCopy` instances running at once;
    it completes when the first of them completes.  The active-copy count
    is maintained incrementally (see the module docstring) so that
    ``is_scheduled`` / ``num_active_copies`` are O(1).
    """

    __slots__ = ("job", "phase", "index", "copies", "completion_time", "_num_active")

    def __init__(
        self,
        job: "Job",
        phase: Phase,
        index: int,
        copies: Optional[List[TaskCopy]] = None,
        completion_time: Optional[float] = None,
    ) -> None:
        self.job = job
        self.phase = phase
        self.index = index
        self.copies: List[TaskCopy] = [] if copies is None else copies
        self.completion_time = completion_time
        self._num_active = (
            sum(1 for copy in self.copies if copy.is_active) if self.copies else 0
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.task_id!r}, copies={len(self.copies)})"

    @property
    def task_id(self) -> str:
        """Stable human-readable identifier, e.g. ``"7:map:3"``."""
        return f"{self.job.job_id}:{self.phase.value}:{self.index}"

    @property
    def status(self) -> TaskStatus:
        """The task's coarse lifecycle state (pending/running/completed)."""
        if self.completion_time is not None:
            return TaskStatus.COMPLETED
        if self._num_active > 0:
            return TaskStatus.RUNNING
        # Either no copy was ever launched, or all copies were killed
        # (e.g. preempted); the task is pending again.
        return TaskStatus.PENDING

    @property
    def is_completed(self) -> bool:
        """True once the earliest copy has finished."""
        return self.completion_time is not None

    @property
    def is_scheduled(self) -> bool:
        """True if at least one copy currently occupies a machine (O(1))."""
        return self._num_active > 0

    @property
    def active_copies(self) -> List[TaskCopy]:
        """Copies currently occupying machines."""
        return [copy for copy in self.copies if copy.is_active]

    @property
    def num_active_copies(self) -> int:
        """Number of copies currently occupying machines (O(1))."""
        return self._num_active

    @property
    def duration_distribution(self) -> DurationDistribution:
        """The phase duration distribution of the owning job."""
        return self.job.spec.duration(self.phase)

    def add_copy(self, copy: TaskCopy) -> None:
        """Attach a newly launched copy (engine-only)."""
        if self.completion_time is not None:
            raise ValueError(f"cannot add a copy to completed task {self.task_id}")
        self.copies.append(copy)
        job = self.job
        if self._num_active == 0:
            # PENDING -> RUNNING: the task leaves the unscheduled set.
            job._unscheduled_delta(self.phase, -1)
        self._num_active += 1
        job._active_copies += 1
        job._copies_launched += 1

    def _copy_deactivated(self) -> None:
        """Bookkeeping hook called by :meth:`TaskCopy.finish` / ``kill``."""
        self._num_active -= 1
        job = self.job
        job._active_copies -= 1
        if self._num_active == 0 and self.completion_time is None:
            # All copies gone without completion (kill/preemption/failure):
            # the task reverts to unscheduled and may be re-dispatched.
            job._unscheduled_delta(self.phase, 1)

    def complete(self, time: float) -> List[TaskCopy]:
        """Mark the task completed at ``time`` and kill surviving clones.

        Returns the copies that were killed so the engine can free their
        machines.
        """
        if self.completion_time is not None:
            raise ValueError(f"task {self.task_id} already completed")
        self.completion_time = time
        if self._num_active == 0:
            # The winning copy already deactivated (its finish re-entered the
            # task into the unscheduled count); completion removes it again.
            self.job._unscheduled_delta(self.phase, -1)
        killed: List[TaskCopy] = []
        for copy in self.copies:
            if copy.is_active:
                copy.kill(time)
                killed.append(copy)
        self.job._task_completed(self.phase)
        return killed

    def first_launch_time(self) -> Optional[float]:
        """Time the first copy of this task was launched, if any."""
        if not self.copies:
            return None
        return min(copy.launch_time for copy in self.copies)


class Job:
    """Runtime state of one job, owning its map and reduce tasks.

    All scheduler-facing counters (``m_i(l)``, ``r_i(l)``, ``sigma_i(l)``,
    incomplete tasks per phase) are maintained incrementally by the task /
    copy state transitions, making every priority and allocation query O(1)
    per job (see the module docstring for the invariant).
    """

    __slots__ = (
        "spec",
        "map_tasks",
        "reduce_tasks",
        "map_phase_completion_time",
        "completion_time",
        "_unscheduled_map",
        "_unscheduled_reduce",
        "_incomplete_map",
        "_incomplete_reduce",
        "_active_copies",
        "_copies_launched",
    )

    def __init__(
        self,
        spec: JobSpec,
        map_tasks: Optional[List[Task]] = None,
        reduce_tasks: Optional[List[Task]] = None,
        map_phase_completion_time: Optional[float] = None,
        completion_time: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.map_tasks: List[Task] = [] if map_tasks is None else map_tasks
        self.reduce_tasks: List[Task] = [] if reduce_tasks is None else reduce_tasks
        self.map_phase_completion_time = map_phase_completion_time
        self.completion_time = completion_time
        self._recount()

    def _recount(self) -> None:
        """(Re)derive every incremental counter from the task lists."""
        self._unscheduled_map = 0
        self._unscheduled_reduce = 0
        self._incomplete_map = 0
        self._incomplete_reduce = 0
        self._active_copies = 0
        self._copies_launched = 0
        if not self.map_tasks and not self.reduce_tasks:
            return
        for task in self.map_tasks:
            if task.completion_time is None:
                self._incomplete_map += 1
                if task._num_active == 0:
                    self._unscheduled_map += 1
            self._active_copies += task._num_active
            self._copies_launched += len(task.copies)
        for task in self.reduce_tasks:
            if task.completion_time is None:
                self._incomplete_reduce += 1
                if task._num_active == 0:
                    self._unscheduled_reduce += 1
            self._active_copies += task._num_active
            self._copies_launched += len(task.copies)

    @classmethod
    def from_spec(cls, spec: JobSpec) -> "Job":
        """Instantiate the runtime job and its task objects from a spec."""
        job = cls(spec=spec)
        job.map_tasks = [
            Task(job=job, phase=Phase.MAP, index=j)
            for j in range(spec.num_map_tasks)
        ]
        job.reduce_tasks = [
            Task(job=job, phase=Phase.REDUCE, index=j)
            for j in range(spec.num_reduce_tasks)
        ]
        # Fresh tasks are pending with no copies: set the counters directly
        # (the generic _recount scan is per-task work we can skip here).
        job._unscheduled_map = job._incomplete_map = spec.num_map_tasks
        job._unscheduled_reduce = job._incomplete_reduce = spec.num_reduce_tasks
        job._active_copies = 0
        job._copies_launched = 0
        if spec.num_map_tasks == 0:
            # A job with no map tasks has a trivially completed map phase.
            job.map_phase_completion_time = spec.arrival_time
        return job

    # -- identity and static attributes ------------------------------------

    @property
    def job_id(self) -> int:
        """Unique identifier of the job within its trace."""
        return self.spec.job_id

    @property
    def arrival_time(self) -> float:
        """``a_i`` -- the time the job entered the cluster."""
        return self.spec.arrival_time

    @property
    def weight(self) -> float:
        """``w_i`` -- the job's weight in the flowtime objective."""
        return self.spec.weight

    def tasks(self, phase: Phase) -> List[Task]:
        """The task list of one phase."""
        if phase is Phase.MAP:
            return self.map_tasks
        return self.reduce_tasks

    def all_tasks(self) -> Iterator[Task]:
        """Iterate over map tasks then reduce tasks."""
        yield from self.map_tasks
        yield from self.reduce_tasks

    # -- precedence state machine -------------------------------------------

    @property
    def map_phase_complete(self) -> bool:
        """True once every map task has completed (or there were none)."""
        return self.map_phase_completion_time is not None

    @property
    def is_complete(self) -> bool:
        """True once every task of the job has completed."""
        return self.completion_time is not None

    def notify_task_completion(self, task: Task, time: float) -> bool:
        """Update phase/job completion after ``task`` finished at ``time``.

        Returns ``True`` when this completion finished the whole job.
        The engine calls this exactly once per task completion.
        """
        if task.job is not self:
            raise ValueError("task does not belong to this job")
        if self.is_complete:
            raise ValueError(f"job {self.job_id} already complete")
        if task.phase is Phase.MAP:
            if not self.map_phase_complete and self._incomplete_map == 0:
                self.map_phase_completion_time = time
                if not self.reduce_tasks:
                    self.completion_time = time
                    return True
            return self.is_complete
        # Reduce task: the job finishes when every reduce task has finished.
        if self._incomplete_reduce == 0 and self.map_phase_complete:
            self.completion_time = time
            return True
        return False

    # -- counter bookkeeping (task/copy transition hooks) ----------------------

    def _unscheduled_delta(self, phase: Phase, delta: int) -> None:
        """Adjust the unscheduled-task count of ``phase`` (transition hook)."""
        if phase is Phase.MAP:
            self._unscheduled_map += delta
        else:
            self._unscheduled_reduce += delta

    def _task_completed(self, phase: Phase) -> None:
        """Record one task of ``phase`` completing (transition hook)."""
        if phase is Phase.MAP:
            self._incomplete_map -= 1
        else:
            self._incomplete_reduce -= 1

    # -- scheduler-facing counters -------------------------------------------

    def unscheduled_tasks(self, phase: Phase) -> List[Task]:
        """Tasks of ``phase`` that are neither completed nor occupying machines."""
        return [
            task
            for task in self.tasks(phase)
            if task.completion_time is None and task._num_active == 0
        ]

    @property
    def num_unscheduled_map_tasks(self) -> int:
        """``m_i(l)`` in the paper's online-algorithm notation (O(1))."""
        return self._unscheduled_map

    @property
    def num_unscheduled_reduce_tasks(self) -> int:
        """``r_i(l)`` in the paper's online-algorithm notation (O(1))."""
        return self._unscheduled_reduce

    def num_incomplete_tasks(self, phase: Phase) -> int:
        """Tasks of ``phase`` not yet completed (O(1))."""
        if phase is Phase.MAP:
            return self._incomplete_map
        return self._incomplete_reduce

    @property
    def num_remaining_tasks(self) -> int:
        """Tasks (either phase) not yet completed (O(1))."""
        return self._incomplete_map + self._incomplete_reduce

    @property
    def num_running_copies(self) -> int:
        """``sigma_i(l)``: machines currently occupied by this job's copies (O(1))."""
        return self._active_copies

    def remaining_effective_workload(self, r: float) -> float:
        """``U_i(l)`` of Equation (4), based on *unscheduled* task counts."""
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        spec = self.spec
        return self._unscheduled_map * (
            spec.map_duration.mean + r * spec.map_duration.std
        ) + self._unscheduled_reduce * (
            spec.reduce_duration.mean + r * spec.reduce_duration.std
        )

    # -- metrics ---------------------------------------------------------------

    @property
    def flowtime(self) -> Optional[float]:
        """``f_i - a_i``: elapsed time between arrival and completion."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def weighted_flowtime(self) -> Optional[float]:
        """``w_i * (f_i - a_i)``."""
        if self.flowtime is None:
            return None
        return self.weight * self.flowtime

    def total_copies_launched(self) -> int:
        """Number of copies (originals plus clones) launched for this job."""
        return self._copies_launched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(id={self.job_id}, arrival={self.arrival_time:.1f}, "
            f"weight={self.weight}, maps={self.spec.num_map_tasks}, "
            f"reduces={self.spec.num_reduce_tasks}, "
            f"complete={self.is_complete})"
        )
