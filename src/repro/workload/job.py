"""Job / Task / TaskCopy data model with a stage-DAG precedence state machine.

The model generalises Section III of the paper:

* A job ``J_i`` arrives at time ``a_i`` with weight ``w_i`` and a DAG of
  *stages*.  Each stage carries its own task list and duration
  distribution; a stage's tasks may not make progress until every
  *predecessor* stage has completed.  The paper's map→reduce job is the
  canonical 2-node DAG: stage 0 ("map", no predecessors) and stage 1
  ("reduce", depends on stage 0) -- constraint (1g) is exactly the
  2-node instance of the general rule.
* Task workloads within a stage are i.i.d. with known mean ``E_i^c`` and
  standard deviation ``sigma_i^c`` (carried here as a
  :class:`~repro.workload.distributions.DurationDistribution` per stage).
* A *copy* of a not-yet-ready stage's task may be placed on a machine
  early; it then occupies the machine without doing work ("parked"),
  exactly as described for reduce copies at the end of Section IV-A.
* A task finishes when its earliest-finishing copy finishes (speedup via
  cloning, Section III-A); the remaining copies are killed and their
  machines are reclaimed.

``JobSpec`` is the immutable description found in a trace.  Legacy
map→reduce specs (``num_map_tasks`` / ``num_reduce_tasks``) compile to the
canonical 2-node DAG; :meth:`JobSpec.from_stages` builds arbitrary DAGs.
``Job``, ``Task`` and ``TaskCopy`` are the mutable runtime objects owned by
the simulation engine.

Performance invariants (the engine hot path depends on these)
-------------------------------------------------------------
``Job``, ``Task`` and ``TaskCopy`` are ``__slots__`` classes, and the
scheduler-facing counters -- unscheduled tasks per stage ``m_i(l)`` /
``r_i(l)``, running copies ``sigma_i(l)``, incomplete tasks per stage --
are maintained *incrementally* on every copy/task state transition instead
of being recomputed by scanning task lists.  A task is counted
"unscheduled" exactly while it is not completed and has no active copy;
the transitions that preserve this invariant are:

* :meth:`Task.add_copy`    -- ``0 -> 1`` active copies: leave unscheduled;
* copy finish/kill         -- ``1 -> 0`` active copies on an incomplete
  task: re-enter unscheduled (this is how a failure-killed copy's task
  becomes schedulable again, exactly once);
* :meth:`Task.complete`    -- an unscheduled-counted task leaving via
  completion is removed from the count.

A stage only ever becomes *ready* (all predecessors complete), never
un-ready, so the aggregate ``_unscheduled_ready`` counter -- unscheduled
tasks whose stage is ready -- stays O(1) to maintain and gives the gating
helpers an O(1) "has launchable work" test.  Consequently
``Job.remaining_effective_workload`` (Equation (4)) and every priority
computation built on it are O(1) per job, which is what makes the
per-event scheduler consultations affordable at million-job scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.workload.distributions import DurationDistribution

__all__ = ["Phase", "TaskStatus", "StageSpec", "JobSpec", "Job", "Task", "TaskCopy"]


class Phase(enum.Enum):
    """The two MapReduce phases; ``c`` in the paper's notation.

    With the stage-DAG generalisation, stage 0 presents as ``MAP`` and
    every later stage as ``REDUCE`` (see :attr:`Task.phase`), so per-phase
    consumers -- cluster occupancy counters, speculation estimators --
    keep working unchanged on arbitrary DAGs.
    """

    MAP = "map"
    REDUCE = "reduce"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TaskStatus(enum.Enum):
    """Lifecycle of a task (not of an individual copy)."""

    #: No copy has been launched yet.
    PENDING = "pending"
    #: At least one copy has been launched and the task is not finished.
    RUNNING = "running"
    #: The earliest copy finished; the task (and all clones) are done.
    COMPLETED = "completed"


@dataclass(frozen=True)
class StageSpec:
    """One node of a job's stage DAG.

    Attributes
    ----------
    name:
        Stage label, unique within the job (task ids embed it).
    num_tasks:
        Number of tasks in the stage (may be 0: the stage completes the
        instant it becomes ready).
    duration:
        Task duration distribution of the stage.
    deps:
        Indices of predecessor stages.  Every dependency must point at an
        *earlier* stage (``dep < index``), so any stage tuple is
        topologically ordered by construction.
    """

    name: str
    num_tasks: int
    duration: DurationDistribution
    deps: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if self.num_tasks < 0:
            raise ValueError(f"stage {self.name!r}: num_tasks must be >= 0")
        if len(set(self.deps)) != len(self.deps):
            raise ValueError(f"stage {self.name!r}: duplicate dependencies")


#: Successor adjacency of the canonical 2-node map→reduce DAG: the map
#: stage feeds the reduce stage, which feeds nothing.
_LEGACY_DEPENDENTS: Tuple[Tuple[int, ...], ...] = ((1,), ())

#: Bounded memo of derived legacy 2-node stage tuples, keyed by
#: ``(num_map, num_reduce, map_duration, reduce_duration)``.  Duration
#: objects hash by identity; a live memo entry references them through its
#: StageSpecs, so an id can never be recycled while its key is cached.
#: Streams that build a fresh distribution per job (e.g. lognormal task
#: durations resampled per arrival) would grow this without bound, hence
#: the cap.  Eviction is insertion-order FIFO (a plain dict, no
#: move-to-end per hit): the memo is pure performance state, and the hot
#: lookup -- inlined in :meth:`Job.from_spec` -- stays one dict get.
_LEGACY_STAGES_MEMO: "Dict[Tuple[int, int, DurationDistribution, DurationDistribution], Tuple[StageSpec, ...]]" = {}
_LEGACY_STAGES_MEMO_MAX = 512


def _legacy_stage_specs(spec: "JobSpec") -> Tuple[StageSpec, ...]:
    """The canonical 2-node map→reduce DAG of a legacy (stage-less) spec.

    The derived tuple reuses the spec's duration distribution objects, so
    sampling through the DAG path consumes RNG state identically to the
    pre-DAG engine; specs sharing duration objects share one tuple.
    """
    key = (
        spec.num_map_tasks,
        spec.num_reduce_tasks,
        spec.map_duration,
        spec.reduce_duration,
    )
    memo = _LEGACY_STAGES_MEMO
    cached = memo.get(key)
    if cached is not None:
        return cached
    cached = (
        StageSpec(
            name="map",
            num_tasks=spec.num_map_tasks,
            duration=spec.map_duration,
            deps=(),
        ),
        StageSpec(
            name="reduce",
            num_tasks=spec.num_reduce_tasks,
            duration=spec.reduce_duration,
            deps=(0,),
        ),
    )
    memo[key] = cached
    if len(memo) > _LEGACY_STAGES_MEMO_MAX:
        # FIFO eviction: drop the oldest-inserted entry.
        del memo[next(iter(memo))]
    return cached


def _new_task(job: "Job", stage: int, index: int) -> "Task":
    """Build a fresh :class:`Task` without constructor overhead.

    Pure field assignment -- equivalent to ``Task(job, stage, index)`` for
    a task with no copies; used on the job-materialisation hot path.
    """
    task = Task.__new__(Task)
    task.job = job
    task.stage = stage
    task.index = index
    task.copies = []
    task.completion_time = None
    task.checkpoint_work = 0.0
    task.preferred_rack = None
    task._num_active = 0
    return task


def _fast_legacy_spec(
    job_id: int,
    arrival_time: float,
    weight: float,
    num_map_tasks: int,
    num_reduce_tasks: int,
    map_duration: DurationDistribution,
    reduce_duration: DurationDistribution,
) -> "JobSpec":
    """Construct a legacy :class:`JobSpec` bypassing dataclass ``__init__``.

    The frozen-dataclass constructor routes every field through
    ``object.__setattr__`` and re-validates; stream factories construct
    millions of specs from parameters they have already validated, so they
    use this direct-``__dict__`` path instead.  Semantically identical to
    ``JobSpec(...)`` with ``stages=None`` for valid inputs (equality, hash
    and repr all read the same fields).
    """
    spec = object.__new__(JobSpec)
    # One dict literal swapped in wholesale (through object.__setattr__,
    # since the frozen dataclass intercepts plain assignment): cheaper
    # than building a kwargs dict and update()-ing it into the instance
    # dict.
    object.__setattr__(
        spec,
        "__dict__",
        {
            "job_id": job_id,
            "arrival_time": arrival_time,
            "weight": weight,
            "num_map_tasks": num_map_tasks,
            "num_reduce_tasks": num_reduce_tasks,
            "map_duration": map_duration,
            "reduce_duration": reduce_duration,
            "stages": None,
        },
    )
    return spec


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one job in a trace.

    Attributes
    ----------
    job_id:
        Unique identifier within the trace.
    arrival_time:
        ``a_i`` -- the time (seconds) the job enters the cluster.
    weight:
        ``w_i`` -- the job priority/weight used by weighted flowtime.
    num_map_tasks / num_reduce_tasks:
        ``m_i`` and ``r_i``.  For a DAG job these are summary views:
        stage 0's task count and the total of all later stages.
    map_duration / reduce_duration:
        Per-phase task duration distributions.  The schedulers may only read
        ``mean`` and ``std``; the simulator samples actual workloads.
    stages:
        Optional explicit stage DAG.  ``None`` (the legacy map→reduce
        case) compiles to the canonical 2-node DAG -- stage ``"map"`` with
        no predecessors and stage ``"reduce"`` depending on it -- which is
        behaviourally bit-identical to the pre-DAG model.  Build DAG specs
        with :meth:`from_stages` so the summary fields stay consistent.
    """

    job_id: int
    arrival_time: float
    weight: float
    num_map_tasks: int
    num_reduce_tasks: int
    map_duration: DurationDistribution
    reduce_duration: DurationDistribution
    stages: Optional[Tuple[StageSpec, ...]] = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be >= 0, got {self.arrival_time}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.num_map_tasks < 0 or self.num_reduce_tasks < 0:
            raise ValueError("task counts must be non-negative")
        if self.num_map_tasks + self.num_reduce_tasks == 0:
            raise ValueError(f"job {self.job_id} has no tasks")
        if self.stages is not None:
            self._validate_stages()

    def _validate_stages(self) -> None:
        stages = self.stages
        if not stages:
            raise ValueError(f"job {self.job_id}: stages must be non-empty")
        names = set()
        total = 0
        for index, stage in enumerate(stages):
            if stage.name in names:
                raise ValueError(
                    f"job {self.job_id}: duplicate stage name {stage.name!r}"
                )
            names.add(stage.name)
            for dep in stage.deps:
                if not 0 <= dep < index:
                    raise ValueError(
                        f"job {self.job_id}: stage {stage.name!r} depends on "
                        f"stage {dep}, which is not an earlier stage"
                    )
            total += stage.num_tasks
        if self.num_map_tasks != stages[0].num_tasks:
            raise ValueError(
                f"job {self.job_id}: num_map_tasks must equal stage 0's task "
                "count (use JobSpec.from_stages)"
            )
        if self.num_map_tasks + self.num_reduce_tasks != total:
            raise ValueError(
                f"job {self.job_id}: summary task counts disagree with the "
                "stage DAG (use JobSpec.from_stages)"
            )

    @classmethod
    def from_stages(
        cls,
        *,
        job_id: int,
        arrival_time: float,
        weight: float,
        stages: Sequence[StageSpec],
    ) -> "JobSpec":
        """Build a DAG job spec, deriving the legacy summary fields.

        ``num_map_tasks`` becomes stage 0's task count, ``num_reduce_tasks``
        the total of all later stages, and the per-phase durations come from
        the first (and, when present, second) stage -- so phase-level
        consumers see a sensible two-phase summary of any DAG.
        """
        stage_tuple = tuple(stages)
        if not stage_tuple:
            raise ValueError("stages must be non-empty")
        first = stage_tuple[0]
        rest_total = sum(stage.num_tasks for stage in stage_tuple[1:])
        reduce_duration = (
            stage_tuple[1].duration if len(stage_tuple) > 1 else first.duration
        )
        return cls(
            job_id=job_id,
            arrival_time=arrival_time,
            weight=weight,
            num_map_tasks=first.num_tasks,
            num_reduce_tasks=rest_total,
            map_duration=first.duration,
            reduce_duration=reduce_duration,
            stages=stage_tuple,
        )

    @property
    def stage_specs(self) -> Tuple[StageSpec, ...]:
        """The job's stage DAG; legacy specs compile to the 2-node map→reduce DAG.

        Legacy tuples come from a module-level memo shared across specs
        (see :func:`_legacy_stage_specs`); the derived tuple reuses the
        spec's duration distribution objects, so sampling through the DAG
        path consumes RNG state identically to the pre-DAG engine.
        """
        if self.stages is not None:
            return self.stages
        return _legacy_stage_specs(self)

    @property
    def stage_dependents(self) -> Tuple[Tuple[int, ...], ...]:
        """Adjacency of the stage DAG: for each stage, its successor stages."""
        if self.stages is None:
            return _LEGACY_DEPENDENTS
        cached = self.__dict__.get("_stage_dependents_cache")
        if cached is None:
            stages = self.stage_specs
            dependents: List[List[int]] = [[] for _ in stages]
            for index, stage in enumerate(stages):
                for dep in stage.deps:
                    dependents[dep].append(index)
            cached = tuple(tuple(successors) for successors in dependents)
            self.__dict__["_stage_dependents_cache"] = cached
        return cached

    @property
    def num_stages(self) -> int:
        """Number of stages in the job's DAG (2 for legacy map→reduce)."""
        return 2 if self.stages is None else len(self.stages)

    def num_tasks(self, phase: Phase) -> int:
        """Number of tasks in ``phase`` (summary view for DAG jobs)."""
        if phase is Phase.MAP:
            return self.num_map_tasks
        return self.num_reduce_tasks

    def duration(self, phase: Phase) -> DurationDistribution:
        """Duration distribution of tasks in ``phase`` (summary view)."""
        if phase is Phase.MAP:
            return self.map_duration
        return self.reduce_duration

    @property
    def total_tasks(self) -> int:
        """``m_i + r_i`` -- total tasks across every stage."""
        return self.num_map_tasks + self.num_reduce_tasks

    @property
    def expected_total_work(self) -> float:
        """Expected sum of task workloads over all stages."""
        if self.stages is None:
            return (
                self.num_map_tasks * self.map_duration.mean
                + self.num_reduce_tasks * self.reduce_duration.mean
            )
        return sum(
            stage.num_tasks * stage.duration.mean for stage in self.stages
        )

    def effective_workload(self, r: float) -> float:
        """``phi_i`` of Equation (2): the variance-adjusted total workload.

        Generalised to DAGs as the sum over stages of
        ``n_s * (E_s + r * sigma_s)`` -- for the canonical 2-node DAG this
        is exactly the paper's two-term expression.
        """
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        if self.stages is None:
            return self.num_map_tasks * (
                self.map_duration.mean + r * self.map_duration.std
            ) + self.num_reduce_tasks * (
                self.reduce_duration.mean + r * self.reduce_duration.std
            )
        total = 0.0
        for stage in self.stages:
            if stage.num_tasks:
                total += stage.num_tasks * (
                    stage.duration.mean + r * stage.duration.std
                )
        return total


class TaskCopy:
    """One physical copy (the original or a clone) of a task on a machine.

    Attributes
    ----------
    start_time:
        Time at which the copy actually starts consuming CPU.  Equals
        ``launch_time`` for copies of ready stages; for copies parked
        behind incomplete predecessor stages it is the readiness instant
        and stays ``None`` while the copy is blocked.
    work:
        Raw work units of this copy (post straggler inflation, before the
        hosting machine's speed is applied).  Engine-managed; lets dynamic
        scenarios recompute the wall-clock ``workload`` when the machine's
        effective speed changes.
    finish_version:
        Version of the copy's currently valid finish event
        (engine-managed).  A queued finish event with a smaller version is
        stale.
    remote_penalty:
        Remote-read slowdown factor priced into this copy's rate: 1.0 for
        a copy on its task's preferred rack (or when no topology is
        active), the scenario's ``remote_slowdown`` otherwise.  Fixed at
        launch -- the copy's data does not move.
    """

    __slots__ = (
        "copy_id",
        "task",
        "machine_id",
        "launch_time",
        "workload",
        "start_time",
        "finish_time",
        "killed_at",
        "work",
        "finish_version",
        "remote_penalty",
    )

    def __init__(
        self,
        copy_id: int,
        task: "Task",
        machine_id: int,
        launch_time: float,
        workload: float,
        start_time: Optional[float] = None,
        finish_time: Optional[float] = None,
        killed_at: Optional[float] = None,
        work: Optional[float] = None,
        finish_version: int = 0,
        remote_penalty: float = 1.0,
    ) -> None:
        if workload <= 0:
            raise ValueError(f"copy workload must be positive, got {workload}")
        if launch_time < 0:
            raise ValueError(f"launch_time must be >= 0, got {launch_time}")
        self.copy_id = copy_id
        self.task = task
        self.machine_id = machine_id
        self.launch_time = launch_time
        self.workload = workload
        self.start_time = start_time
        self.finish_time = finish_time
        self.killed_at = killed_at
        self.work = work
        self.finish_version = finish_version
        self.remote_penalty = remote_penalty

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskCopy(copy_id={self.copy_id}, task={self.task.task_id!r}, "
            f"machine_id={self.machine_id}, launch_time={self.launch_time}, "
            f"workload={self.workload})"
        )

    @property
    def is_finished(self) -> bool:
        """True once the copy has run to completion (and was not killed)."""
        return self.finish_time is not None and self.killed_at is None

    @property
    def is_killed(self) -> bool:
        """True once the copy has been killed (clone lost the race, etc.)."""
        return self.killed_at is not None

    @property
    def is_active(self) -> bool:
        """True while the copy occupies a machine (running or blocked)."""
        return self.finish_time is None and self.killed_at is None

    @property
    def is_blocked(self) -> bool:
        """True for a copy parked behind incomplete predecessor stages."""
        return self.is_active and self.start_time is None

    def start(self, time: float) -> None:
        """Mark the instant processing begins (engine-only)."""
        if not self.is_active:
            raise ValueError(f"cannot start inactive copy {self.copy_id}")
        if self.start_time is not None:
            raise ValueError(f"copy {self.copy_id} already started")
        if time < self.launch_time:
            raise ValueError(
                f"start time {time} precedes launch time {self.launch_time}"
            )
        self.start_time = time

    def finish(self, time: float) -> None:
        """Mark the copy as finished (engine-only)."""
        if not self.is_active:
            raise ValueError(f"cannot finish inactive copy {self.copy_id}")
        if self.start_time is None:
            raise ValueError(f"copy {self.copy_id} finished without starting")
        self.finish_time = time
        self.task._copy_deactivated()

    def kill(self, time: float) -> None:
        """Kill the copy (its sibling finished first, or the scheduler preempted it)."""
        if not self.is_active:
            raise ValueError(f"cannot kill inactive copy {self.copy_id}")
        self.killed_at = time
        self.task._copy_deactivated()

    @property
    def expected_finish_time(self) -> Optional[float]:
        """``start_time + workload`` if the copy has started, else ``None``."""
        if self.start_time is None:
            return None
        return self.start_time + self.workload

    def elapsed(self, time: float) -> float:
        """Processing time consumed by this copy up to ``time``."""
        if self.start_time is None:
            return 0.0
        end = self.finish_time if self.finish_time is not None else time
        if self.killed_at is not None:
            end = min(end if end is not None else self.killed_at, self.killed_at)
        return max(0.0, min(end, time) - self.start_time)

    def progress(self, time: float) -> float:
        """Fraction of the copy's workload processed by ``time``, in [0, 1]."""
        return min(1.0, self.elapsed(time) / self.workload)

    def remaining_work(self, time: float) -> float:
        """Workload still to be processed at ``time`` (0 once finished)."""
        if self.is_finished:
            return 0.0
        return self.workload - self.elapsed(time)


class Task:
    """One logical task ``delta_i^{c,j}`` of one stage.

    A task may have several :class:`TaskCopy` instances running at once;
    it completes when the first of them completes.  The active-copy count
    is maintained incrementally (see the module docstring) so that
    ``is_scheduled`` / ``num_active_copies`` are O(1).

    ``checkpoint_work`` is the raw work durably saved by the checkpoint
    redundancy policy: when a failure kills a copy, the engine rounds the
    work it completed down to a checkpoint-interval multiple, and the next
    launched copy of the task resumes from there instead of zero.

    ``preferred_rack`` is the rack holding the task's input split under an
    active :class:`~repro.scenarios.TopologySpec` (engine-assigned at job
    arrival from the placement stream); ``None`` when no topology is
    active, i.e. any slot is as good as any other.
    """

    __slots__ = (
        "job",
        "stage",
        "index",
        "copies",
        "completion_time",
        "checkpoint_work",
        "preferred_rack",
        "_num_active",
    )

    def __init__(
        self,
        job: "Job",
        stage: int,
        index: int,
        copies: Optional[List[TaskCopy]] = None,
        completion_time: Optional[float] = None,
    ) -> None:
        self.job = job
        self.stage = stage
        self.index = index
        self.copies: List[TaskCopy] = [] if copies is None else copies
        self.completion_time = completion_time
        self.checkpoint_work = 0.0
        self.preferred_rack: Optional[int] = None
        self._num_active = (
            sum(1 for copy in self.copies if copy.is_active) if self.copies else 0
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.task_id!r}, copies={len(self.copies)})"

    @property
    def phase(self) -> Phase:
        """Two-phase summary view: stage 0 is ``MAP``, every later stage ``REDUCE``.

        Keeps per-phase consumers (cluster occupancy counters, speculation
        estimators, report slices) working unchanged on DAG jobs; for the
        canonical 2-node DAG this is exactly the legacy phase.
        """
        return Phase.MAP if self.stage == 0 else Phase.REDUCE

    @property
    def stage_name(self) -> str:
        """Name of the owning stage (from the job's stage DAG)."""
        return self.job._stages[self.stage].name

    @property
    def task_id(self) -> str:
        """Stable human-readable identifier, e.g. ``"7:map:3"``."""
        return f"{self.job.job_id}:{self.stage_name}:{self.index}"

    @property
    def status(self) -> TaskStatus:
        """The task's coarse lifecycle state (pending/running/completed)."""
        if self.completion_time is not None:
            return TaskStatus.COMPLETED
        if self._num_active > 0:
            return TaskStatus.RUNNING
        # Either no copy was ever launched, or all copies were killed
        # (e.g. preempted); the task is pending again.
        return TaskStatus.PENDING

    @property
    def is_completed(self) -> bool:
        """True once the earliest copy has finished."""
        return self.completion_time is not None

    @property
    def is_scheduled(self) -> bool:
        """True if at least one copy currently occupies a machine (O(1))."""
        return self._num_active > 0

    @property
    def active_copies(self) -> List[TaskCopy]:
        """Copies currently occupying machines."""
        return [copy for copy in self.copies if copy.is_active]

    @property
    def num_active_copies(self) -> int:
        """Number of copies currently occupying machines (O(1))."""
        return self._num_active

    @property
    def duration_distribution(self) -> DurationDistribution:
        """The owning stage's task duration distribution."""
        return self.job._stages[self.stage].duration

    def add_copy(self, copy: TaskCopy) -> None:
        """Attach a newly launched copy (engine-only)."""
        if self.completion_time is not None:
            raise ValueError(f"cannot add a copy to completed task {self.task_id}")
        self.copies.append(copy)
        job = self.job
        if self._num_active == 0:
            # PENDING -> RUNNING: the task leaves the unscheduled set.
            job._unscheduled_delta(self.stage, -1)
        self._num_active += 1
        job._active_copies += 1
        job._copies_launched += 1

    def _copy_deactivated(self) -> None:
        """Bookkeeping hook called by :meth:`TaskCopy.finish` / ``kill``."""
        self._num_active -= 1
        job = self.job
        job._active_copies -= 1
        if self._num_active == 0 and self.completion_time is None:
            # All copies gone without completion (kill/preemption/failure):
            # the task reverts to unscheduled and may be re-dispatched.
            job._unscheduled_delta(self.stage, 1)

    def complete(self, time: float) -> List[TaskCopy]:
        """Mark the task completed at ``time`` and kill surviving clones.

        Returns the copies that were killed so the engine can free their
        machines.
        """
        if self.completion_time is not None:
            raise ValueError(f"task {self.task_id} already completed")
        self.completion_time = time
        if self._num_active == 0:
            # The winning copy already deactivated (its finish re-entered the
            # task into the unscheduled count); completion removes it again.
            self.job._unscheduled_delta(self.stage, -1)
        killed: List[TaskCopy] = []
        for copy in self.copies:
            if copy.is_active:
                copy.kill(time)
                killed.append(copy)
        self.job._task_completed(self.stage)
        return killed

    def first_launch_time(self) -> Optional[float]:
        """Time the first copy of this task was launched, if any."""
        if not self.copies:
            return None
        return min(copy.launch_time for copy in self.copies)


class Job:
    """Runtime state of one job, owning the task lists of its stage DAG.

    All scheduler-facing counters (``m_i(l)``, ``r_i(l)``, ``sigma_i(l)``,
    incomplete tasks per stage, ready-stage unscheduled tasks) are
    maintained incrementally by the task / copy state transitions, making
    every priority and allocation query O(1) per job (see the module
    docstring for the invariant).
    """

    __slots__ = (
        "spec",
        "stage_tasks",
        "completion_time",
        "_stages",
        "_dependents",
        "_stage_completion",
        "_stage_ready",
        "_unscheduled",
        "_incomplete",
        "_unscheduled_ready",
        "_unscheduled_total",
        "_incomplete_total",
        "_incomplete_stages",
        "_newly_ready",
        "_active_copies",
        "_copies_launched",
        "_workloads",
    )

    def __init__(
        self,
        spec: JobSpec,
        completion_time: Optional[float] = None,
    ) -> None:
        self.spec = spec
        stages = spec.stage_specs
        self._stages = stages
        self._dependents = spec.stage_dependents
        self.stage_tasks: List[List[Task]] = [[] for _ in stages]
        self._stage_completion: List[Optional[float]] = [None] * len(stages)
        self.completion_time = completion_time
        self._newly_ready: List[int] = []
        # Engine-owned pre-sampled workload buffers, one reversed list per
        # stage (see SimulationEngine._handle_arrival); None until the job
        # arrives in an engine.  Living on the job, the buffers die with it
        # -- no per-job cleanup in a global dict.
        self._workloads: Optional[List[List[float]]] = None
        self._recount()

    def _recount(self) -> None:
        """(Re)derive every incremental counter from the task lists.

        Idempotent: never mutates stage/job completion times, only the
        counters derived from them and from the per-task copy state.
        """
        num_stages = len(self._stages)
        self._unscheduled = [0] * num_stages
        self._incomplete = [0] * num_stages
        self._active_copies = 0
        self._copies_launched = 0
        for stage, tasks in enumerate(self.stage_tasks):
            for task in tasks:
                if task.completion_time is None:
                    self._incomplete[stage] += 1
                    if task._num_active == 0:
                        self._unscheduled[stage] += 1
                self._active_copies += task._num_active
                self._copies_launched += len(task.copies)
        completion = self._stage_completion
        self._stage_ready = [
            all(completion[dep] is not None for dep in self._stages[s].deps)
            for s in range(num_stages)
        ]
        self._unscheduled_ready = sum(
            count
            for stage, count in enumerate(self._unscheduled)
            if self._stage_ready[stage]
        )
        self._unscheduled_total = sum(self._unscheduled)
        self._incomplete_total = sum(self._incomplete)
        self._incomplete_stages = sum(1 for t in completion if t is None)

    @classmethod
    def from_spec(cls, spec: JobSpec) -> "Job":
        """Instantiate the runtime job and its task objects from a spec.

        Bypasses ``__init__``/``_recount``: fresh tasks are pending with no
        copies, so every counter is known in one forward pass over the
        stages.  Readiness settles in the same pass -- sources are ready
        immediately, an empty ready stage completes on the spot (a job with
        no map tasks has a trivially completed map phase), and deps point
        at earlier stages, so the pass cascades through empty prefixes.
        """
        job = cls.__new__(cls)
        job.spec = spec
        if spec.stages is None:
            # Legacy 2-node fast path: the readiness pass collapses to "is
            # the map stage empty?" (stage 0 is a source; stage 1 depends
            # only on it, and JobSpec validation guarantees at least one
            # task overall).  The memo lookup is inlined (one dict get per
            # job; _legacy_stage_specs handles the cold miss).
            num_map = spec.num_map_tasks
            num_reduce = spec.num_reduce_tasks
            stages = _LEGACY_STAGES_MEMO.get(
                (num_map, num_reduce, spec.map_duration, spec.reduce_duration)
            )
            job._stages = (
                stages if stages is not None else _legacy_stage_specs(spec)
            )
            job._dependents = _LEGACY_DEPENDENTS
            job.completion_time = None
            job._newly_ready = []
            job._workloads = None
            if num_map == 1 and num_reduce == 0:
                # The dominant stream shape (one single-task map-only job
                # per arrival): fully unrolled task construction, no
                # comprehension frames.
                task = Task.__new__(Task)
                task.job = job
                task.stage = 0
                task.index = 0
                task.copies = []
                task.completion_time = None
                task.checkpoint_work = 0.0
                task.preferred_rack = None
                task._num_active = 0
                job.stage_tasks = [[task], []]
                job._unscheduled = [1, 0]
                job._incomplete = [1, 0]
                job._unscheduled_total = job._incomplete_total = 1
                job._stage_completion = [None, None]
                job._stage_ready = [True, False]
                job._unscheduled_ready = 1
                job._incomplete_stages = 2
                job._active_copies = 0
                job._copies_launched = 0
                return job
            job.stage_tasks = [
                [_new_task(job, 0, j) for j in range(num_map)] if num_map else [],
                [_new_task(job, 1, j) for j in range(num_reduce)]
                if num_reduce
                else [],
            ]
            job._unscheduled = [num_map, num_reduce]
            job._incomplete = [num_map, num_reduce]
            job._unscheduled_total = job._incomplete_total = num_map + num_reduce
            if num_map:
                job._stage_completion = [None, None]
                job._stage_ready = [True, False]
                job._unscheduled_ready = num_map
                job._incomplete_stages = 2
            else:
                # An empty map phase completes at arrival; the reduce stage
                # is ready immediately.
                job._stage_completion = [spec.arrival_time, None]
                job._stage_ready = [True, True]
                job._unscheduled_ready = num_reduce
                job._incomplete_stages = 1
            job._active_copies = 0
            job._copies_launched = 0
            return job
        stages = spec.stages
        dependents = spec.stage_dependents
        num_stages = len(stages)
        arrival = spec.arrival_time
        job._stages = stages
        job._dependents = dependents
        job.completion_time = None
        job._newly_ready = []
        job._workloads = None
        stage_tasks: List[List[Task]] = []
        unscheduled = [0] * num_stages
        incomplete = [0] * num_stages
        completion: List[Optional[float]] = [None] * num_stages
        ready = [False] * num_stages
        total = 0
        unscheduled_ready = 0
        incomplete_stages = num_stages
        for stage_index, stage in enumerate(stages):
            count = stage.num_tasks
            stage_tasks.append(
                [_new_task(job, stage_index, j) for j in range(count)]
            )
            unscheduled[stage_index] = count
            incomplete[stage_index] = count
            total += count
            if all(completion[dep] is not None for dep in stage.deps):
                ready[stage_index] = True
                unscheduled_ready += count
                if count == 0:
                    completion[stage_index] = arrival
                    incomplete_stages -= 1
        job.stage_tasks = stage_tasks
        job._stage_completion = completion
        job._stage_ready = ready
        job._unscheduled = unscheduled
        job._incomplete = incomplete
        job._unscheduled_ready = unscheduled_ready
        job._unscheduled_total = total
        job._incomplete_total = total
        job._incomplete_stages = incomplete_stages
        job._active_copies = 0
        job._copies_launched = 0
        return job

    # -- identity and static attributes ------------------------------------

    @property
    def job_id(self) -> int:
        """Unique identifier of the job within its trace."""
        return self.spec.job_id

    @property
    def arrival_time(self) -> float:
        """``a_i`` -- the time the job entered the cluster."""
        return self.spec.arrival_time

    @property
    def weight(self) -> float:
        """``w_i`` -- the job's weight in the flowtime objective."""
        return self.spec.weight

    @property
    def num_stages(self) -> int:
        """Number of stages in the job's DAG (2 for legacy map→reduce)."""
        return len(self._stages)

    @property
    def stage_specs(self) -> Tuple[StageSpec, ...]:
        """The job's stage DAG (shared with the spec)."""
        return self._stages

    @property
    def map_tasks(self) -> List[Task]:
        """Stage 0's task list (the map phase of the 2-node DAG)."""
        return self.stage_tasks[0]

    @property
    def reduce_tasks(self) -> List[Task]:
        """Every non-stage-0 task (the reduce phase of the 2-node DAG)."""
        if len(self.stage_tasks) == 2:
            return self.stage_tasks[1]
        result: List[Task] = []
        for tasks in self.stage_tasks[1:]:
            result.extend(tasks)
        return result

    def tasks(self, phase: Phase) -> List[Task]:
        """The task list of one phase (summary view for DAG jobs)."""
        if phase is Phase.MAP:
            return self.stage_tasks[0]
        return self.reduce_tasks

    def all_tasks(self) -> Iterator[Task]:
        """Iterate over every task in stage order."""
        for tasks in self.stage_tasks:
            yield from tasks

    # -- precedence state machine -------------------------------------------

    @property
    def map_phase_completion_time(self) -> Optional[float]:
        """Completion time of stage 0 (the map phase of the 2-node DAG)."""
        return self._stage_completion[0]

    @property
    def map_phase_complete(self) -> bool:
        """True once every stage-0 task has completed (or there were none)."""
        return self._stage_completion[0] is not None

    def stage_is_ready(self, stage: int) -> bool:
        """True once every predecessor of ``stage`` has completed (O(1))."""
        return self._stage_ready[stage]

    def stage_completion_time(self, stage: int) -> Optional[float]:
        """Completion time of ``stage``, or ``None`` while incomplete."""
        return self._stage_completion[stage]

    @property
    def is_complete(self) -> bool:
        """True once every task of the job has completed."""
        return self.completion_time is not None

    def notify_task_completion(self, task: Task, time: float) -> bool:
        """Update stage/job completion after ``task`` finished at ``time``.

        Returns ``True`` when this completion finished the whole job.
        The engine calls this exactly once per task completion.  Stages
        that become *ready* as a consequence are buffered for
        :meth:`take_newly_ready_stages` (the engine unparks their copies).
        """
        if task.job is not self:
            raise ValueError("task does not belong to this job")
        if self.completion_time is not None:
            raise ValueError(f"job {self.job_id} already complete")
        stage = task.stage
        if (
            self._incomplete[stage] == 0
            and self._stage_completion[stage] is None
            and self._stage_ready[stage]
        ):
            self._complete_stage(stage, time)
        return self.completion_time is not None

    def _complete_stage(self, stage: int, time: float) -> None:
        """Mark ``stage`` complete and cascade readiness to its successors.

        A successor whose predecessors are now all complete becomes ready
        (recorded in the newly-ready buffer); if it is ready *and empty*
        it completes immediately, continuing the cascade.  The job
        completes when its last stage does.
        """
        completion = self._stage_completion
        stages = self._stages
        dependents = self._dependents
        ready = self._stage_ready
        # The pending list is allocated lazily: most completions cascade
        # through at most one empty successor (the 2-node DAG's empty
        # reduce stage), walked with a plain local instead.
        pending = None
        current = stage
        while True:
            completion[current] = time
            self._incomplete_stages -= 1
            for successor in dependents[current]:
                if ready[successor]:
                    continue
                # for/else instead of all(<genexpr>): this cascade runs on
                # every stage completion, and the generator frame dominates
                # it for the typical 1-2 dependency case.
                for dep in stages[successor].deps:
                    if completion[dep] is None:
                        break
                else:
                    ready[successor] = True
                    self._unscheduled_ready += self._unscheduled[successor]
                    self._newly_ready.append(successor)
                    if self._incomplete[successor] == 0:
                        if pending is None:
                            pending = [successor]
                        else:
                            pending.append(successor)
            if not pending:
                break
            current = pending.pop()
        if self._incomplete_stages == 0:
            self.completion_time = time

    def take_newly_ready_stages(self) -> List[int]:
        """Drain the stages that became ready since the last call (engine-only)."""
        stages = self._newly_ready
        if stages:
            self._newly_ready = []
        return stages

    # -- counter bookkeeping (task/copy transition hooks) ----------------------

    def _unscheduled_delta(self, stage: int, delta: int) -> None:
        """Adjust the unscheduled-task count of ``stage`` (transition hook)."""
        self._unscheduled[stage] += delta
        self._unscheduled_total += delta
        if self._stage_ready[stage]:
            self._unscheduled_ready += delta

    def _task_completed(self, stage: int) -> None:
        """Record one task of ``stage`` completing (transition hook)."""
        self._incomplete[stage] -= 1
        self._incomplete_total -= 1

    # -- scheduler-facing counters -------------------------------------------

    def unscheduled_stage_tasks(self, stage: int) -> List[Task]:
        """Tasks of ``stage`` that are neither completed nor occupying machines."""
        return [
            task
            for task in self.stage_tasks[stage]
            if task.completion_time is None and task._num_active == 0
        ]

    def unscheduled_tasks(self, phase: Phase) -> List[Task]:
        """Unscheduled tasks of ``phase`` (summary view for DAG jobs)."""
        if phase is Phase.MAP:
            return self.unscheduled_stage_tasks(0)
        result: List[Task] = []
        for stage in range(1, len(self._stages)):
            result.extend(self.unscheduled_stage_tasks(stage))
        return result

    @property
    def num_unscheduled_map_tasks(self) -> int:
        """``m_i(l)`` in the paper's online-algorithm notation (O(1))."""
        return self._unscheduled[0]

    @property
    def num_unscheduled_reduce_tasks(self) -> int:
        """``r_i(l)`` in the paper's online-algorithm notation (O(1))."""
        return self._unscheduled_total - self._unscheduled[0]

    def num_unscheduled_stage_tasks(self, stage: int) -> int:
        """Unscheduled tasks of ``stage`` (O(1))."""
        return self._unscheduled[stage]

    @property
    def num_unscheduled_tasks(self) -> int:
        """Unscheduled tasks across every stage (O(1))."""
        return self._unscheduled_total

    @property
    def num_unscheduled_ready_tasks(self) -> int:
        """Unscheduled tasks whose stage is ready to run (O(1)).

        The gating helpers' launchability test: positive exactly when the
        job has work that could start making progress right now.
        """
        return self._unscheduled_ready

    def num_incomplete_tasks(self, phase: Phase) -> int:
        """Tasks of ``phase`` not yet completed (O(1))."""
        if phase is Phase.MAP:
            return self._incomplete[0]
        return self._incomplete_total - self._incomplete[0]

    def num_incomplete_stage_tasks(self, stage: int) -> int:
        """Tasks of ``stage`` not yet completed (O(1))."""
        return self._incomplete[stage]

    @property
    def num_remaining_tasks(self) -> int:
        """Tasks (any stage) not yet completed (O(1))."""
        return self._incomplete_total

    @property
    def num_running_copies(self) -> int:
        """``sigma_i(l)``: machines currently occupied by this job's copies (O(1))."""
        return self._active_copies

    def remaining_effective_workload(self, r: float) -> float:
        """``U_i(l)`` of Equation (4), based on *unscheduled* task counts."""
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        total = 0.0
        unscheduled = self._unscheduled
        for stage_index, stage in enumerate(self._stages):
            count = unscheduled[stage_index]
            if count:
                duration = stage.duration
                total += count * (duration.mean + r * duration.std)
        return total

    # -- metrics ---------------------------------------------------------------

    @property
    def flowtime(self) -> Optional[float]:
        """``f_i - a_i``: elapsed time between arrival and completion."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def weighted_flowtime(self) -> Optional[float]:
        """``w_i * (f_i - a_i)``."""
        if self.flowtime is None:
            return None
        return self.weight * self.flowtime

    def total_copies_launched(self) -> int:
        """Number of copies (originals plus clones) launched for this job."""
        return self._copies_launched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(id={self.job_id}, arrival={self.arrival_time:.1f}, "
            f"weight={self.weight}, stages={self.num_stages}, "
            f"tasks={self.spec.total_tasks}, "
            f"complete={self.is_complete})"
        )
