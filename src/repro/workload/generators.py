"""Additional synthetic workload generators used by tests, examples and ablations.

These generators build small, fully controlled traces so that unit tests and
property-based tests can reason about the exact scheduling outcome, and so
that examples can demonstrate specific phenomena (straggler mitigation, SRPT
prioritisation of small jobs, bulk arrival) without the full Google-like
trace.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.workload.distributions import (
    Deterministic,
    DurationDistribution,
    LogNormal,
)
from repro.workload.job import JobSpec
from repro.workload.trace import Trace

__all__ = [
    "uniform_trace",
    "bulk_arrival_trace",
    "poisson_trace",
    "bimodal_trace",
]


def _resolve_duration(
    mean: float, cv: float
) -> DurationDistribution:
    """Build a duration distribution from a mean and coefficient of variation."""
    if mean <= 0:
        raise ValueError(f"mean task duration must be positive, got {mean}")
    if cv < 0:
        raise ValueError(f"coefficient of variation must be non-negative, got {cv}")
    if cv == 0:
        return Deterministic(mean)
    return LogNormal(mean, cv * mean)


def uniform_trace(
    num_jobs: int,
    *,
    tasks_per_job: int = 10,
    reduce_tasks_per_job: int = 2,
    mean_duration: float = 10.0,
    cv: float = 0.0,
    inter_arrival: float = 0.0,
    weight: float = 1.0,
    name: str = "uniform",
) -> Trace:
    """A trace of identical jobs, optionally spaced ``inter_arrival`` apart.

    With ``cv == 0`` and ``inter_arrival == 0`` this is the deterministic
    bulk-arrival workload used to validate the offline 2-competitive bound.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if tasks_per_job <= 0:
        raise ValueError(f"tasks_per_job must be positive, got {tasks_per_job}")
    if reduce_tasks_per_job < 0:
        raise ValueError("reduce_tasks_per_job must be non-negative")
    duration = _resolve_duration(mean_duration, cv)
    jobs = [
        JobSpec(
            job_id=i,
            arrival_time=i * inter_arrival,
            weight=weight,
            num_map_tasks=tasks_per_job,
            num_reduce_tasks=reduce_tasks_per_job,
            map_duration=duration,
            reduce_duration=duration,
        )
        for i in range(num_jobs)
    ]
    return Trace(jobs, name=name)


def bulk_arrival_trace(
    job_sizes: Sequence[int],
    *,
    mean_duration: float = 10.0,
    cv: float = 0.0,
    weights: Optional[Sequence[float]] = None,
    reduce_fraction: float = 0.2,
    name: str = "bulk",
) -> Trace:
    """All jobs arrive at time zero; ``job_sizes`` gives the task count of each.

    This is the offline setting of Section IV.  Job ``i`` gets
    ``ceil(size * reduce_fraction)`` reduce tasks and the rest as map tasks.
    """
    if not job_sizes:
        raise ValueError("job_sizes must not be empty")
    if weights is not None and len(weights) != len(job_sizes):
        raise ValueError("weights must have the same length as job_sizes")
    duration = _resolve_duration(mean_duration, cv)
    jobs: List[JobSpec] = []
    for i, size in enumerate(job_sizes):
        if size <= 0:
            raise ValueError(f"job size must be positive, got {size}")
        reduces = min(int(np.ceil(size * reduce_fraction)), size - 1) if size > 1 else 0
        maps = size - reduces
        jobs.append(
            JobSpec(
                job_id=i,
                arrival_time=0.0,
                weight=float(weights[i]) if weights is not None else 1.0,
                num_map_tasks=maps,
                num_reduce_tasks=reduces,
                map_duration=duration,
                reduce_duration=duration,
            )
        )
    return Trace(jobs, name=name)


def poisson_trace(
    num_jobs: int,
    arrival_rate: float,
    *,
    mean_tasks_per_job: float = 10.0,
    mean_duration: float = 10.0,
    cv: float = 0.5,
    max_weight: int = 4,
    seed: int = 0,
    name: str = "poisson",
) -> Trace:
    """Poisson arrivals with geometric task counts and log-normal durations.

    A compact online workload for integration tests: small enough to simulate
    in milliseconds, rich enough (random sizes, weights, durations) to
    exercise every scheduler code path.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if mean_tasks_per_job < 1:
        raise ValueError("mean_tasks_per_job must be at least 1")
    rng = np.random.default_rng(seed)
    inter_arrivals = rng.exponential(1.0 / arrival_rate, num_jobs)
    arrivals = np.cumsum(inter_arrivals)
    arrivals[0] = 0.0
    jobs: List[JobSpec] = []
    for i in range(num_jobs):
        total = 1 + rng.geometric(1.0 / mean_tasks_per_job)
        reduces = min(total // 4, total - 1)
        maps = total - reduces
        job_mean = float(mean_duration * rng.uniform(0.5, 1.5))
        duration = _resolve_duration(job_mean, cv)
        jobs.append(
            JobSpec(
                job_id=i,
                arrival_time=float(arrivals[i]),
                weight=float(rng.integers(1, max_weight + 1)),
                num_map_tasks=int(maps),
                num_reduce_tasks=int(reduces),
                map_duration=duration,
                reduce_duration=duration,
            )
        )
    return Trace(jobs, name=name)


def bimodal_trace(
    num_small_jobs: int,
    num_large_jobs: int,
    *,
    small_tasks: int = 5,
    large_tasks: int = 100,
    small_duration: float = 10.0,
    large_duration: float = 100.0,
    cv: float = 0.5,
    horizon: float = 1000.0,
    small_weight: float = 1.0,
    large_weight: float = 1.0,
    seed: int = 0,
    name: str = "bimodal",
) -> Trace:
    """Small interactive jobs mixed with large batch jobs.

    This is the workload shape the paper's introduction motivates: the value
    of SRPT-style prioritisation (and of cloning the small jobs) shows up as
    a large reduction in small-job flowtime while the big jobs lose little.
    """
    if num_small_jobs < 0 or num_large_jobs < 0:
        raise ValueError("job counts must be non-negative")
    if num_small_jobs + num_large_jobs == 0:
        raise ValueError("the trace must contain at least one job")
    rng = np.random.default_rng(seed)
    jobs: List[JobSpec] = []
    job_id = 0
    for _ in range(num_large_jobs):
        duration = _resolve_duration(large_duration, cv)
        reduces = max(1, large_tasks // 5)
        jobs.append(
            JobSpec(
                job_id=job_id,
                arrival_time=float(rng.uniform(0.0, horizon)),
                weight=large_weight,
                num_map_tasks=large_tasks - reduces,
                num_reduce_tasks=reduces,
                map_duration=duration,
                reduce_duration=duration,
            )
        )
        job_id += 1
    for _ in range(num_small_jobs):
        duration = _resolve_duration(small_duration, cv)
        reduces = max(0, small_tasks // 5)
        jobs.append(
            JobSpec(
                job_id=job_id,
                arrival_time=float(rng.uniform(0.0, horizon)),
                weight=small_weight,
                num_map_tasks=small_tasks - reduces,
                num_reduce_tasks=reduces,
                map_duration=duration,
                reduce_duration=duration,
            )
        )
        job_id += 1
    return Trace(jobs, name=name)
