"""Streaming workload layer: lazily generated traces with bounded memory.

A :class:`~repro.workload.trace.Trace` materialises every
:class:`~repro.workload.job.JobSpec` up front, which is fine for the
paper-scale evaluation but rules out million-job experiments: the spec
list alone would dwarf the engine's working set.  This module provides the
lazy counterpart:

* :class:`StreamSpec` -- a *picklable recipe* (module-level generator
  factory + kwargs + declared job count) that can sit inside a
  :class:`~repro.simulation.experiment_runner.RunSpec`, cross process
  boundaries, and be content-addressed by the results cache;
* :class:`TraceStream` -- the one-shot iterable built from a recipe, which
  the engine consumes **lazily**: one arrival of lookahead, never the whole
  trace (see the engine's module docstring);
* chunked generator factories (:func:`stream_uniform_jobs`,
  :func:`stream_poisson_jobs`, :func:`stream_heavy_tail_jobs`) that sample
  job parameters in vectorised chunks of ``chunk_size`` specs -- a single
  RNG call per chunk per parameter -- so generation is fast *and* memory is
  bounded by the chunk, not the trace.

Contract
--------
A stream factory must yield ``JobSpec`` objects in non-decreasing
``arrival_time`` order (the engine enforces this) and must yield exactly
the declared number of jobs (:class:`TraceStream` enforces this).  All
randomness must derive from the explicit ``seed`` kwarg so a stream -- like
every other workload source -- is a pure function of its spec; replaying
the same :class:`StreamSpec` yields the identical job sequence, which is
what keeps streamed runs bit-identical across serial, pooled and cached
execution.

``chunk_size`` is part of a stream's *identity*, not just a memory knob:
vectorised RNG draws consume generator state per chunk, so different chunk
sizes produce statistically identical but numerically different job
sequences.  Keep it fixed (the default) when comparing runs; it correctly
participates in :meth:`StreamSpec.cache_key` and in the results-cache
fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.workload.distributions import Deterministic, LogNormal
from repro.workload.job import JobSpec, StageSpec, _fast_legacy_spec

__all__ = [
    "StreamSpec",
    "TraceStream",
    "stream_uniform_jobs",
    "stream_uniform_window",
    "stream_poisson_jobs",
    "stream_heavy_tail_jobs",
    "stream_dag_chain_jobs",
    "stream_dag_diamond_jobs",
]

#: Default number of job specs sampled per vectorised chunk.
DEFAULT_CHUNK_SIZE = 8192


class TraceStream:
    """A one-shot, arrival-ordered, lazily generated source of job specs.

    Looks enough like a :class:`~repro.workload.trace.Trace` for the engine
    (``num_jobs``, ``total_tasks``, ``name``, iteration) while holding no
    job list: iteration pulls specs straight from the generator factory.
    A stream can be consumed **once**; build a fresh one per run from its
    :class:`StreamSpec` (``RunSpec`` execution does this automatically).
    """

    __slots__ = ("spec", "_consumed", "yielded")

    def __init__(self, spec: "StreamSpec") -> None:
        self.spec = spec
        self._consumed = False
        #: Number of specs handed out so far (diagnostics / tests).
        self.yielded = 0

    @property
    def name(self) -> str:
        """Human-readable stream name (from the recipe)."""
        return self.spec.name

    @property
    def num_jobs(self) -> int:
        """Declared number of jobs the stream will yield."""
        return self.spec.num_jobs

    @property
    def total_tasks(self) -> Optional[int]:
        """Unknown ahead of time for a stream; the engine accumulates it."""
        return None

    def __iter__(self) -> Iterator[JobSpec]:
        if self._consumed:
            raise RuntimeError(
                f"stream {self.name!r} was already consumed; build a fresh "
                "TraceStream from its StreamSpec for every run"
            )
        self._consumed = True
        return self._generate()

    def _generate(self) -> Iterator[JobSpec]:
        declared = self.spec.num_jobs
        for spec in self.spec.factory(num_jobs=declared, **dict(self.spec.kwargs)):
            if self.yielded >= declared:
                raise RuntimeError(
                    f"stream {self.name!r} yielded more than its declared "
                    f"{declared} jobs"
                )
            self.yielded += 1
            yield spec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceStream(name={self.name!r}, num_jobs={self.num_jobs})"


@dataclass(frozen=True)
class StreamSpec:
    """A picklable recipe for a :class:`TraceStream`.

    ``factory`` must be a module-level generator function (picklable by
    reference) called as ``factory(num_jobs=num_jobs, **kwargs)``.  The
    declared ``num_jobs`` is carried explicitly so the engine knows when
    the run is complete without consuming the stream ahead of time.
    """

    factory: Callable[..., Iterable[JobSpec]]
    num_jobs: int
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    name: str = "stream"

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ValueError(f"num_jobs must be positive, got {self.num_jobs}")
        if not callable(self.factory):
            raise TypeError(f"factory must be callable, got {self.factory!r}")

    def build(self) -> TraceStream:
        """Create a fresh, unconsumed stream from this recipe."""
        return TraceStream(self)

    def cache_key(self) -> str:
        """Stable identity string (factory + arguments), for caching layers."""
        factory = self.factory
        name = (
            f"{getattr(factory, '__module__', '?')}."
            f"{getattr(factory, '__qualname__', repr(factory))}"
        )
        items = ", ".join(f"{k}={self.kwargs[k]!r}" for k in sorted(self.kwargs))
        return f"{name}(num_jobs={self.num_jobs}, {items})"


# ------------------------------------------------------------------ factories


def _chunk_sizes(num_jobs: int, chunk_size: int) -> Iterator[int]:
    """Sizes of successive sampling chunks covering ``num_jobs``."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    remaining = num_jobs
    while remaining > 0:
        size = min(chunk_size, remaining)
        yield size
        remaining -= size


def stream_uniform_jobs(
    num_jobs: int,
    *,
    tasks_per_job: int = 10,
    reduce_tasks_per_job: int = 2,
    mean_duration: float = 10.0,
    inter_arrival: float = 0.0,
    weight: float = 1.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[JobSpec]:
    """Identical deterministic jobs spaced ``inter_arrival`` apart.

    The streaming counterpart of
    :func:`repro.workload.generators.uniform_trace` (deterministic
    durations only): all jobs share a single
    :class:`~repro.workload.distributions.Deterministic` instance, so the
    per-job footprint is one ``JobSpec``.  This is the workhorse of the
    million-job throughput benchmarks.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if tasks_per_job <= 0:
        raise ValueError(f"tasks_per_job must be positive, got {tasks_per_job}")
    if reduce_tasks_per_job < 0:
        raise ValueError("reduce_tasks_per_job must be non-negative")
    if inter_arrival < 0:
        raise ValueError(f"inter_arrival must be >= 0, got {inter_arrival}")
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    duration = Deterministic(mean_duration)
    # All parameters are validated above, so the specs take the fast
    # construction path (this factory feeds the million-job benchmarks).
    fast_spec = _fast_legacy_spec
    job_id = 0
    for size in _chunk_sizes(num_jobs, chunk_size):
        for _ in range(size):
            yield fast_spec(
                job_id,
                job_id * inter_arrival,
                weight,
                tasks_per_job,
                reduce_tasks_per_job,
                duration,
                duration,
            )
            job_id += 1


def stream_uniform_window(
    num_jobs: int,
    *,
    start: int = 0,
    tasks_per_job: int = 10,
    reduce_tasks_per_job: int = 2,
    mean_duration: float = 10.0,
    inter_arrival: float = 0.0,
    weight: float = 1.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[JobSpec]:
    """A contiguous job-id window ``[start, start + num_jobs)`` of
    :func:`stream_uniform_jobs`.

    Yields exactly the specs the full uniform stream would yield for those
    job ids -- same ids, same absolute arrival times (``job_id *
    inter_arrival``, the identical float expression), same shared
    :class:`~repro.workload.distributions.Deterministic` duration -- so a
    window is a byte-exact slice of the parent stream.  This is the shard
    trace of :mod:`repro.simulation.sharding`: each shard simulates one
    window independently and the windows' specs concatenate back into the
    parent stream's spec sequence.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    if tasks_per_job <= 0:
        raise ValueError(f"tasks_per_job must be positive, got {tasks_per_job}")
    if reduce_tasks_per_job < 0:
        raise ValueError("reduce_tasks_per_job must be non-negative")
    if inter_arrival < 0:
        raise ValueError(f"inter_arrival must be >= 0, got {inter_arrival}")
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    duration = Deterministic(mean_duration)
    fast_spec = _fast_legacy_spec
    job_id = start
    for size in _chunk_sizes(num_jobs, chunk_size):
        for _ in range(size):
            yield fast_spec(
                job_id,
                job_id * inter_arrival,
                weight,
                tasks_per_job,
                reduce_tasks_per_job,
                duration,
                duration,
            )
            job_id += 1


def stream_poisson_jobs(
    num_jobs: int,
    *,
    arrival_rate: float = 1.0,
    mean_tasks_per_job: float = 10.0,
    mean_duration: float = 10.0,
    cv: float = 0.5,
    max_weight: int = 4,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[JobSpec]:
    """Poisson arrivals, geometric task counts, log-normal durations.

    The streaming counterpart of
    :func:`repro.workload.generators.poisson_trace`: every random job
    parameter is drawn in vectorised chunks of ``chunk_size`` (one RNG call
    per parameter per chunk) and the cumulative arrival clock is threaded
    across chunks, so memory stays O(``chunk_size``) for any ``num_jobs``.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if mean_tasks_per_job < 1:
        raise ValueError("mean_tasks_per_job must be at least 1")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    rng = np.random.default_rng(seed)
    clock = 0.0
    job_id = 0
    for size in _chunk_sizes(num_jobs, chunk_size):
        inter_arrivals = rng.exponential(1.0 / arrival_rate, size)
        totals = 1 + rng.geometric(1.0 / mean_tasks_per_job, size)
        mean_factors = rng.uniform(0.5, 1.5, size)
        weights = rng.integers(1, max_weight + 1, size)
        for i in range(size):
            clock += float(inter_arrivals[i])
            total = int(totals[i])
            reduces = min(total // 4, total - 1)
            job_mean = float(mean_duration * mean_factors[i])
            if cv == 0:
                duration = Deterministic(job_mean)
            else:
                duration = LogNormal(job_mean, cv * job_mean)
            yield _fast_legacy_spec(
                job_id,
                clock,
                float(weights[i]),
                total - reduces,
                reduces,
                duration,
                duration,
            )
            job_id += 1


def stream_dag_chain_jobs(
    num_jobs: int,
    *,
    num_rounds: int = 3,
    arrival_rate: float = 1.0,
    mean_tasks_per_round: float = 4.0,
    mean_duration: float = 10.0,
    cv: float = 0.5,
    max_weight: int = 4,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[JobSpec]:
    """Multi-round jobs: a linear chain of ``num_rounds`` shuffle rounds.

    Each job is a stage chain ``round0 -> round1 -> ... -> round{k-1}``
    (every stage depends on the previous one), modelling iterative
    MapReduce workloads where each round's output feeds the next round's
    input.  ``num_rounds=2`` degenerates to the classic map->reduce shape.
    Per-round task counts are geometric with mean ``mean_tasks_per_round``;
    durations are log-normal around a per-job mean (shared across rounds).
    Arrivals are Poisson; all sampling is chunked and seed-pure per the
    stream-factory contract.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if num_rounds < 1:
        raise ValueError(f"num_rounds must be at least 1, got {num_rounds}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if mean_tasks_per_round < 1:
        raise ValueError("mean_tasks_per_round must be at least 1")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    rng = np.random.default_rng(seed)
    clock = 0.0
    job_id = 0
    for size in _chunk_sizes(num_jobs, chunk_size):
        inter_arrivals = rng.exponential(1.0 / arrival_rate, size)
        # One vectorised draw per chunk: a (size, num_rounds) matrix of
        # per-round task counts.
        counts = rng.geometric(1.0 / mean_tasks_per_round, (size, num_rounds))
        mean_factors = rng.uniform(0.5, 1.5, size)
        weights = rng.integers(1, max_weight + 1, size)
        for i in range(size):
            clock += float(inter_arrivals[i])
            job_mean = float(mean_duration * mean_factors[i])
            if cv == 0:
                duration = Deterministic(job_mean)
            else:
                duration = LogNormal(job_mean, cv * job_mean)
            stages = tuple(
                StageSpec(
                    name=f"round{k}",
                    num_tasks=int(counts[i, k]),
                    duration=duration,
                    deps=() if k == 0 else (k - 1,),
                )
                for k in range(num_rounds)
            )
            yield JobSpec.from_stages(
                job_id=job_id,
                arrival_time=clock,
                weight=float(weights[i]),
                stages=stages,
            )
            job_id += 1


def stream_dag_diamond_jobs(
    num_jobs: int,
    *,
    fan_out: int = 3,
    arrival_rate: float = 1.0,
    mean_tasks_per_branch: float = 4.0,
    mean_duration: float = 10.0,
    cv: float = 0.5,
    max_weight: int = 4,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[JobSpec]:
    """Fan-out/fan-in diamond jobs: split -> ``fan_out`` branches -> merge.

    Each job is a diamond-shaped stage DAG: a single-task ``split`` stage,
    ``fan_out`` independent branch stages that all depend on the split (and
    can run concurrently once it completes), and a single-task ``merge``
    stage depending on *every* branch -- the canonical fan-in precedence
    that exercises multi-predecessor gating.  Branch task counts are
    geometric with mean ``mean_tasks_per_branch``; durations are log-normal
    around a per-job mean.  Arrivals are Poisson; all sampling is chunked
    and seed-pure per the stream-factory contract.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if fan_out < 1:
        raise ValueError(f"fan_out must be at least 1, got {fan_out}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if mean_tasks_per_branch < 1:
        raise ValueError("mean_tasks_per_branch must be at least 1")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    rng = np.random.default_rng(seed)
    clock = 0.0
    job_id = 0
    for size in _chunk_sizes(num_jobs, chunk_size):
        inter_arrivals = rng.exponential(1.0 / arrival_rate, size)
        counts = rng.geometric(1.0 / mean_tasks_per_branch, (size, fan_out))
        mean_factors = rng.uniform(0.5, 1.5, size)
        weights = rng.integers(1, max_weight + 1, size)
        for i in range(size):
            clock += float(inter_arrivals[i])
            job_mean = float(mean_duration * mean_factors[i])
            if cv == 0:
                duration = Deterministic(job_mean)
            else:
                duration = LogNormal(job_mean, cv * job_mean)
            branches = tuple(
                StageSpec(
                    name=f"branch{b}",
                    num_tasks=int(counts[i, b]),
                    duration=duration,
                    deps=(0,),
                )
                for b in range(fan_out)
            )
            stages = (
                StageSpec(name="split", num_tasks=1, duration=duration),
                *branches,
                StageSpec(
                    name="merge",
                    num_tasks=1,
                    duration=duration,
                    deps=tuple(range(1, fan_out + 1)),
                ),
            )
            yield JobSpec.from_stages(
                job_id=job_id,
                arrival_time=clock,
                weight=float(weights[i]),
                stages=stages,
            )
            job_id += 1


def stream_heavy_tail_jobs(
    num_jobs: int,
    *,
    arrival_rate: float = 1.0,
    alpha: float = 1.5,
    min_tasks: int = 1,
    max_tasks: int = 1000,
    mean_duration: float = 10.0,
    cv: float = 0.5,
    max_weight: int = 4,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[JobSpec]:
    """Poisson arrivals with Pareto(``alpha``) heavy-tailed job sizes.

    The regime where cloning's advantage is largest (and the paper's
    competitive bounds are most interesting): a sea of small jobs with a
    heavy tail of very large ones.  Task counts follow a bounded Pareto on
    ``[min_tasks, max_tasks]``; durations are log-normal around a per-job
    mean.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if not 1 <= min_tasks <= max_tasks:
        raise ValueError(
            f"need 1 <= min_tasks <= max_tasks, got [{min_tasks}, {max_tasks}]"
        )
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    rng = np.random.default_rng(seed)
    clock = 0.0
    job_id = 0
    for size in _chunk_sizes(num_jobs, chunk_size):
        inter_arrivals = rng.exponential(1.0 / arrival_rate, size)
        # Bounded Pareto via inverse-CDF sampling of the unbounded tail,
        # clipped at max_tasks (the standard heavy-tail workload recipe).
        uniforms = rng.random(size)
        sizes = np.minimum(
            max_tasks, np.floor(min_tasks * uniforms ** (-1.0 / alpha))
        ).astype(int)
        mean_factors = rng.uniform(0.5, 1.5, size)
        weights = rng.integers(1, max_weight + 1, size)
        for i in range(size):
            clock += float(inter_arrivals[i])
            total = int(sizes[i])
            reduces = min(total // 4, total - 1)
            job_mean = float(mean_duration * mean_factors[i])
            if cv == 0:
                duration = Deterministic(job_mean)
            else:
                duration = LogNormal(job_mean, cv * job_mean)
            yield _fast_legacy_spec(
                job_id,
                clock,
                float(weights[i]),
                total - reduces,
                reduces,
                duration,
                duration,
            )
            job_id += 1
