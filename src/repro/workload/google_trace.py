"""Synthetic Google-cluster-trace generator calibrated to the paper's Table II.

The paper drives its evaluation with the public Google cluster-usage traces
[21]: 6064 jobs over a 35 032 s window, an average of 26.31 tasks per job,
task durations between 12.8 s and 22 919.3 s with a mean of 1179.7 s, and
per-job priorities in 0..11 that are used directly as job weights.

The original trace files are not redistributable and not available offline,
so this module generates a *synthetic* trace matching those published
marginals:

* heavy-tailed tasks-per-job (bounded Pareto, calibrated so the mean matches
  the target tasks/job);
* heavy-tailed per-job mean task duration (bounded Pareto over the published
  min/max range, calibrated to the published mean);
* log-normal within-job task-duration variation with a configurable
  coefficient of variation (the within-job variation of the real trace is
  small -- the paper notes this when discussing Figure 2);
* priorities drawn from a skewed categorical distribution over 0..11 and
  mapped to weights ``priority + 1`` (the "+1" keeps weights strictly
  positive, which the weighted-SRPT priority ``w_i / phi_i`` requires);
* uniform job arrivals over the trace window (the 12-hour window the paper
  extracts has no strong diurnal pattern).

The ``scale`` parameter shrinks the number of jobs while keeping the trace
window; experiments scale the machine count by the same factor so that the
offered load -- the quantity scheduling behaviour actually depends on -- is
preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.workload.distributions import BoundedPareto, Floored, LogNormal
from repro.workload.job import JobSpec
from repro.workload.trace import Trace

__all__ = ["GoogleTraceConfig", "GoogleTraceGenerator", "TABLE_II_TARGETS"]


#: The statistics published in Table II of the paper.
TABLE_II_TARGETS = {
    "total_jobs": 6064,
    "trace_duration": 35032.0,
    "average_tasks_per_job": 26.31,
    "min_task_duration": 12.8,
    "max_task_duration": 22919.3,
    "average_task_duration": 1179.7,
    "num_machines": 12000,
}


@dataclass(frozen=True)
class GoogleTraceConfig:
    """Parameters of the synthetic Google-like trace.

    The defaults reproduce the full-scale Table II trace.  ``scale`` < 1
    shrinks the workload so that the cluster (scaled by the same factor in
    the experiment configs) sees the same *offered load* as the paper's.

    Shrinking is split between two dimensions, because both matter:

    * ``job_scale`` -- fewer jobs over the same 12-hour window.  Scaling
      only this dimension preserves load but collapses the number of
      *concurrently alive* jobs, and the epsilon-sharing behaviour of
      SRPTMS+C (Figure 1) only shows up when many jobs compete.
    * ``size_scale`` -- fewer tasks per job.  Scaling only this dimension
      preserves concurrency but degenerates jobs to single tasks.

    By default both factors are ``sqrt(scale)``, which keeps the product
    (and hence the offered load against a ``scale``-sized cluster) equal to
    ``scale`` while degrading concurrency and job structure as gently as
    possible.  Either factor can be overridden explicitly.
    """

    scale: float = 1.0
    job_scale: Optional[float] = None
    size_scale: Optional[float] = None
    num_jobs: int = TABLE_II_TARGETS["total_jobs"]
    trace_duration: float = TABLE_II_TARGETS["trace_duration"]
    mean_tasks_per_job: float = TABLE_II_TARGETS["average_tasks_per_job"]
    max_tasks_per_job: int = 600
    min_task_duration: float = TABLE_II_TARGETS["min_task_duration"]
    max_task_duration: float = TABLE_II_TARGETS["max_task_duration"]
    mean_task_duration: float = TABLE_II_TARGETS["average_task_duration"]
    #: Within-job coefficient of variation of task durations (the knob that
    #: creates stragglers).  Individual jobs jitter around this value by
    #: +/-40% so that the r-term of the effective workload has something to
    #: distinguish.
    within_job_cv: float = 0.6
    #: Rank correlation (Gaussian copula) between a job's task count and its
    #: per-task mean duration.  In the real trace large batch jobs have both
    #: many tasks and long tasks, while the numerous small jobs have short
    #: tasks -- this is what makes the *average job* flowtime far smaller
    #: than the *average task* duration of Table II.
    size_duration_correlation: float = 0.7
    #: Fraction of a job's tasks that are reduce tasks.
    reduce_fraction: float = 0.25
    #: Reduce tasks tend to be longer than map tasks (shuffle + merge); this
    #: multiplies the per-job mean duration for the reduce phase.
    reduce_duration_factor: float = 1.3
    #: Number of distinct priority levels (0 .. num_priorities-1).
    num_priorities: int = 12
    #: Geometric-ish decay of the priority histogram: most jobs are
    #: low-priority batch work, few are high-priority production jobs.
    priority_decay: float = 0.65

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.num_jobs <= 0:
            raise ValueError(f"num_jobs must be positive, got {self.num_jobs}")
        if not 0.0 <= self.reduce_fraction < 1.0:
            raise ValueError("reduce_fraction must lie in [0, 1)")
        if self.within_job_cv < 0:
            raise ValueError("within_job_cv must be non-negative")
        if self.min_task_duration <= 0:
            raise ValueError("min_task_duration must be positive")
        if self.max_task_duration <= self.min_task_duration:
            raise ValueError("max_task_duration must exceed min_task_duration")
        if not self.min_task_duration < self.mean_task_duration < self.max_task_duration:
            raise ValueError("mean_task_duration must lie strictly between min and max")
        if self.num_priorities < 1:
            raise ValueError("num_priorities must be at least 1")
        if not -1.0 <= self.size_duration_correlation <= 1.0:
            raise ValueError("size_duration_correlation must lie in [-1, 1]")
        if self.job_scale is not None and self.job_scale <= 0:
            raise ValueError(f"job_scale must be positive, got {self.job_scale}")
        if self.size_scale is not None and self.size_scale <= 0:
            raise ValueError(f"size_scale must be positive, got {self.size_scale}")

    @property
    def effective_job_scale(self) -> float:
        """The job-count shrink factor (default ``sqrt(scale)``)."""
        if self.job_scale is not None:
            return self.job_scale
        return math.sqrt(self.scale)

    @property
    def effective_size_scale(self) -> float:
        """The tasks-per-job shrink factor (default ``sqrt(scale)``)."""
        if self.size_scale is not None:
            return self.size_scale
        return math.sqrt(self.scale)

    @property
    def effective_num_jobs(self) -> int:
        """Number of jobs after applying the job-count shrink factor."""
        return max(1, int(round(self.num_jobs * self.effective_job_scale)))

    @property
    def effective_mean_tasks_per_job(self) -> float:
        """Target mean tasks per job after applying the size shrink factor."""
        return max(1.5, self.mean_tasks_per_job * self.effective_size_scale)

    @property
    def effective_max_tasks_per_job(self) -> int:
        """Upper bound on tasks per job after applying the size shrink factor."""
        return max(4, int(round(self.max_tasks_per_job * self.effective_size_scale)))

    @property
    def effective_num_machines(self) -> int:
        """Machine count that keeps the full-scale offered load."""
        return max(1, int(round(TABLE_II_TARGETS["num_machines"] * self.scale)))

    @classmethod
    def scaled(cls, scale: float, **overrides) -> "GoogleTraceConfig":
        """Convenience constructor for a scaled-down config."""
        return cls(scale=scale, **overrides)


def _calibrate_bounded_pareto_alpha(
    minimum: float, maximum: float, target_mean: float
) -> float:
    """Find the Pareto shape ``alpha`` whose bounded mean equals ``target_mean``.

    The bounded-Pareto mean is monotonically decreasing in ``alpha`` for a
    fixed support, so bisection converges quickly.
    """
    if not minimum < target_mean < maximum:
        raise ValueError(
            f"target mean {target_mean} must lie inside ({minimum}, {maximum})"
        )

    def mean_for(alpha: float) -> float:
        return BoundedPareto(minimum, maximum, alpha).mean

    low, high = 1e-3, 50.0
    # Expand the bracket if needed (mean_for(low) is close to the arithmetic
    # midpoint of a log-uniform, mean_for(high) approaches `minimum`).
    for _ in range(100):
        if mean_for(low) >= target_mean >= mean_for(high):
            break
        low /= 2.0
        high *= 1.5
    for _ in range(200):
        mid = 0.5 * (low + high)
        if mean_for(mid) > target_mean:
            low = mid
        else:
            high = mid
        if high - low < 1e-9:
            break
    return 0.5 * (low + high)


class GoogleTraceGenerator:
    """Generates synthetic traces whose marginals match Table II."""

    def __init__(self, config: Optional[GoogleTraceConfig] = None) -> None:
        self.config = config if config is not None else GoogleTraceConfig()
        cfg = self.config
        self._tasks_alpha = _calibrate_bounded_pareto_alpha(
            1.0,
            float(cfg.effective_max_tasks_per_job),
            cfg.effective_mean_tasks_per_job,
        )
        # Per-job mean durations live inside the published [min, max] range;
        # the upper bound is pulled in slightly so that within-job variation
        # does not push individual samples far beyond the published maximum.
        upper = cfg.max_task_duration / (1.0 + 2.0 * cfg.within_job_cv)
        upper = max(upper, cfg.mean_task_duration * 1.5)
        self._duration_alpha = _calibrate_bounded_pareto_alpha(
            cfg.min_task_duration, upper, cfg.mean_task_duration
        )
        self._duration_upper = upper

    # -- per-job sampling helpers ----------------------------------------------

    @staticmethod
    def _normal_cdf(z: np.ndarray) -> np.ndarray:
        """Standard normal CDF (vectorised, no scipy dependency needed)."""
        return 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))

    def _sample_sizes_and_durations(
        self, rng: np.random.Generator, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Jointly sample per-job task counts and mean task durations.

        A Gaussian copula with correlation ``size_duration_correlation``
        couples the two heavy-tailed marginals: big jobs tend to have long
        tasks, small jobs short tasks, while each marginal keeps the
        calibrated Table II mean.
        """
        cfg = self.config
        rho = cfg.size_duration_correlation
        z_size = rng.standard_normal(n)
        z_noise = rng.standard_normal(n)
        z_duration = rho * z_size + math.sqrt(max(0.0, 1.0 - rho * rho)) * z_noise
        u_size = np.clip(self._normal_cdf(z_size), 0.0, 1.0 - 1e-12)
        u_duration = np.clip(self._normal_cdf(z_duration), 0.0, 1.0 - 1e-12)

        tasks_dist = BoundedPareto(
            1.0, float(cfg.effective_max_tasks_per_job), self._tasks_alpha
        )
        duration_dist = BoundedPareto(
            cfg.min_task_duration, self._duration_upper, self._duration_alpha
        )
        task_counts = np.maximum(1, np.round(tasks_dist.quantile(u_size))).astype(int)
        durations = duration_dist.quantile(u_duration)
        # Table II's "average task duration" weighs each *task*, not each job;
        # with a positive size/duration correlation the task-weighted mean
        # exceeds the job-weighted mean, so rescale the per-job means to hit
        # the published task-weighted target (this also pins the offered load
        # to the real trace's value).
        achieved = float(np.sum(task_counts * durations) / np.sum(task_counts))
        if achieved > 0:
            durations = durations * (cfg.mean_task_duration / achieved)
        durations = np.clip(
            durations, cfg.min_task_duration, cfg.max_task_duration
        )
        return task_counts, durations

    def _sample_priorities(self, rng: np.random.Generator, n: int) -> np.ndarray:
        cfg = self.config
        levels = np.arange(cfg.num_priorities)
        weights = cfg.priority_decay**levels
        probabilities = weights / weights.sum()
        return rng.choice(levels, size=n, p=probabilities)

    def _split_tasks(self, total: int) -> tuple[int, int]:
        """Split a job's task count into (map, reduce) counts."""
        cfg = self.config
        reduces = int(round(total * cfg.reduce_fraction))
        reduces = min(reduces, total - 1) if total > 1 else 0
        maps = total - reduces
        return maps, reduces

    # -- public API -----------------------------------------------------------------

    def generate(self, seed: int = 0) -> Trace:
        """Generate a trace using ``seed`` for reproducibility."""
        cfg = self.config
        rng = np.random.default_rng(seed)
        n = cfg.effective_num_jobs

        arrivals = np.sort(rng.uniform(0.0, cfg.trace_duration, n))
        task_counts, mean_durations = self._sample_sizes_and_durations(rng, n)
        priorities = self._sample_priorities(rng, n)

        jobs: List[JobSpec] = []
        for job_id in range(n):
            total_tasks = int(task_counts[job_id])
            maps, reduces = self._split_tasks(total_tasks)
            map_mean = float(mean_durations[job_id])
            reduce_mean = map_mean * cfg.reduce_duration_factor
            job_cv = cfg.within_job_cv * float(rng.uniform(0.6, 1.4))
            # The floor reproduces the trace's hard minimum task duration
            # (container start-up + split fetch in the real system).
            map_dist = Floored(
                LogNormal(map_mean, job_cv * map_mean),
                cfg.min_task_duration,
            )
            reduce_dist = Floored(
                LogNormal(reduce_mean, job_cv * reduce_mean),
                cfg.min_task_duration,
            )
            jobs.append(
                JobSpec(
                    job_id=job_id,
                    arrival_time=float(arrivals[job_id]),
                    weight=float(priorities[job_id]) + 1.0,
                    num_map_tasks=maps,
                    num_reduce_tasks=reduces,
                    map_duration=map_dist,
                    reduce_duration=reduce_dist,
                )
            )
        return Trace(jobs, name=f"google-synthetic-scale{cfg.scale:g}")

    def generate_many(self, seeds: Sequence[int]) -> List[Trace]:
        """Generate one trace per seed (for replicated experiments)."""
        return [self.generate(seed) for seed in seeds]
