"""Trace container and the Table II summary statistics.

A :class:`Trace` is an ordered collection of :class:`~repro.workload.job.JobSpec`
objects.  :class:`TraceStatistics` computes exactly the quantities the paper
publishes for the Google cluster-usage trace in Table II, so the benchmark
``benchmarks/test_table2_trace_stats.py`` can print a row-for-row equivalent
table for the synthetic trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.workload.job import JobSpec

__all__ = ["Trace", "TraceStatistics"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a trace, mirroring Table II of the paper."""

    total_jobs: int
    trace_duration: float
    average_tasks_per_job: float
    min_task_duration: float
    max_task_duration: float
    average_task_duration: float
    total_tasks: int
    average_weight: float

    def as_rows(self) -> List[tuple]:
        """Render as (label, value) rows in the same order as Table II."""
        return [
            ("Total number of Jobs", self.total_jobs),
            ("Trace duration (s)", round(self.trace_duration, 1)),
            ("Average number of tasks per job", round(self.average_tasks_per_job, 2)),
            ("Minimum task duration (s)", round(self.min_task_duration, 1)),
            ("Maximum task duration (s)", round(self.max_task_duration, 1)),
            ("Average task duration (s)", round(self.average_task_duration, 1)),
        ]

    def render(self) -> str:
        """Human-readable Table II-style rendering."""
        rows = self.as_rows()
        width = max(len(label) for label, _ in rows)
        lines = [f"{label:<{width}}  {value}" for label, value in rows]
        return "\n".join(lines)


class Trace:
    """An immutable, arrival-time-ordered collection of job specs."""

    def __init__(self, jobs: Iterable[JobSpec], name: str = "trace") -> None:
        specs = sorted(jobs, key=lambda spec: (spec.arrival_time, spec.job_id))
        if not specs:
            raise ValueError("a trace must contain at least one job")
        seen_ids = set()
        for spec in specs:
            if spec.job_id in seen_ids:
                raise ValueError(f"duplicate job_id {spec.job_id} in trace")
            seen_ids.add(spec.job_id)
        self._jobs: List[JobSpec] = specs
        self.name = name

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> JobSpec:
        return self._jobs[index]

    @property
    def jobs(self) -> Sequence[JobSpec]:
        """The job specs ordered by arrival time."""
        return tuple(self._jobs)

    # -- derived quantities ------------------------------------------------------

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the trace."""
        return len(self._jobs)

    @property
    def total_tasks(self) -> int:
        """Total logical tasks across all jobs."""
        return sum(spec.total_tasks for spec in self._jobs)

    @property
    def first_arrival(self) -> float:
        """Arrival time of the earliest job."""
        return self._jobs[0].arrival_time

    @property
    def last_arrival(self) -> float:
        """Arrival time of the latest job."""
        return self._jobs[-1].arrival_time

    @property
    def duration(self) -> float:
        """Span between the first and the last job arrival."""
        return self.last_arrival - self.first_arrival

    @property
    def total_expected_work(self) -> float:
        """Sum over jobs of the expected total task workload."""
        return sum(spec.expected_total_work for spec in self._jobs)

    def expected_load(self, num_machines: int) -> float:
        """Offered load: expected work per machine per unit of trace time.

        Values near or above 1.0 mean the cluster is saturated; the paper's
        Google-trace experiments run well below saturation so that cloning
        has spare machines to use.
        """
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        horizon = max(self.duration, 1.0)
        return self.total_expected_work / (num_machines * horizon)

    def statistics(
        self, rng: Optional[np.random.Generator] = None, samples_per_phase: int = 1
    ) -> TraceStatistics:
        """Compute Table II statistics.

        Task-duration extrema and averages are computed from one sampled
        duration per task (using ``rng``), which is how a measured trace
        would report them; when ``rng`` is omitted the per-phase means are
        used instead (deterministic, still the right average).
        """
        durations: List[float] = []
        weights: List[float] = []
        for spec in self._jobs:
            weights.append(spec.weight)
            for phase_count, dist in (
                (spec.num_map_tasks, spec.map_duration),
                (spec.num_reduce_tasks, spec.reduce_duration),
            ):
                if phase_count == 0:
                    continue
                if rng is None:
                    durations.extend([dist.mean] * phase_count)
                else:
                    n = phase_count * max(1, samples_per_phase)
                    # Batched draw: bit-identical to per-task sampling by
                    # the sample_batch RNG-consumption contract.
                    durations.extend(dist.sample_batch(rng, n).tolist())
        durations_arr = np.asarray(durations, dtype=float)
        return TraceStatistics(
            total_jobs=self.num_jobs,
            trace_duration=self.duration,
            average_tasks_per_job=self.total_tasks / self.num_jobs,
            min_task_duration=float(durations_arr.min()),
            max_task_duration=float(durations_arr.max()),
            average_task_duration=float(durations_arr.mean()),
            total_tasks=self.total_tasks,
            average_weight=float(np.mean(weights)),
        )

    # -- transformations -----------------------------------------------------------

    def filter(self, predicate) -> "Trace":
        """Return a new trace containing only jobs satisfying ``predicate``."""
        kept = [spec for spec in self._jobs if predicate(spec)]
        if not kept:
            raise ValueError("filter removed every job from the trace")
        return Trace(kept, name=f"{self.name}-filtered")

    def head(self, n: int) -> "Trace":
        """Return a trace of the first ``n`` jobs by arrival order."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return Trace(self._jobs[:n], name=f"{self.name}-head{n}")

    def shifted(self, offset: float) -> "Trace":
        """Return a trace with all arrival times shifted by ``offset``."""
        jobs = [
            JobSpec(
                job_id=spec.job_id,
                arrival_time=spec.arrival_time + offset,
                weight=spec.weight,
                num_map_tasks=spec.num_map_tasks,
                num_reduce_tasks=spec.num_reduce_tasks,
                map_duration=spec.map_duration,
                reduce_duration=spec.reduce_duration,
            )
            for spec in self._jobs
        ]
        return Trace(jobs, name=f"{self.name}-shifted")

    def as_bulk_arrival(self) -> "Trace":
        """Collapse all arrivals to time zero (the offline setting of Section IV)."""
        jobs = [
            JobSpec(
                job_id=spec.job_id,
                arrival_time=0.0,
                weight=spec.weight,
                num_map_tasks=spec.num_map_tasks,
                num_reduce_tasks=spec.num_reduce_tasks,
                map_duration=spec.map_duration,
                reduce_duration=spec.reduce_duration,
            )
            for spec in self._jobs
        ]
        return Trace(jobs, name=f"{self.name}-bulk")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(name={self.name!r}, jobs={self.num_jobs}, "
            f"tasks={self.total_tasks}, duration={self.duration:.1f}s)"
        )
