"""repro -- reproduction of "Task-Cloning Algorithms in a MapReduce Cluster
with Competitive Performance Bounds" (Xu & Lau, ICDCS 2015).

The package is organised as:

* :mod:`repro.core` -- the paper's schedulers (offline Algorithm 1 and the
  online SRPTMS+C Algorithm 2) and their theory (speedup functions,
  effective workloads, epsilon-fraction machine sharing, Theorem 1 bounds);
* :mod:`repro.workload` -- job/task model, duration distributions, traces
  and the synthetic Google-trace generator;
* :mod:`repro.cluster` -- machines, occupancy bookkeeping and straggler
  injection;
* :mod:`repro.scenarios` -- cluster environments (heterogeneous machine
  speeds, dynamic stragglers, machine failures) behind a picklable
  :class:`~repro.scenarios.ScenarioSpec`;
* :mod:`repro.simulation` -- the discrete-event cluster simulator;
* :mod:`repro.schedulers` -- baseline policies (Mantri, SCA, LATE, FIFO,
  Fair, plain SRPT);
* :mod:`repro.analysis` -- CDFs, comparison tables, theory checks;
* :mod:`repro.study` -- declarative sweeps: a :class:`~repro.study.Study`
  is a cartesian product of axes (schedulers x scenarios x workloads x
  seeds x scalar sweeps) compiled to run specs, returning a tidy
  :class:`~repro.study.ResultSet`; spec files via ``repro-mapreduce sweep``;
* :mod:`repro.experiments` -- one ``run_*`` function per paper
  table/figure, each a thin wrapper over a study preset.

Quickstart::

    from repro import SRPTMSCScheduler, run_simulation
    from repro.workload import poisson_trace

    trace = poisson_trace(num_jobs=100, arrival_rate=0.5)
    result = run_simulation(trace, SRPTMSCScheduler(epsilon=0.6, r=3.0),
                            num_machines=50)
    print(result.mean_flowtime, result.weighted_mean_flowtime)
"""

from repro.core.offline import OfflineSRPTScheduler
from repro.core.srptms_c import SRPTMSCScheduler
from repro.scenarios import ScenarioSpec
from repro.schedulers import (
    FIFOScheduler,
    FairScheduler,
    LATEScheduler,
    MantriScheduler,
    SCAScheduler,
    SRPTScheduler,
)
from repro.simulation import (
    SimulationEngine,
    SimulationResult,
    run_replications,
    run_simulation,
)
from repro.study import ResultSet, Study, load_study
from repro.workload import GoogleTraceConfig, GoogleTraceGenerator, Trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SRPTMSCScheduler",
    "OfflineSRPTScheduler",
    "MantriScheduler",
    "SCAScheduler",
    "LATEScheduler",
    "FIFOScheduler",
    "FairScheduler",
    "SRPTScheduler",
    "SimulationEngine",
    "SimulationResult",
    "ScenarioSpec",
    "run_simulation",
    "run_replications",
    "Trace",
    "GoogleTraceGenerator",
    "GoogleTraceConfig",
    "Study",
    "ResultSet",
    "load_study",
]
