"""Speedup functions ``s_i^c(x)`` for task cloning (Section III-A).

Making ``x`` copies of a task reduces its expected duration from ``E`` to
``E / s(x)``, because the earliest-finishing copy wins.  The paper requires
every speedup function to satisfy two properties:

1. ``s`` is concave and strictly increasing;
2. ``s(1) = 1`` and ``s(x) <= x`` for all ``x > 0``.

The canonical example is the Pareto-derived speedup
``s(r) = (r * alpha - 1) / (r * (alpha - 1))`` obtained when task durations
follow a Pareto distribution with shape ``alpha`` (Section III-A); this
module also ships a power-law, a logarithmic and a capped-linear family so
the ablation benchmarks can test the sensitivity of SRPTMS+C to the speedup
model, plus :func:`check_speedup_properties` which the property-based tests
use to validate the paper's two conditions numerically.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = [
    "SpeedupFunction",
    "ParetoSpeedup",
    "PowerSpeedup",
    "LogSpeedup",
    "CappedLinearSpeedup",
    "NoSpeedup",
    "check_speedup_properties",
]


class SpeedupFunction(ABC):
    """Maps a copy count ``x >= 1`` to an expected-duration speedup factor."""

    @abstractmethod
    def __call__(self, x: float) -> float:
        """Return ``s(x)``; must satisfy ``s(1) = 1`` and ``s(x) <= x``."""

    def expected_duration(self, mean_duration: float, copies: int) -> float:
        """Expected task duration when ``copies`` copies run in parallel."""
        if mean_duration <= 0:
            raise ValueError(f"mean_duration must be positive, got {mean_duration}")
        if copies < 1:
            raise ValueError(f"copies must be at least 1, got {copies}")
        return mean_duration / self(copies)

    def marginal_gain(self, mean_duration: float, copies: int) -> float:
        """Reduction in expected duration from adding one more copy.

        The Smart Cloning baseline allocates spare machines greedily by this
        marginal gain, which is the discrete analogue of the KKT conditions
        of the convex program in [26].
        """
        return self.expected_duration(mean_duration, copies) - self.expected_duration(
            mean_duration, copies + 1
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ParetoSpeedup(SpeedupFunction):
    """Speedup derived from Pareto(alpha) task durations (Section III-A).

    With ``r`` copies of a Pareto(``mu``, ``alpha``) task, the minimum of the
    copies is Pareto(``mu``, ``r * alpha``) with mean ``r*alpha*mu/(r*alpha-1)``,
    giving ``s(r) = (r*alpha - 1) / (r * (alpha - 1))``.  Requires
    ``alpha > 1`` so the mean exists.

    Subtlety the paper glosses over: the property ``s(x) <= x`` only holds
    for ``alpha >= (x + 1) / x``, i.e. for all integer ``x >= 2`` iff
    ``alpha >= 1.5``.  For ``1 < alpha < 1.5`` the tail is so heavy that two
    clones reduce the *expected* duration by more than 2x (the mean is
    dominated by the tail the minimum cuts off).  Such values are still
    accepted -- they are legitimate speedup models -- but
    :func:`check_speedup_properties` will flag them, and the unit tests
    document the threshold.
    """

    #: Smallest alpha for which ``s(x) <= x`` holds at every integer x.
    MIN_ALPHA_FOR_SUBLINEAR = 1.5

    def __init__(self, alpha: float) -> None:
        if alpha <= 1.0:
            raise ValueError(
                f"ParetoSpeedup requires alpha > 1 (finite mean), got {alpha}"
            )
        self.alpha = float(alpha)

    def __call__(self, x: float) -> float:
        if x < 1:
            raise ValueError(f"copy count must be >= 1, got {x}")
        alpha = self.alpha
        return (x * alpha - 1.0) / (x * (alpha - 1.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParetoSpeedup(alpha={self.alpha})"


class PowerSpeedup(SpeedupFunction):
    """``s(x) = x ** beta`` with ``0 < beta <= 1``.

    ``beta = 1`` is the (unrealistic) perfectly linear speedup; smaller
    ``beta`` models rapidly diminishing returns from extra clones.
    """

    def __init__(self, beta: float) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must lie in (0, 1], got {beta}")
        self.beta = float(beta)

    def __call__(self, x: float) -> float:
        if x < 1:
            raise ValueError(f"copy count must be >= 1, got {x}")
        return x**self.beta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PowerSpeedup(beta={self.beta})"


class LogSpeedup(SpeedupFunction):
    """``s(x) = 1 + scale * ln(x)`` -- very flat returns from cloning.

    ``scale`` must not exceed 1 so that ``s(x) <= x`` everywhere (the worst
    case is near ``x = 1`` where ``ln`` has slope 1).
    """

    def __init__(self, scale: float = 1.0) -> None:
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must lie in (0, 1], got {scale}")
        self.scale = float(scale)

    def __call__(self, x: float) -> float:
        if x < 1:
            raise ValueError(f"copy count must be >= 1, got {x}")
        return 1.0 + self.scale * math.log(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogSpeedup(scale={self.scale})"


class CappedLinearSpeedup(SpeedupFunction):
    """``s(x) = min(x, cap)`` -- linear up to ``cap`` copies, flat beyond.

    The concave envelope of "the first few clones help fully, the rest not
    at all"; useful as an optimistic ablation.
    """

    def __init__(self, cap: float) -> None:
        if cap < 1.0:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = float(cap)

    def __call__(self, x: float) -> float:
        if x < 1:
            raise ValueError(f"copy count must be >= 1, got {x}")
        return min(float(x), self.cap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CappedLinearSpeedup(cap={self.cap})"


class NoSpeedup(SpeedupFunction):
    """``s(x) = 1`` for every ``x`` -- cloning never helps.

    Violates "strictly increasing", so it is *not* a valid paper speedup
    function; it exists purely as the degenerate ablation baseline in which
    any clone is pure waste.
    """

    def __call__(self, x: float) -> float:
        if x < 1:
            raise ValueError(f"copy count must be >= 1, got {x}")
        return 1.0


def check_speedup_properties(
    speedup: SpeedupFunction,
    max_copies: int = 64,
    tolerance: float = 1e-9,
    require_strictly_increasing: bool = True,
) -> None:
    """Numerically verify the paper's two speedup-function properties.

    Checks, over integer copy counts ``1 .. max_copies``:

    * ``s(1) == 1``;
    * ``s(x) <= x``;
    * monotonicity (strict unless ``require_strictly_increasing`` is False);
    * concavity of the sequence ``s(1), s(2), ...`` (non-increasing forward
      differences).

    Raises ``AssertionError`` on the first violation.  Used by the unit and
    property-based tests, and handy when users supply their own speedup
    model.
    """
    if max_copies < 2:
        raise ValueError(f"max_copies must be at least 2, got {max_copies}")
    values = [speedup(x) for x in range(1, max_copies + 1)]
    assert abs(values[0] - 1.0) <= tolerance, f"s(1) = {values[0]} != 1"
    for x, value in enumerate(values, start=1):
        assert value <= x + tolerance, f"s({x}) = {value} exceeds {x}"
    for x in range(1, len(values)):
        if require_strictly_increasing:
            assert values[x] - values[x - 1] > tolerance, (
                f"s is not strictly increasing between {x} and {x + 1}"
            )
        else:
            assert values[x] >= values[x - 1] - tolerance, (
                f"s decreases between {x} and {x + 1}"
            )
    differences = [values[i + 1] - values[i] for i in range(len(values) - 1)]
    for i in range(1, len(differences)):
        assert differences[i] <= differences[i - 1] + tolerance, (
            f"s is not concave around x = {i + 1}"
        )
