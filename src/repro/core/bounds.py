"""Theoretical quantities from Section IV and V: Lemma 1, Theorem 1, Remark 2.

These functions compute the paper's analytical bounds so the test-suite and
the ``offline_bound`` experiment can check them against measured flowtimes:

* :func:`lemma1_probability` -- the probability ``(r^2 - 1)/r^2`` with which
  the cluster is busy with higher-priority work during ``[0, f_i - E_i^r -
  r sigma_i^r]`` (Lemma 1);
* :func:`theorem1_probability` -- the probability ``1 + 1/r^4 - 2/r^2`` with
  which the Theorem 1 flowtime bound holds for one job;
* :func:`offline_flowtime_bound` / :func:`offline_flowtime_bounds` -- the
  bound ``E_i^r + r sigma_i^r + f_i^s / M`` itself;
* lower bounds on the optimal weighted flowtime
  (:func:`serial_phase_lower_bound`, :func:`srpt_relaxation_lower_bound`,
  :func:`weighted_flowtime_lower_bound`) used to evaluate empirical
  competitive ratios, following the argument of Remark 2: every job needs at
  least one reduce (and one map) task's worth of serial time, and no
  scheduler on ``M`` unit machines beats the single speed-``M`` machine SRPT
  relaxation.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.effective_workload import accumulated_higher_priority_workload
from repro.workload.job import JobSpec

__all__ = [
    "lemma1_probability",
    "theorem1_probability",
    "offline_flowtime_bound",
    "offline_flowtime_bounds",
    "map_critical_path_correction",
    "serial_phase_lower_bound",
    "srpt_relaxation_lower_bound",
    "weighted_flowtime_lower_bound",
    "empirical_competitive_ratio",
    "online_competitive_bound",
]


def lemma1_probability(r: float) -> float:
    """Lemma 1's probability ``(r^2 - 1) / r^2``, clipped to ``[0, 1]``.

    Meaningful (positive) only for ``r > 1``; for ``r <= 1`` the Chebyshev
    argument gives no information and the function returns 0.
    """
    if r <= 0:
        raise ValueError(f"r must be positive, got {r}")
    value = (r * r - 1.0) / (r * r)
    return max(0.0, min(1.0, value))


def theorem1_probability(r: float) -> float:
    """Theorem 1's probability ``1 + 1/r^4 - 2/r^2 = (1 - 1/r^2)^2``.

    The probability with which a single job's flowtime satisfies the
    Theorem 1 bound.  Clipped to ``[0, 1]``; approaches 1 as ``r`` grows.
    """
    if r <= 0:
        raise ValueError(f"r must be positive, got {r}")
    base = max(0.0, 1.0 - 1.0 / (r * r))
    return min(1.0, base * base)


def _final_phase_moments(spec: JobSpec) -> tuple[float, float]:
    """Mean and std of the job's final phase (reduce if present, else map)."""
    if spec.num_reduce_tasks > 0:
        return spec.reduce_duration.mean, spec.reduce_duration.std
    return spec.map_duration.mean, spec.map_duration.std


def offline_flowtime_bound(
    spec: JobSpec, accumulated_workload: float, num_machines: int, r: float
) -> float:
    """Theorem 1's bound ``E_i^r + r sigma_i^r + f_i^s / M`` for one job.

    ``accumulated_workload`` is ``f_i^s`` from Equation (3) (see
    :func:`repro.core.effective_workload.accumulated_higher_priority_workload`).
    For a job without reduce tasks the final (map) phase moments are used,
    since it is the last task of the final phase that dictates completion.
    """
    if num_machines <= 0:
        raise ValueError(f"num_machines must be positive, got {num_machines}")
    if accumulated_workload < 0:
        raise ValueError("accumulated_workload must be non-negative")
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    mean, std = _final_phase_moments(spec)
    return mean + r * std + accumulated_workload / num_machines


def map_critical_path_correction(spec: JobSpec, r: float) -> float:
    """Additive correction ``E_i^m + r sigma_i^m`` for two-phase jobs.

    Theorem 1's fluid-style argument charges only one reduce-task duration
    on top of the accumulated higher-priority workload ``f_i^s / M``.  For a
    *small, high-priority* job this under-counts the job's own serial
    critical path: one map task must finish before any reduce task can
    start, so even on an otherwise idle cluster the flowtime is at least
    ``E_i^m + E_i^r``.  Adding this term yields the bound the reproduction
    checks empirically (see EXPERIMENTS.md); it vanishes for map-only jobs.
    """
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    if spec.num_map_tasks == 0 or spec.num_reduce_tasks == 0:
        return 0.0
    return spec.map_duration.mean + r * spec.map_duration.std


def offline_flowtime_bounds(
    specs: Sequence[JobSpec],
    num_machines: int,
    r: float,
    include_map_critical_path: bool = False,
) -> Dict[int, float]:
    """Theorem 1 bounds for every job of a bulk-arrival instance.

    With ``include_map_critical_path`` the per-job bound additionally
    includes :func:`map_critical_path_correction`, which is the form the
    empirical validation uses (the literal Theorem 1 bound can fall below
    the trivial serial lower bound of a small two-phase job).
    """
    accumulated = accumulated_higher_priority_workload(specs, r)
    bounds = {}
    for spec in specs:
        bound = offline_flowtime_bound(
            spec, accumulated[spec.job_id], num_machines, r
        )
        if include_map_critical_path:
            bound += map_critical_path_correction(spec, r)
        bounds[spec.job_id] = bound
    return bounds


def serial_phase_lower_bound(spec: JobSpec) -> float:
    """A per-job flowtime lower bound from the Map->Reduce precedence.

    Any schedule must run at least one map task and then one reduce task of
    the job back to back, so the flowtime is at least ``E_i^m + E_i^r`` in
    the zero-variance regime (just ``E_i^m`` if the job has no reduce
    tasks).  With non-zero variance this is a lower bound on the *expected*
    flowtime only when cloning cannot beat the mean, so the competitive-ratio
    experiments use it for deterministic workloads.
    """
    bound = 0.0
    if spec.num_map_tasks > 0:
        bound += spec.map_duration.mean
    if spec.num_reduce_tasks > 0:
        bound += spec.reduce_duration.mean
    return bound


def srpt_relaxation_lower_bound(
    specs: Sequence[JobSpec], num_machines: int
) -> float:
    """Weighted flowtime of the single speed-``M`` machine SRPT relaxation.

    Pooling the ``M`` unit-speed machines into one machine of speed ``M``
    and dropping the precedence constraints can only reduce the optimal
    weighted flowtime; weighted SRPT is optimal for that relaxation, and for
    a bulk arrival its weighted flowtime is ``sum_i w_i f_i^s / M`` with
    ``f_i^s`` computed at ``r = 0`` (Remark 2).
    """
    if num_machines <= 0:
        raise ValueError(f"num_machines must be positive, got {num_machines}")
    accumulated = accumulated_higher_priority_workload(specs, r=0.0)
    return sum(
        spec.weight * accumulated[spec.job_id] / num_machines for spec in specs
    )


def weighted_flowtime_lower_bound(
    specs: Sequence[JobSpec], num_machines: int
) -> float:
    """Best available lower bound on the optimal weighted sum of flowtimes.

    The maximum of the serial-phase bound (summed with weights) and the
    single-fast-machine SRPT relaxation; both are valid lower bounds for a
    bulk-arrival instance with deterministic task durations.
    """
    serial = sum(spec.weight * serial_phase_lower_bound(spec) for spec in specs)
    relaxation = srpt_relaxation_lower_bound(specs, num_machines)
    return max(serial, relaxation)


def empirical_competitive_ratio(
    achieved_weighted_flowtime: float,
    specs: Sequence[JobSpec],
    num_machines: int,
) -> float:
    """Measured weighted flowtime divided by the optimal's lower bound.

    For the zero-variance bulk-arrival setting Remark 2 guarantees this is
    at most 2 (up to the integrality slack of whole tasks on whole
    machines); the ``offline_bound`` experiment reports it.
    """
    if achieved_weighted_flowtime < 0:
        raise ValueError("achieved_weighted_flowtime must be non-negative")
    lower_bound = weighted_flowtime_lower_bound(specs, num_machines)
    if lower_bound <= 0:
        raise ValueError("lower bound is not positive; degenerate instance")
    return achieved_weighted_flowtime / lower_bound


def online_competitive_bound(epsilon: float, max_copies: int = 2) -> float:
    """The Theorem 2 competitive factor ``(C + 1 + eps) / eps^2``.

    ``C`` is the maximum number of copies the optimal schedule makes for a
    task.  This is the constant appearing in the paper's
    ``(1 + eps)-speed o(1/eps^2)-competitive`` guarantee; it is reported by
    the experiments for context (it is an upper bound, not a prediction).
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if max_copies < 1:
        raise ValueError(f"max_copies must be >= 1, got {max_copies}")
    return (max_copies + 1.0 + epsilon) / (epsilon * epsilon)
