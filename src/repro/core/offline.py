"""Algorithm 1 -- the offline SRPT-based scheduler for bulk arrivals (Section IV).

All jobs are assumed to arrive at (or near) time zero.  The scheduler:

1. computes the static priority ``w_i / phi_i`` of every job, where
   ``phi_i`` is the variance-adjusted total workload of Equation (2);
2. whenever a machine is free, walks the jobs in decreasing priority order
   and launches one unscheduled task of the highest-priority job that still
   has one -- map tasks before reduce tasks;
3. never clones: in the bulk-arrival regime the number of pending tasks
   exceeds the machine count, and the paper argues (citing [3]) that cloning
   cannot reduce flowtime when ``s(x) <= x`` and work is abundant.

Reduce tasks may be *placed* before their job's map phase finishes (they
then occupy the machine without progressing), exactly as the paper's
Algorithm 1 describes.  Theorem 1 bounds each job's flowtime under this
policy by ``E_i^r + r sigma_i^r + f_i^s / M`` with high probability, and
Remark 2 gives the 2-competitive guarantee at zero variance; both are
checked empirically by the test-suite via :mod:`repro.core.bounds`.

Although designed for the offline case, the implementation also works with
online arrivals (priorities are simply computed when the job arrives), which
makes it a useful "static SRPT, no cloning" reference policy.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.priority import offline_priority
from repro.simulation.scheduler_api import LaunchRequest, Scheduler, SchedulerView
from repro.workload.job import Job, Phase, Task

__all__ = ["OfflineSRPTScheduler"]


class OfflineSRPTScheduler(Scheduler):
    """The paper's Algorithm 1.

    Parameters
    ----------
    r:
        The standard-deviation weighting factor in ``phi_i`` (Equation 2).
        ``r = 0`` ignores task-duration variance.
    park_reduce_tasks:
        If True (the paper's pseudo-code), a job whose map tasks are all
        *scheduled* but not finished may have reduce tasks placed on
        machines, where they wait without progressing.  If False, reduce
        tasks are only launched once the map phase has completed, which
        never wastes machine time.
    seed:
        Seed of the scheduler's private RNG used for the paper's random
        choice among a job's unscheduled tasks.
    """

    name = "Offline-SRPT"

    def __init__(
        self,
        r: float = 0.0,
        *,
        park_reduce_tasks: bool = True,
        seed: int = 0,
    ) -> None:
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        self.r = r
        self.park_reduce_tasks = park_reduce_tasks
        self._rng = np.random.default_rng(seed)
        self._priority_order: List[Job] = []

    # -- notifications -------------------------------------------------------------

    def on_job_arrival(self, job: Job, time: float) -> None:
        """Insert the arriving job into the static priority order."""
        self._priority_order.append(job)
        self._priority_order.sort(
            key=lambda j: (-offline_priority(j.spec, self.r), j.job_id)
        )

    def on_job_completion(self, job: Job, time: float) -> None:
        """Drop the finished job from the priority order (Algorithm 1, line 10)."""
        self._priority_order = [j for j in self._priority_order if j is not job]

    # -- decision -------------------------------------------------------------------

    def _candidate_tasks(self, job: Job) -> Sequence[Task]:
        """Unscheduled tasks of ``job`` respecting map-before-reduce order."""
        pending_maps = job.unscheduled_tasks(Phase.MAP)
        if pending_maps:
            return pending_maps
        if not self.park_reduce_tasks and not job.map_phase_complete:
            return []
        return job.unscheduled_tasks(Phase.REDUCE)

    def _pick_task(self, candidates: Sequence[Task]) -> Task:
        """Choose one unscheduled task uniformly at random (Algorithm 1, line 6/8)."""
        index = int(self._rng.integers(0, len(candidates)))
        return candidates[index]

    def schedule(self, view: SchedulerView) -> List[LaunchRequest]:
        """Return the copies to launch at this decision point (see base class)."""
        free = view.num_free_machines
        if free <= 0:
            return []
        requests: List[LaunchRequest] = []
        for job in self._priority_order:
            if free <= 0:
                break
            if job.is_complete:
                continue
            candidates = list(self._candidate_tasks(job))
            while free > 0 and candidates:
                task = self._pick_task(candidates)
                candidates.remove(task)
                requests.append(LaunchRequest(task=task, num_copies=1))
                free -= 1
        return requests
