"""The epsilon-fraction machine-sharing rule of SRPTMS+C (Section V-A).

At each decision point the scheduler sorts the alive jobs by the online SRPT
priority ``w_i / U_i(l)`` and lets the *highest-priority* jobs -- those whose
cumulative weight makes up an ``epsilon`` fraction of the total alive weight
``W(l)`` -- share the ``M`` machines in proportion to their weights.

Formally, with ``W_i(l)`` the cumulative weight of all jobs with priority
*at most* that of ``J_i`` (including ``J_i`` itself), the share of ``J_i`` is

    g_i(l) = w_i * M / (eps * W(l))                     if W_i - w_i >= (1-eps) W
    g_i(l) = 0                                          if W_i < (1-eps) W
    g_i(l) = (W_i - (1-eps) W) * M / (eps * W(l))       otherwise

so that shares sum exactly to ``M``.  ``eps -> 0`` recovers pure SRPT (only
the single highest-priority job runs); ``eps = 1`` recovers the Hadoop fair
scheduler (every alive job gets a weight-proportional share).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.priority import online_priority
from repro.workload.job import Job

__all__ = [
    "fractional_shares",
    "integer_shares",
    "epsilon_shares",
    "epsilon_shares_from_ordered",
]


def fractional_shares(
    jobs_by_priority: Sequence[Tuple[int, float]],
    num_machines: int,
    epsilon: float,
) -> Dict[int, float]:
    """Compute the real-valued shares ``g_i(l)``.

    Parameters
    ----------
    jobs_by_priority:
        ``(job_id, weight)`` pairs sorted by *decreasing* priority.
    num_machines:
        ``M``.
    epsilon:
        The sharing fraction, ``0 < epsilon <= 1``.

    Returns a mapping ``job_id -> g_i`` whose values sum to ``num_machines``
    (up to floating-point error) whenever at least one job is present.
    """
    if num_machines <= 0:
        raise ValueError(f"num_machines must be positive, got {num_machines}")
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must lie in (0, 1], got {epsilon}")
    if not jobs_by_priority:
        return {}
    weights = [weight for _, weight in jobs_by_priority]
    if any(weight <= 0 for weight in weights):
        raise ValueError("all job weights must be positive")
    total_weight = float(sum(weights))
    threshold = (1.0 - epsilon) * total_weight

    shares: Dict[int, float] = {}
    # W_i is cumulative from the *lowest* priority job up to and including J_i,
    # so walk the priority-sorted list from the back.
    cumulative = 0.0
    cumulative_from_low: List[float] = [0.0] * len(jobs_by_priority)
    for index in range(len(jobs_by_priority) - 1, -1, -1):
        cumulative += weights[index]
        cumulative_from_low[index] = cumulative

    scale = num_machines / (epsilon * total_weight)
    for index, (job_id, weight) in enumerate(jobs_by_priority):
        w_i = cumulative_from_low[index]
        if w_i - weight >= threshold:
            shares[job_id] = weight * scale
        elif w_i < threshold:
            shares[job_id] = 0.0
        else:
            shares[job_id] = (w_i - threshold) * scale
    return shares


def integer_shares(
    fractional: Dict[int, float],
    ordered_job_ids: Sequence[int],
    num_machines: int,
) -> Dict[int, int]:
    """Round fractional shares to integers that still sum to ``num_machines``.

    Uses the largest-remainder method, breaking remainder ties in favour of
    higher-priority jobs (the order given by ``ordered_job_ids``).  Jobs with
    a zero fractional share stay at zero.
    """
    if num_machines <= 0:
        raise ValueError(f"num_machines must be positive, got {num_machines}")
    floors = {job_id: int(fractional.get(job_id, 0.0)) for job_id in ordered_job_ids}
    remainders = {
        job_id: fractional.get(job_id, 0.0) - floors[job_id]
        for job_id in ordered_job_ids
    }
    assigned = sum(floors.values())
    leftover = num_machines - assigned
    if leftover < 0:
        # Fractional shares should never exceed M; guard against float noise.
        leftover = 0
    # Hand the leftover machines to the jobs with the largest remainders,
    # favouring higher priority on ties (stable sort keeps the input order).
    by_remainder = sorted(
        (job_id for job_id in ordered_job_ids if fractional.get(job_id, 0.0) > 0.0),
        key=lambda job_id: -remainders[job_id],
    )
    for job_id in by_remainder:
        if leftover <= 0:
            break
        floors[job_id] += 1
        leftover -= 1
    return floors


def epsilon_shares_from_ordered(
    pairs: Sequence[Tuple[int, float]],
    num_machines: int,
    epsilon: float,
) -> Dict[int, int]:
    """Fractional then integer shares for already-priority-sorted jobs.

    ``pairs`` is ``(job_id, weight)`` sorted by *decreasing* priority.  This
    is the single implementation of the sharing pipeline; callers that have
    already sorted (the SRPTMS+C scheduler sorts once per decision point)
    use it directly, :func:`epsilon_shares` sorts and delegates.
    """
    fractional = fractional_shares(pairs, num_machines, epsilon)
    return integer_shares(
        fractional, [job_id for job_id, _ in pairs], num_machines
    )


def epsilon_shares(
    jobs: Sequence[Job],
    num_machines: int,
    epsilon: float,
    r: float,
) -> Dict[int, int]:
    """End-to-end helper: priorities -> fractional shares -> integer shares.

    ``jobs`` is the set of alive jobs with unscheduled tasks (``psi^s(l)``).
    Returns integer machine shares keyed by job id, summing to
    ``num_machines`` (when any job has a positive share).
    """
    if not jobs:
        return {}
    ordered = sorted(
        jobs, key=lambda job: (-online_priority(job, r), job.job_id)
    )
    return epsilon_shares_from_ordered(
        [(job.job_id, job.weight) for job in ordered], num_machines, epsilon
    )
