"""Effective-workload computations (Equations (2) and (4) of the paper).

The paper folds the standard deviation of task durations into a job's
workload through a tunable factor ``r``:

* ``phi_i = m_i (E_i^m + r sigma_i^m) + r_i (E_i^r + r sigma_i^r)`` -- the
  *total* effective workload used by the offline Algorithm 1 (Equation 2);
* ``U_i(l) = m_i(l) (E_i^m + r sigma_i^m) + r_i(l) (E_i^r + r sigma_i^r)``
  -- the *remaining* effective workload used online by SRPTMS+C
  (Equation 4), where ``m_i(l)``/``r_i(l)`` count the still-unscheduled
  tasks of each phase;
* ``f_i^s = sum_{j: w_j/phi_j >= w_i/phi_i} phi_j`` -- the accumulated
  workload of all jobs with priority at least that of ``J_i`` (Equation 3),
  which appears in the Theorem 1 flowtime bound.

The functions here are deliberately standalone (they accept plain counts and
moments as well as :class:`~repro.workload.job.JobSpec`/``Job`` objects) so
the theory utilities and the schedulers share a single implementation.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.workload.job import Job, JobSpec

__all__ = [
    "effective_task_workload",
    "total_effective_workload",
    "remaining_effective_workload",
    "accumulated_higher_priority_workload",
]


def effective_task_workload(mean: float, std: float, r: float) -> float:
    """Per-task effective workload ``E + r * sigma``."""
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    return mean + r * std


def total_effective_workload(spec: JobSpec, r: float) -> float:
    """``phi_i`` of Equation (2) for a job spec."""
    return spec.num_map_tasks * effective_task_workload(
        spec.map_duration.mean, spec.map_duration.std, r
    ) + spec.num_reduce_tasks * effective_task_workload(
        spec.reduce_duration.mean, spec.reduce_duration.std, r
    )


def remaining_effective_workload(job: Job, r: float) -> float:
    """``U_i(l)`` of Equation (4) for a runtime job.

    Counts *unscheduled* tasks, matching the paper: a task that already has a
    running copy no longer contributes to the remaining workload used for
    prioritisation (its machines are accounted for separately via
    ``sigma_i(l)``).
    """
    spec = job.spec
    return job.num_unscheduled_map_tasks * effective_task_workload(
        spec.map_duration.mean, spec.map_duration.std, r
    ) + job.num_unscheduled_reduce_tasks * effective_task_workload(
        spec.reduce_duration.mean, spec.reduce_duration.std, r
    )


def accumulated_higher_priority_workload(
    specs: Sequence[JobSpec], r: float
) -> Dict[int, float]:
    """``f_i^s`` of Equation (3) for every job in ``specs``.

    For each job ``J_i`` this is the sum of ``phi_j`` over all jobs whose
    SRPT priority ``w_j / phi_j`` is at least ``w_i / phi_i`` -- including
    ``J_i`` itself.  Returns a mapping ``job_id -> f_i^s``.
    """
    workloads = {spec.job_id: total_effective_workload(spec, r) for spec in specs}
    priorities = {
        spec.job_id: spec.weight / workloads[spec.job_id] for spec in specs
    }
    ordered = sorted(specs, key=lambda spec: priorities[spec.job_id], reverse=True)
    accumulated: Dict[int, float] = {}
    running_total = 0.0
    index = 0
    n = len(ordered)
    while index < n:
        # Jobs with exactly equal priority all count each other's workload.
        tie_end = index
        while (
            tie_end + 1 < n
            and priorities[ordered[tie_end + 1].job_id]
            == priorities[ordered[index].job_id]
        ):
            tie_end += 1
        tie_total = sum(
            workloads[ordered[k].job_id] for k in range(index, tie_end + 1)
        )
        running_total += tie_total
        for k in range(index, tie_end + 1):
            accumulated[ordered[k].job_id] = running_total
        index = tie_end + 1
    return accumulated
