"""Algorithm 2 -- SRPTMS+C: SRPT-based Machine Sharing plus Cloning (Section V).

At every decision point the scheduler:

1. collects ``psi^s(l)``, the alive jobs that still have unscheduled tasks;
2. ranks them by the online SRPT priority ``w_i / U_i(l)`` where ``U_i(l)``
   is the remaining effective workload of Equation (4);
3. grants the highest-priority jobs machine shares ``g_i(l)`` via the
   epsilon-fraction sharing rule of Section V-A (implemented in
   :mod:`repro.core.allocation`);
4. for each job, computes the *newly available* machines
   ``xi_i(l) = g_i(l) - sigma_i(l)`` where ``sigma_i(l)`` counts the
   machines already running that job's copies.  Non-preemption: if
   ``sigma_i(l)`` already exceeds the share, the job simply keeps its
   machines and receives nothing new;
5. runs the task-scheduling procedure: when the job has more newly allocated
   machines than unscheduled tasks, every unscheduled task is cloned so the
   whole allocation is used (the copies are spread as evenly as possible);
   otherwise a random subset of unscheduled tasks is launched with a single
   copy each;
6. respects the Map/Reduce precedence: reduce tasks are only scheduled once
   the job's map phase has *completed* (Section V-B).  Setting
   ``schedule_reduce_before_map_completion=True`` switches to the
   park-on-machine behaviour of the offline algorithm, for ablations.

``epsilon -> 0`` degenerates to pure SRPT, ``epsilon = 1`` to the Hadoop
fair scheduler; the paper's trace study finds the minimum of both flowtime
metrics near ``epsilon = 0.6`` (Figure 1) and a flat dependence on ``r``
(Figure 2), which the benchmark harness reproduces.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.allocation import epsilon_shares_from_ordered
from repro.core.priority import online_priority
from repro.simulation.scheduler_api import LaunchRequest, Scheduler, SchedulerView
from repro.workload.job import Job, Phase, Task

__all__ = ["SRPTMSCScheduler"]


class SRPTMSCScheduler(Scheduler):
    """The SRPTMS+C online scheduler (the paper's primary contribution).

    Parameters
    ----------
    epsilon:
        The machine-sharing fraction, ``0 < epsilon <= 1``.  The paper's
        recommended operating point for the Google trace is 0.6.
    r:
        Standard-deviation weighting in the remaining effective workload
        ``U_i(l)``; the paper uses 3 for the final comparison.
    cloning_enabled:
        If False the scheduler still performs epsilon-fraction machine
        sharing but never launches more than one copy per task (the
        "SRPTMS" ablation).
    schedule_reduce_before_map_completion:
        If True, reduce tasks may be placed on machines while map tasks of
        the same job are still running (they park without progress); if
        False (default, matching Section V-B) reduce tasks wait for map
        phase completion.
    max_copies_per_task:
        Safety cap on the number of simultaneous copies of a single task.
        The paper does not cap copies; the default (0, meaning "no cap")
        matches the paper and the cap exists only for ablation experiments.
    seed:
        Seed of the scheduler's private RNG (random choice of which
        unscheduled tasks to launch when machines are scarce).
    """

    name = "SRPTMS+C"

    def __init__(
        self,
        epsilon: float = 0.6,
        r: float = 3.0,
        *,
        cloning_enabled: bool = True,
        schedule_reduce_before_map_completion: bool = False,
        max_copies_per_task: int = 0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in (0, 1], got {epsilon}")
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        if max_copies_per_task < 0:
            raise ValueError(
                f"max_copies_per_task must be >= 0, got {max_copies_per_task}"
            )
        self.epsilon = epsilon
        self.r = r
        self.cloning_enabled = cloning_enabled
        self.schedule_reduce_before_map_completion = (
            schedule_reduce_before_map_completion
        )
        self.max_copies_per_task = max_copies_per_task
        self._rng = np.random.default_rng(seed)
        if not cloning_enabled:
            self.name = "SRPTMS"

    # -- helpers ------------------------------------------------------------------------

    def _schedulable_jobs(self, view: SchedulerView) -> List[Job]:
        """``psi^s(l)``: alive jobs that still have unscheduled, launchable tasks.

        Uses the O(1) per-job counters (never builds task lists), so this is
        O(alive jobs) per decision point regardless of job sizes.
        """
        jobs: List[Job] = []
        allow_early_reduce = self.schedule_reduce_before_map_completion
        for job in view.alive_jobs:
            if job.num_unscheduled_map_tasks > 0:
                jobs.append(job)
            elif (
                (job.map_phase_complete or allow_early_reduce)
                and job.num_unscheduled_reduce_tasks > 0
            ):
                jobs.append(job)
        return jobs

    def _unscheduled_candidates(self, job: Job) -> List[Task]:
        """Unscheduled tasks of ``job`` that may be launched right now."""
        pending_maps = job.unscheduled_tasks(Phase.MAP)
        if pending_maps:
            return pending_maps
        if job.map_phase_complete or self.schedule_reduce_before_map_completion:
            return job.unscheduled_tasks(Phase.REDUCE)
        return []

    def _copies_for(self, task: Task, desired: int) -> int:
        """Apply the cloning switch and the optional per-task copy cap."""
        copies = desired if self.cloning_enabled else 1
        if self.max_copies_per_task > 0:
            existing = task.num_active_copies
            copies = min(copies, max(0, self.max_copies_per_task - existing))
        return copies

    def _task_scheduling(
        self, job: Job, machines: int
    ) -> Tuple[List[LaunchRequest], int]:
        """The paper's "Task Scheduling" procedure for one job.

        Returns the launch requests and the number of machines actually used
        (``pi_i(l)`` in Algorithm 2).
        """
        candidates = self._unscheduled_candidates(job)
        if not candidates or machines <= 0:
            return [], 0
        count = len(candidates)
        requests: List[LaunchRequest] = []
        used = 0
        if machines >= count:
            # Enough machines for every unscheduled task: clone to use them all.
            base_copies = machines // count
            extras = machines - base_copies * count
            # Give the extra copies to a random subset so no task systematically
            # lags behind with fewer clones.
            extra_indices = set(
                int(i)
                for i in self._rng.choice(count, size=extras, replace=False)
            ) if extras > 0 else set()
            for index, task in enumerate(candidates):
                desired = base_copies + (1 if index in extra_indices else 0)
                copies = self._copies_for(task, desired)
                if copies <= 0:
                    continue
                requests.append(LaunchRequest(task=task, num_copies=copies))
                used += copies
        else:
            # Fewer machines than tasks: launch a random subset, one copy each.
            chosen = self._rng.choice(count, size=machines, replace=False)
            for index in sorted(int(i) for i in chosen):
                task = candidates[index]
                requests.append(LaunchRequest(task=task, num_copies=1))
                used += 1
        return requests, used

    # -- decision ------------------------------------------------------------------------

    def schedule(self, view: SchedulerView) -> List[LaunchRequest]:
        """Return the copies to launch at this decision point (see base class)."""
        available = view.num_free_machines
        if available <= 0:
            return []
        jobs = self._schedulable_jobs(view)
        if not jobs:
            return []

        # Priorities are O(1) per job (incremental counters); sort once and
        # feed the same ordering to the sharing rule instead of re-sorting
        # inside an epsilon_shares() call.
        r = self.r
        ordered = sorted(
            jobs, key=lambda job: (-online_priority(job, r), job.job_id)
        )
        shares = epsilon_shares_from_ordered(
            [(job.job_id, job.weight) for job in ordered],
            view.num_machines,
            self.epsilon,
        )

        requests: List[LaunchRequest] = []
        for job in ordered:
            if available <= 0:
                break
            share = shares.get(job.job_id, 0)
            if share <= 0:
                continue
            occupied = job.num_running_copies
            newly_available = share - occupied
            if newly_available <= 0:
                # Non-preemptive: the job already holds at least its share.
                continue
            grant = min(newly_available, available)
            job_requests, used = self._task_scheduling(job, grant)
            requests.extend(job_requests)
            available -= used
        return requests
