"""Algorithm 2 -- SRPTMS+C: SRPT-based Machine Sharing plus Cloning (Section V).

At every decision point the scheduler:

1. collects ``psi^s(l)``, the alive jobs that still have unscheduled tasks
   (:func:`repro.policies.gating.schedulable_jobs`);
2. ranks them by the online SRPT priority ``w_i / U_i(l)`` where ``U_i(l)``
   is the remaining effective workload of Equation (4)
   (:class:`~repro.policies.ordering.SRPTOrdering`);
3. grants the highest-priority jobs machine shares ``g_i(l)`` via the
   epsilon-fraction sharing rule of Section V-A
   (:class:`~repro.policies.allocation.EpsilonShareAllocation` over
   :mod:`repro.core.allocation`);
4. spends each job's newly available machines
   ``xi_i(l) = g_i(l) - sigma_i(l)`` through the task-scheduling procedure
   of :class:`~repro.policies.redundancy.PaperCloning`: when the job has
   more newly allocated machines than unscheduled tasks, every unscheduled
   task is cloned so the whole allocation is used (copies spread as evenly
   as possible); otherwise a random subset of unscheduled tasks is launched
   with a single copy each;
5. respects the Map/Reduce precedence: reduce tasks are only scheduled once
   the job's map phase has *completed* (Section V-B).  Setting
   ``schedule_reduce_before_map_completion=True`` switches to the
   park-on-machine behaviour of the offline algorithm, for ablations.

``epsilon -> 0`` degenerates to pure SRPT, ``epsilon = 1`` to the Hadoop
fair scheduler; the paper's trace study finds the minimum of both flowtime
metrics near ``epsilon = 0.6`` (Figure 1) and a flat dependence on ``r``
(Figure 2), which the benchmark harness reproduces.

Since the policy-kernel refactor this class is a thin alias for the
``srpt+share+clone`` composition (see :mod:`repro.policies`); it produces
bit-identical results to the historical monolithic implementation.
"""

from __future__ import annotations

from repro.policies.redundancy import PaperCloning
from repro.simulation.scheduler_api import ComposedScheduler

__all__ = ["SRPTMSCScheduler"]


class SRPTMSCScheduler(ComposedScheduler):
    """The SRPTMS+C online scheduler (``srpt+share+clone``).

    Parameters
    ----------
    epsilon:
        The machine-sharing fraction, ``0 < epsilon <= 1``.  The paper's
        recommended operating point for the Google trace is 0.6.
    r:
        Standard-deviation weighting in the remaining effective workload
        ``U_i(l)``; the paper uses 3 for the final comparison.
    cloning_enabled:
        If False the scheduler still performs epsilon-fraction machine
        sharing but never launches more than one copy per task (the
        "SRPTMS" ablation).
    schedule_reduce_before_map_completion:
        If True, reduce tasks may be placed on machines while map tasks of
        the same job are still running (they park without progress); if
        False (default, matching Section V-B) reduce tasks wait for map
        phase completion.
    max_copies_per_task:
        Safety cap on the number of simultaneous copies of a single task.
        The paper does not cap copies; the default (0, meaning "no cap")
        matches the paper and the cap exists only for ablation experiments.
    seed:
        Seed of the scheduler's private RNG (random choice of which
        unscheduled tasks to launch when machines are scarce).
    """

    def __init__(
        self,
        epsilon: float = 0.6,
        r: float = 3.0,
        *,
        cloning_enabled: bool = True,
        schedule_reduce_before_map_completion: bool = False,
        max_copies_per_task: int = 0,
        seed: int = 0,
    ) -> None:
        cloning = PaperCloning(
            enabled=cloning_enabled, max_copies_per_task=max_copies_per_task
        )
        super().__init__(
            "srpt",
            "share",
            cloning,
            epsilon=epsilon,
            r=r,
            seed=seed,
            allow_early_reduce=schedule_reduce_before_map_completion,
            name="SRPTMS+C" if cloning_enabled else "SRPTMS",
        )

    # The public knobs read through to the policy objects that actually
    # consume them, so there is no second, silently ignorable copy.

    @property
    def epsilon(self) -> float:
        """The machine-sharing fraction (held by the share allocation)."""
        return self.allocation.epsilon

    @property
    def r(self) -> float:
        """The effective-workload std weight (held by the srpt ordering)."""
        return self.ordering.r

    @property
    def cloning_enabled(self) -> bool:
        """Whether the cloning policy may launch more than one copy."""
        return self.redundancy.enabled

    @property
    def schedule_reduce_before_map_completion(self) -> bool:
        """Whether reduce copies may park before map completion."""
        return self.allow_early_reduce

    @property
    def max_copies_per_task(self) -> int:
        """Per-task copy cap of the cloning policy (0 = uncapped)."""
        return self.redundancy.max_copies_per_task
