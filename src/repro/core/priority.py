"""SRPT-style priority computation and ordering.

Both of the paper's algorithms rank jobs by weight divided by (effective)
workload:

* offline (Algorithm 1): ``w_i / phi_i`` with ``phi_i`` fixed at arrival;
* online (SRPTMS+C):     ``w_i / U_i(l)`` recomputed at every decision point.

Larger values mean higher priority -- a heavy weight or a small remaining
workload pushes a job to the front, which is exactly the Shortest Remaining
Processing Time intuition generalised to weighted jobs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.effective_workload import (
    remaining_effective_workload,
    total_effective_workload,
)
from repro.workload.job import Job, JobSpec

__all__ = [
    "srpt_priority",
    "offline_priority",
    "online_priority",
    "sort_specs_by_priority",
    "sort_jobs_by_remaining_priority",
]


def srpt_priority(weight: float, workload: float) -> float:
    """Generic weighted-SRPT priority ``weight / workload``.

    A zero workload (the job has nothing left to schedule) maps to infinity:
    such a job is "ahead of everyone" but the schedulers never launch
    anything for it, so the value only matters for stable sorting.
    """
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    if workload < 0:
        raise ValueError(f"workload must be non-negative, got {workload}")
    if workload == 0:
        return float("inf")
    return weight / workload


def offline_priority(spec: JobSpec, r: float) -> float:
    """``w_i / phi_i`` -- the static priority used by Algorithm 1."""
    return srpt_priority(spec.weight, total_effective_workload(spec, r))


def online_priority(job: Job, r: float) -> float:
    """``w_i / U_i(l)`` -- the dynamic priority used by SRPTMS+C."""
    return srpt_priority(job.weight, remaining_effective_workload(job, r))


def sort_specs_by_priority(specs: Sequence[JobSpec], r: float) -> List[JobSpec]:
    """Job specs sorted by decreasing offline priority (ties by job id)."""
    return sorted(
        specs, key=lambda spec: (-offline_priority(spec, r), spec.job_id)
    )


def sort_jobs_by_remaining_priority(jobs: Sequence[Job], r: float) -> List[Job]:
    """Runtime jobs sorted by decreasing online priority (ties by job id).

    Ties are broken by job id so the ordering is deterministic, which both
    the tests and the replication protocol rely on.
    """
    return sorted(jobs, key=lambda job: (-online_priority(job, r), job.job_id))
