"""The paper's contribution: SRPT-based task-cloning schedulers and their theory.

* :mod:`repro.core.offline` -- Algorithm 1, the offline bulk-arrival scheduler.
* :mod:`repro.core.srptms_c` -- Algorithm 2, the SRPTMS+C online scheduler.
* :mod:`repro.core.speedup` -- the concave speedup functions of Section III-A.
* :mod:`repro.core.effective_workload`, :mod:`repro.core.priority`,
  :mod:`repro.core.allocation` -- the building blocks (Equations 2-4 and the
  epsilon-fraction sharing rule).
* :mod:`repro.core.bounds` -- Lemma 1 / Theorem 1 / Remark 2 quantities.
"""

from repro.core.allocation import epsilon_shares, fractional_shares, integer_shares
from repro.core.bounds import (
    empirical_competitive_ratio,
    lemma1_probability,
    offline_flowtime_bound,
    offline_flowtime_bounds,
    online_competitive_bound,
    serial_phase_lower_bound,
    srpt_relaxation_lower_bound,
    theorem1_probability,
    weighted_flowtime_lower_bound,
)
from repro.core.effective_workload import (
    accumulated_higher_priority_workload,
    effective_task_workload,
    remaining_effective_workload,
    total_effective_workload,
)
from repro.core.offline import OfflineSRPTScheduler
from repro.core.priority import (
    offline_priority,
    online_priority,
    sort_jobs_by_remaining_priority,
    sort_specs_by_priority,
    srpt_priority,
)
from repro.core.speedup import (
    CappedLinearSpeedup,
    LogSpeedup,
    NoSpeedup,
    ParetoSpeedup,
    PowerSpeedup,
    SpeedupFunction,
    check_speedup_properties,
)
from repro.core.srptms_c import SRPTMSCScheduler

__all__ = [
    "OfflineSRPTScheduler",
    "SRPTMSCScheduler",
    "SpeedupFunction",
    "ParetoSpeedup",
    "PowerSpeedup",
    "LogSpeedup",
    "CappedLinearSpeedup",
    "NoSpeedup",
    "check_speedup_properties",
    "effective_task_workload",
    "total_effective_workload",
    "remaining_effective_workload",
    "accumulated_higher_priority_workload",
    "srpt_priority",
    "offline_priority",
    "online_priority",
    "sort_specs_by_priority",
    "sort_jobs_by_remaining_priority",
    "fractional_shares",
    "integer_shares",
    "epsilon_shares",
    "lemma1_probability",
    "theorem1_probability",
    "offline_flowtime_bound",
    "offline_flowtime_bounds",
    "serial_phase_lower_bound",
    "srpt_relaxation_lower_bound",
    "weighted_flowtime_lower_bound",
    "empirical_competitive_ratio",
    "online_competitive_bound",
]
