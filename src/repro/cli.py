"""Command-line interface: regenerate any paper table or figure.

Examples::

    repro-mapreduce table2
    repro-mapreduce figure1 --scale 0.02 --seeds 0 1
    repro-mapreduce figure6 --scale 0.03
    repro-mapreduce figure1 --workers 0   # fan replications out over all CPUs
    repro-mapreduce offline-bound
    repro-mapreduce all --scale 0.01

Each subcommand prints the plain-text report of the corresponding
experiment; ``--scale`` shrinks the trace and the cluster together so the
offered load stays at the paper's level.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments import (
    ExperimentConfig,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_offline_bound,
    run_scheduler_comparison,
    run_table2,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-mapreduce",
        description=(
            "Reproduce the tables and figures of 'Task-Cloning Algorithms in a "
            "MapReduce Cluster with Competitive Performance Bounds' "
            "(Xu & Lau, ICDCS 2015)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table2",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "offline-bound",
            "all",
        ],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="fraction of the full trace/cluster to simulate (default 0.02)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0, 1],
        help="replication seeds (default: 0 1)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.6,
        help="SRPTMS+C machine-sharing fraction (default 0.6)",
    )
    parser.add_argument(
        "--r",
        type=float,
        default=3.0,
        help="standard-deviation weight in the effective workload (default 3)",
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=None,
        help="override the cluster size (default: 12000 * scale)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for replicated sweeps: 1 runs serially, 0 uses "
            "every CPU; results are identical for any value (default 1)"
        ),
    )
    return parser


def _workers_from_args(args: argparse.Namespace) -> Optional[int]:
    if args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    return None if args.workers == 0 else args.workers


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        scale=args.scale,
        seeds=tuple(args.seeds),
        epsilon=args.epsilon,
        r=args.r,
        num_machines=args.machines,
        workers=_workers_from_args(args),
    )


def _run_one(name: str, config: ExperimentConfig) -> str:
    if name == "table2":
        return run_table2(config).render()
    if name == "figure1":
        return run_figure1(config).render()
    if name == "figure2":
        return run_figure2(config).render()
    if name == "figure3":
        return run_figure3(config).render()
    if name in ("figure4", "figure5", "figure6"):
        results = run_scheduler_comparison(config)
        if name == "figure4":
            return run_figure4(config, results=results).render()
        if name == "figure5":
            return run_figure5(config, results=results).render()
        return run_figure6(config, results=results).render()
    if name == "offline-bound":
        return run_offline_bound(config).render()
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-mapreduce`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    config = _config_from_args(args)

    if args.experiment == "all":
        reports: List[str] = [_run_one("table2", config)]
        reports.append(_run_one("figure1", config))
        reports.append(_run_one("figure2", config))
        reports.append(_run_one("figure3", config))
        comparison = run_scheduler_comparison(config)
        reports.append(run_figure4(config, results=comparison).render())
        reports.append(run_figure5(config, results=comparison).render())
        reports.append(run_figure6(config, results=comparison).render())
        reports.append(_run_one("offline-bound", config))
        print("\n\n".join(reports))
        return 0

    print(_run_one(args.experiment, config))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
