"""Command-line interface: regenerate any paper table/figure, or run a sweep.

Examples::

    repro-mapreduce table2
    repro-mapreduce figure1 --scale 0.02 --seeds 0 1
    repro-mapreduce figure6 --scale 0.03
    repro-mapreduce figure1 --workers 0   # fan replications out over all CPUs
    repro-mapreduce offline-bound
    repro-mapreduce all --scale 0.01
    repro-mapreduce figure6 --scenario uniform-hetero
    repro-mapreduce figure6 --failure-rate 0.001 --repair-time 50
    repro-mapreduce scenario-sweep --scale 0.01 --workers 0
    repro-mapreduce figure6 --cache-dir ~/.cache/repro-mapreduce
    repro-mapreduce sweep --spec study.toml --csv results.csv
    repro-mapreduce policy --ordering srpt --allocation share --redundancy late
    repro-mapreduce policy-grid --scale 0.01 --workers 0
    repro-mapreduce figure6 --racks 4 --remote-slowdown 2
    repro-mapreduce policy --allocation delay --racks 4 --locality-wait 5
    repro-mapreduce locality --scale 0.01
    repro-mapreduce serve --cache-dir ~/.cache/repro-mapreduce
    repro-mapreduce submit --spec study.toml --csv results.csv
    repro-mapreduce cache stats --cache-dir ~/.cache/repro-mapreduce
    repro-mapreduce cache prune --stale --cache-dir ~/.cache/repro-mapreduce
    repro-mapreduce profile --workload stream:100000 --scheduler fifo
    repro-mapreduce profile --workload smoke:0.02 --scheduler srptms+c --dump engine.prof

Each experiment subcommand prints the plain-text report of the
corresponding experiment; ``--scale`` shrinks the trace and the cluster
together so the offered load stays at the paper's level.  ``--scenario``
(and the fine-grained ``--speed-spread``/``--failure-rate``/
``--slowdown-*`` flags) run any *figure* experiment under a non-ideal
cluster environment; the non-simulating experiments reject scenario flags
instead of silently ignoring them.  See :mod:`repro.scenarios`.
``--cache-dir`` enables the results cache
(:mod:`repro.simulation.results_store`): re-invocations and interrupted
sweeps reuse already-computed cells byte-for-byte instead of
re-simulating; ``--no-cache`` bypasses it.

The ``sweep`` subcommand needs no driver code at all: ``--spec`` names a
TOML/JSON study file (:mod:`repro.study.specfile`) declaring the axes
product to run; the tidy report prints to stdout and ``--csv``/``--json``
export the per-run records.  Only ``--workers`` and the cache flags apply
to ``sweep`` -- everything else lives in the spec file.

The ``policy`` subcommand runs one policy-kernel composition
(:mod:`repro.policies`): ``--ordering``/``--allocation``/``--redundancy``
pick the triple, which is simulated next to the paper's SRPTMS+C under the
usual scale/seed/scenario flags.  ``policy-grid`` sweeps a dozen novel
compositions against SRPTMS+C across scenario presets and reports which
compositions win where (it defines its own scenario axis, so scenario
flags do not apply).

Worker counts (one mapping, everywhere): ``--workers 1`` runs serially
(the default), ``--workers N`` uses ``N`` worker processes, and
``--workers 0`` -- like ``workers=None`` in the library -- uses every
usable CPU.  Results are bit-identical for any value.

Four subcommands dispatch before the experiment parser: ``serve`` runs
the sweep-service daemon and ``submit`` sends a spec file to it
(:mod:`repro.service`); ``cache`` inspects and prunes a results-cache
directory (``stats`` / ``prune --stale``); ``profile`` cProfiles one
engine run and prints the top-N cumulative table (``--dump`` writes the
raw profile for :mod:`pstats`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.cluster.stragglers import DynamicStragglers
from repro.experiments import (
    ExperimentConfig,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_dag_redundancy,
    run_locality,
    run_offline_bound,
    run_policy_grid,
    run_scenario_sweep,
    run_scheduler_comparison,
    run_table2,
)
from repro.experiments.report import render_resultset
from repro.scenarios import (
    DEFAULT_LOCALITY_WAIT,
    DEFAULT_MEAN_REPAIR,
    DEFAULT_REMOTE_SLOWDOWN,
    DEFAULT_SLOWDOWN_DURATION,
    DEFAULT_SLOWDOWN_FACTOR,
    SCENARIO_PRESETS,
    MachineFailures,
    ScenarioSpec,
    TopologySpec,
    UniformSpeeds,
    scenario_preset,
)
from repro.policies import (
    ALLOCATION_POLICIES as _ALLOCATION_NAMES,
    ORDERING_POLICIES as _ORDERING_NAMES,
    REDUNDANCY_POLICIES as _REDUNDANCY_NAMES,
    composition_label,
)
from repro.simulation.experiment_runner import normalize_workers

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-mapreduce",
        description=(
            "Reproduce the tables and figures of 'Task-Cloning Algorithms in a "
            "MapReduce Cluster with Competitive Performance Bounds' "
            "(Xu & Lau, ICDCS 2015)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table2",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "offline-bound",
            "scenario-sweep",
            "policy",
            "policy-grid",
            "dag-redundancy",
            "locality",
            "sweep",
            "all",
        ],
        help=(
            "which table/figure to regenerate, 'sweep' for a spec-file "
            "study, 'policy' for one policy-kernel composition, "
            "'policy-grid' for the composition sweep, 'dag-redundancy' "
            "for the redundancy sweep on stage-DAG workloads, or "
            "'locality' for the placement sweep on a rack topology"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="fraction of the full trace/cluster to simulate (default 0.02)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0, 1],
        help="replication seeds (default: 0 1)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.6,
        help="SRPTMS+C machine-sharing fraction (default 0.6)",
    )
    parser.add_argument(
        "--r",
        type=float,
        default=3.0,
        help="standard-deviation weight in the effective workload (default 3)",
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=None,
        help="override the cluster size (default: 12000 * scale)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for replicated sweeps: 1 runs serially "
            "(default), N uses N processes, 0 uses every usable CPU (the "
            "library spelling is workers=None); results are bit-identical "
            "for any value"
        ),
    )
    sweep = parser.add_argument_group(
        "sweep",
        "spec-file studies (repro.study): 'sweep --spec FILE' compiles a "
        "declarative TOML/JSON axes product into run specs and prints the "
        "tidy per-cell report; only --workers and the cache flags apply, "
        "the spec file defines everything else",
    )
    sweep.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="study spec file (.toml or .json) for the 'sweep' subcommand",
    )
    sweep.add_argument(
        "--csv",
        default=None,
        metavar="FILE",
        help="also export the sweep's per-run records as CSV",
    )
    sweep.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="FILE",
        help="also export the sweep's per-run records as JSON",
    )
    cache = parser.add_argument_group(
        "results cache",
        "content-addressed store of simulation results "
        "(repro.simulation.results_store); cached cells are returned "
        "byte-equal with zero engine runs, so re-invocations and "
        "interrupted sweeps resume instead of recomputing",
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory to cache simulation results in (created if missing); "
            "default: no caching"
        ),
    )
    cache.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the results cache even if --cache-dir is given",
    )
    policy = parser.add_argument_group(
        "policy kernel",
        "the composition the 'policy' subcommand runs (repro.policies): "
        "ordering x allocation x redundancy; the chosen triple is "
        "simulated next to SRPTMS+C under the usual scale/seed/scenario "
        "flags",
    )
    policy.add_argument(
        "--ordering",
        choices=sorted(_ORDERING_NAMES),
        default=None,
        help="job-ordering policy (default: srpt)",
    )
    policy.add_argument(
        "--allocation",
        choices=sorted(_ALLOCATION_NAMES),
        default=None,
        help="machine-allocation policy (default: greedy)",
    )
    policy.add_argument(
        "--redundancy",
        choices=sorted(_REDUNDANCY_NAMES),
        default=None,
        help="redundancy policy (default: none)",
    )
    policy.add_argument(
        "--locality-wait",
        type=float,
        default=None,
        metavar="W",
        help=(
            "delay-scheduling wait in simulated seconds for the 'delay' "
            f"allocation (default {_DEFAULT_LOCALITY_WAIT:g})"
        ),
    )
    scenario = parser.add_argument_group(
        "scenario",
        "cluster environment the experiment runs under (repro.scenarios); "
        "fine-grained flags override the chosen preset",
    )
    scenario.add_argument(
        "--scenario",
        choices=sorted(SCENARIO_PRESETS),
        default=None,
        help="named scenario preset (default: the paper's homogeneous cluster)",
    )
    scenario.add_argument(
        "--speed-spread",
        type=float,
        default=None,
        metavar="S",
        help=(
            "machine speeds ~ Uniform[1-S, 1+S], mean-normalised; "
            "0 restores homogeneous speeds"
        ),
    )
    scenario.add_argument(
        "--failure-rate",
        type=float,
        default=None,
        help="per-machine failure rate (events/s); 0 disables failures",
    )
    scenario.add_argument(
        "--repair-time",
        type=float,
        default=None,
        help=f"mean machine repair time in seconds (default {_DEFAULT_REPAIR:g})",
    )
    scenario.add_argument(
        "--slowdown-rate",
        type=float,
        default=None,
        help="per-machine dynamic-straggler onset rate (events/s); 0 disables",
    )
    scenario.add_argument(
        "--slowdown-duration",
        type=float,
        default=None,
        help=(
            "mean length of a dynamic slow period in seconds "
            f"(default {_DEFAULT_SLOW_DURATION:g})"
        ),
    )
    scenario.add_argument(
        "--slowdown-factor",
        type=float,
        default=None,
        help=(
            "effective-speed divisor during a slow period "
            f"(default {_DEFAULT_SLOW_FACTOR:g})"
        ),
    )
    scenario.add_argument(
        "--racks",
        type=int,
        default=None,
        metavar="N",
        help=(
            "spread the machines over N racks (task inputs get preferred "
            "racks; 1 restores the flat cluster)"
        ),
    )
    scenario.add_argument(
        "--remote-slowdown",
        type=float,
        default=None,
        metavar="F",
        help=(
            "effective-rate divisor for copies running off their preferred "
            f"rack (default {_DEFAULT_REMOTE_SLOWDOWN:g}; needs --racks > 1)"
        ),
    )
    return parser


#: Fallbacks when a rate flag creates a process without its detail flags
#: (the same constants parameterise the presets in :mod:`repro.scenarios`).
_DEFAULT_REPAIR = DEFAULT_MEAN_REPAIR
_DEFAULT_SLOW_DURATION = DEFAULT_SLOWDOWN_DURATION
_DEFAULT_SLOW_FACTOR = DEFAULT_SLOWDOWN_FACTOR
_DEFAULT_REMOTE_SLOWDOWN = DEFAULT_REMOTE_SLOWDOWN
_DEFAULT_LOCALITY_WAIT = DEFAULT_LOCALITY_WAIT

#: Experiments that simulate under ``ExperimentConfig.scenario``.  The others
#: reject scenario flags instead of silently ignoring them: table2 is pure
#: trace statistics, offline-bound validates the homogeneous-cluster bounds,
#: and scenario-sweep / policy-grid define their own scenario axes.
_SCENARIO_EXPERIMENTS = frozenset(
    {"figure1", "figure2", "figure3", "figure4", "figure5", "figure6", "policy"}
)


def _scenario_from_args(args: argparse.Namespace) -> Optional[ScenarioSpec]:
    """Compose the ScenarioSpec the CLI flags describe (None = homogeneous).

    Rate flags (``--failure-rate``, ``--slowdown-rate``) create or disable a
    process; detail flags (``--repair-time``, ``--slowdown-duration``,
    ``--slowdown-factor``) override that process wherever it came from --
    the command line or the ``--scenario`` preset -- and error out when no
    process exists to override.
    """
    try:
        return _compose_scenario(args)
    except ValueError as exc:
        # Spec validation (negative rates, factor <= 1, repair <= 0, ...)
        # must surface as a clean CLI error, not a traceback.
        raise SystemExit(f"invalid scenario flags: {exc}") from None


def _compose_scenario(args: argparse.Namespace) -> Optional[ScenarioSpec]:
    from dataclasses import replace

    base = scenario_preset(args.scenario) if args.scenario else ScenarioSpec()
    speeds = base.speeds
    normalize = base.normalize_mean_speed
    if args.speed_spread is not None:
        if not 0.0 <= args.speed_spread < 1.0:
            raise SystemExit(
                f"--speed-spread must lie in [0, 1), got {args.speed_spread}"
            )
        if args.speed_spread == 0.0:
            speeds, normalize = None, False
        else:
            speeds = UniformSpeeds(
                1.0 - args.speed_spread, 1.0 + args.speed_spread
            )
            normalize = True

    stragglers = base.stragglers
    if args.slowdown_rate is not None:
        if args.slowdown_rate == 0.0:
            stragglers = None
        else:
            stragglers = DynamicStragglers(
                onset_rate=args.slowdown_rate,
                mean_duration=_DEFAULT_SLOW_DURATION,
                factor=_DEFAULT_SLOW_FACTOR,
            )
    if args.slowdown_duration is not None or args.slowdown_factor is not None:
        if stragglers is None:
            raise SystemExit(
                "--slowdown-duration/--slowdown-factor need a straggler "
                "process to modify; pass --slowdown-rate or a preset with "
                "dynamic stragglers"
            )
        stragglers = replace(
            stragglers,
            mean_duration=(
                args.slowdown_duration
                if args.slowdown_duration is not None
                else stragglers.mean_duration
            ),
            factor=(
                args.slowdown_factor
                if args.slowdown_factor is not None
                else stragglers.factor
            ),
        )

    topology = base.topology
    if args.remote_slowdown is not None and args.racks is None:
        raise SystemExit(
            "--remote-slowdown needs a rack topology to price; pass "
            "--racks N with N > 1"
        )
    if args.racks is not None:
        if args.racks < 1:
            raise SystemExit(f"--racks must be >= 1, got {args.racks}")
        if args.racks == 1:
            topology = None
        else:
            topology = TopologySpec(
                racks=args.racks,
                remote_slowdown=(
                    args.remote_slowdown
                    if args.remote_slowdown is not None
                    else _DEFAULT_REMOTE_SLOWDOWN
                ),
            )

    failures = base.failures
    if args.failure_rate is not None:
        if args.failure_rate == 0.0:
            failures = None
        else:
            failures = MachineFailures(
                rate=args.failure_rate, mean_repair=_DEFAULT_REPAIR
            )
    if args.repair_time is not None:
        if failures is None:
            # scenario-sweep runs its own failure axis; --repair-time
            # parameterises that axis instead (handled in _run_one).
            if args.experiment != "scenario-sweep":
                raise SystemExit(
                    "--repair-time needs a failure process to modify; pass "
                    "--failure-rate or a preset with failures"
                )
        else:
            failures = replace(failures, mean_repair=args.repair_time)

    spec = ScenarioSpec(
        speeds=speeds,
        normalize_mean_speed=normalize,
        stragglers=stragglers,
        failures=failures,
        topology=topology,
    )
    return None if spec.is_default else spec


def _workers_from_args(args: argparse.Namespace) -> Optional[int]:
    try:
        # One shared mapping (repro.simulation.experiment_runner):
        # 0 and None mean all usable CPUs, N >= 1 means exactly N.
        return normalize_workers(args.workers)
    except ValueError as exc:
        raise SystemExit(f"--workers: {exc}") from None


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    scenario = _scenario_from_args(args)
    if scenario is not None and args.experiment not in _SCENARIO_EXPERIMENTS:
        raise SystemExit(
            f"scenario flags do not apply to {args.experiment!r}: table2 is "
            "pure trace statistics, offline-bound validates the "
            "homogeneous-cluster bounds, scenario-sweep, policy-grid, "
            "dag-redundancy and locality define their own scenario axes "
            "(only --repair-time applies to scenario-sweep), 'sweep' takes its "
            "scenarios from the spec file, and 'all' mixes both kinds -- "
            "run the figure commands individually instead"
        )
    return ExperimentConfig(
        scale=args.scale,
        seeds=tuple(args.seeds),
        epsilon=args.epsilon,
        r=args.r,
        num_machines=args.machines,
        workers=_workers_from_args(args),
        scenario=scenario,
        cache_dir=None if args.no_cache else args.cache_dir,
    )


#: Figure flags that have no effect on 'sweep' (the spec file rules).
_FIGURE_ONLY_FLAGS = ("scale", "seeds", "epsilon", "r", "machines")


def _run_sweep(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Execute a spec-file study: load, run, print, export."""
    from repro.study import StudySpecError, load_study

    if args.spec is None:
        raise SystemExit("'sweep' needs --spec FILE (a .toml or .json study spec)")
    for flag in _FIGURE_ONLY_FLAGS:
        if getattr(args, flag) != parser.get_default(flag):
            raise SystemExit(
                f"--{flag} does not apply to 'sweep': the spec file defines "
                "the study; only --workers and the cache flags apply"
            )
    if _scenario_from_args(args) is not None:
        raise SystemExit(
            "scenario flags do not apply to 'sweep': declare scenarios in "
            "the spec file's scenarios axis"
        )
    try:
        study = load_study(args.spec)
    except StudySpecError as exc:
        raise SystemExit(f"invalid study spec: {exc}") from None
    results = study.run(
        workers=_workers_from_args(args),
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    if args.csv:
        results.to_csv(args.csv)
    if args.json_out:
        results.to_json(args.json_out)
    seeds = len(study.seeds)
    cells = study.num_points() // seeds if seeds else 0
    title = (
        f"Study {study.name!r} -- {len(results)} runs "
        f"({cells} cells x {seeds} seeds), mean over seeds"
    )
    print(render_resultset(results, title=title))
    return 0


def _run_policy(args: argparse.Namespace, config: ExperimentConfig) -> str:
    """Run one policy-kernel composition next to SRPTMS+C and render it."""
    from repro.study import Study

    name = composition_label(
        args.ordering or "srpt",
        args.allocation or "greedy",
        args.redundancy or "none",
    )
    composition: object = name
    if args.locality_wait is not None:
        # Scheduler tables forward extra kwargs into ComposedScheduler
        # (repro.study.core), exactly like a spec-file scheduler table.
        composition = {"name": name, "locality_wait": args.locality_wait}
    study = Study(
        name="policy",
        schedulers=(composition, "SRPTMS+C"),
        **config.study_kwargs(),
    )
    results = study.run(runner=config.make_runner())
    title = (
        f"Policy composition {name} vs SRPTMS+C "
        f"(epsilon={config.epsilon:g}, r={config.r:g}), mean over "
        f"{len(config.seeds)} seed(s)"
    )
    return render_resultset(results, title=title)


def _run_one(
    name: str, config: ExperimentConfig, *, repair_time: Optional[float] = None
) -> str:
    if name == "table2":
        return run_table2(config).render()
    if name == "figure1":
        return run_figure1(config).render()
    if name == "figure2":
        return run_figure2(config).render()
    if name == "figure3":
        return run_figure3(config).render()
    if name in ("figure4", "figure5", "figure6"):
        results = run_scheduler_comparison(config)
        if name == "figure4":
            return run_figure4(config, results=results).render()
        if name == "figure5":
            return run_figure5(config, results=results).render()
        return run_figure6(config, results=results).render()
    if name == "offline-bound":
        return run_offline_bound(config).render()
    if name == "policy-grid":
        return run_policy_grid(config).render()
    if name == "dag-redundancy":
        return run_dag_redundancy(config).render()
    if name == "locality":
        return run_locality(config).render()
    if name == "scenario-sweep":
        if repair_time is not None:
            return run_scenario_sweep(config, mean_repair=repair_time).render()
        return run_scenario_sweep(config).render()
    raise ValueError(f"unknown experiment {name!r}")


def _main_cache(argv: Sequence[str]) -> int:
    """The ``cache`` maintenance subcommand: ``stats`` and ``prune``."""
    from repro.simulation.results_store import FORMAT_VERSION, cache_stats, prune_stale

    parser = argparse.ArgumentParser(
        prog="repro-mapreduce cache",
        description=(
            "Inspect and maintain a results-cache directory "
            "(repro.simulation.results_store)."
        ),
    )
    parser.add_argument(
        "action",
        choices=["stats", "prune"],
        help=(
            "'stats' prints entry count, total bytes and a format-version "
            "histogram; 'prune --stale' removes entries whose format "
            f"differs from the current FORMAT_VERSION ({FORMAT_VERSION})"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="results-cache directory to inspect/maintain",
    )
    parser.add_argument(
        "--stale",
        action="store_true",
        help="for 'prune': remove stale-format and unreadable entries",
    )
    args = parser.parse_args(argv)
    if args.action == "stats":
        stats = cache_stats(args.cache_dir)
        print(f"cache {stats['cache_dir']}")
        print(f"  entries:        {stats['entries']}")
        print(f"  total bytes:    {stats['total_bytes']}")
        print(f"  format version: {stats['format_version']} (current)")
        print(f"  stale entries:  {stats['stale']}")
        for version, count in sorted(stats["formats"].items()):
            print(f"    format {version}: {count}")
        return 0
    if not args.stale:
        raise SystemExit(
            "'prune' only supports --stale pruning; pass --stale to remove "
            "entries whose format differs from the current version"
        )
    report = prune_stale(args.cache_dir)
    print(
        f"pruned {report['cache_dir']}: scanned {report['scanned']}, "
        f"removed {report['removed']} ({report['removed_bytes']} bytes), "
        f"kept {report['kept']}"
    )
    return 0


#: Schedulers the ``profile`` subcommand can build by name (plus
#: ``srptms+c``, which takes ``--epsilon``/``--r``).
_PROFILE_SCHEDULERS = ("fifo", "fair", "srpt", "late", "mantri", "sca")


def _main_profile(argv: Sequence[str]) -> int:
    """The ``profile`` subcommand: cProfile one engine run.

    Builds the requested workload and scheduler, runs the simulation
    under :mod:`cProfile`, and prints the top-N functions by cumulative
    time -- the quickest way to see where engine wall-clock goes without
    instrumenting anything.  ``--dump`` additionally writes the raw
    profile for interactive :mod:`pstats` / snakeviz digging.
    """
    import cProfile
    import pstats

    from repro.core.srptms_c import SRPTMSCScheduler
    from repro.schedulers import (
        FairScheduler,
        FIFOScheduler,
        LATEScheduler,
        MantriScheduler,
        SCAScheduler,
        SRPTScheduler,
    )
    from repro.simulation import run_simulation
    from repro.workload.stream import StreamSpec, stream_uniform_jobs

    parser = argparse.ArgumentParser(
        prog="repro-mapreduce profile",
        description=(
            "Profile one simulation run with cProfile and print the "
            "top-N cumulative table."
        ),
    )
    parser.add_argument(
        "--workload",
        default="stream:100000",
        metavar="KIND",
        help=(
            "'stream[:N]' for a lazily generated uniform single-task "
            "stream of N jobs (default 100000) on 16 machines, or "
            "'smoke[:SCALE]' for the scale-SCALE synthetic Google trace "
            "(default 0.02) on its matching cluster"
        ),
    )
    parser.add_argument(
        "--scheduler",
        default="fifo",
        choices=sorted(_PROFILE_SCHEDULERS) + ["srptms+c"],
        help="scheduling policy to profile (default fifo)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="replication seed (default 0)"
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=None,
        help="override the cluster size",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.6,
        help="srptms+c machine-sharing fraction (default 0.6)",
    )
    parser.add_argument(
        "--r",
        type=float,
        default=3.0,
        help="srptms+c effective-workload weight (default 3)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="rows of the cumulative table to print (default 25)",
    )
    parser.add_argument(
        "--dump",
        default=None,
        metavar="FILE",
        help="also write the raw profile for pstats/snakeviz",
    )
    args = parser.parse_args(argv)

    kind, _, parameter = args.workload.partition(":")
    if kind == "stream":
        num_jobs = int(parameter) if parameter else 100_000
        trace = StreamSpec(
            factory=stream_uniform_jobs,
            num_jobs=num_jobs,
            kwargs={
                "tasks_per_job": 1,
                "reduce_tasks_per_job": 0,
                "mean_duration": 10.0,
                "inter_arrival": 1.0,
            },
            name=f"profile-stream-{num_jobs}",
        ).build()
        machines = 16
        workload_label = f"stream of {num_jobs} single-task jobs"
    elif kind == "smoke":
        scale = float(parameter) if parameter else 0.02
        config = ExperimentConfig(scale=scale, seeds=(args.seed,))
        trace = config.make_trace()
        machines = config.machines
        workload_label = (
            f"scale-{scale} synthetic Google trace ({trace.num_jobs} jobs)"
        )
    else:
        raise SystemExit(
            f"unknown --workload {args.workload!r}: expected "
            "'stream[:N]' or 'smoke[:SCALE]'"
        )
    if args.machines is not None:
        machines = args.machines
    factories = {
        "fifo": FIFOScheduler,
        "fair": FairScheduler,
        "srpt": SRPTScheduler,
        "late": LATEScheduler,
        "mantri": MantriScheduler,
        "sca": SCAScheduler,
        "srptms+c": lambda: SRPTMSCScheduler(epsilon=args.epsilon, r=args.r),
    }
    scheduler = factories[args.scheduler]()

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_simulation(trace, scheduler, machines, seed=args.seed)
    profiler.disable()

    print(
        f"profiled {workload_label} under {args.scheduler} on "
        f"{machines} machines, seed {args.seed}: "
        f"{result.num_jobs} jobs in {result.runtime_seconds:.2f}s "
        f"({result.num_jobs / result.runtime_seconds:,.0f} jobs/sec)"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(args.top)
    if args.dump is not None:
        stats.dump_stats(args.dump)
        print(f"raw profile written to {args.dump} (open with pstats)")
    return 0


#: Subcommands dispatched before the experiment parser is built: the
#: sweep-service daemon/client (repro.service.cli), cache maintenance,
#: and the cProfile harness.
_SERVICE_COMMANDS = frozenset({"serve", "submit", "cache", "profile"})


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-mapreduce`` console script."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SERVICE_COMMANDS:
        if argv[0] == "serve":
            from repro.service.cli import main_serve

            return main_serve(argv[1:])
        if argv[0] == "submit":
            from repro.service.cli import main_submit

            return main_submit(argv[1:])
        if argv[0] == "profile":
            return _main_profile(argv[1:])
        return _main_cache(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    for flag, value in (("--spec", args.spec), ("--csv", args.csv), ("--json", args.json_out)):
        if value is not None and args.experiment != "sweep":
            raise SystemExit(f"{flag} only applies to the 'sweep' subcommand")
    for flag, value in (
        ("--ordering", args.ordering),
        ("--allocation", args.allocation),
        ("--redundancy", args.redundancy),
        ("--locality-wait", args.locality_wait),
    ):
        if value is not None and args.experiment != "policy":
            raise SystemExit(
                f"{flag} only applies to the 'policy' subcommand (the "
                "policy-grid sweep and spec files declare compositions "
                "through the scheduler axis)"
            )
    if args.locality_wait is not None and args.allocation != "delay":
        raise SystemExit(
            "--locality-wait parameterises the 'delay' allocation; pass "
            "--allocation delay"
        )
    if args.experiment == "sweep":
        return _run_sweep(args, parser)
    config = _config_from_args(args)
    if args.experiment == "policy":
        print(_run_policy(args, config))
        return 0

    if args.experiment == "all":
        reports: List[str] = [_run_one("table2", config)]
        reports.append(_run_one("figure1", config))
        reports.append(_run_one("figure2", config))
        reports.append(_run_one("figure3", config))
        comparison = run_scheduler_comparison(config)
        reports.append(run_figure4(config, results=comparison).render())
        reports.append(run_figure5(config, results=comparison).render())
        reports.append(run_figure6(config, results=comparison).render())
        reports.append(_run_one("offline-bound", config))
        print("\n\n".join(reports))
        return 0

    print(_run_one(args.experiment, config, repair_time=args.repair_time))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
