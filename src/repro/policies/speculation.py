"""Progress-based straggler estimation shared by the speculation policies.

:class:`SpeculationEstimator` estimates a running copy's remaining time
(``t_rem``) and the duration of a fresh copy (``t_new``) purely from
observable signals (progress scores and the durations of already finished
copies), never from the simulator's hidden workloads.  It historically
lived in ``repro.schedulers.base``; it now sits beside the redundancy
policies that consume it (Mantri and LATE speculation), and the old import
path re-exports it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.simulation.scheduler_api import SchedulerView
from repro.workload.job import Job, Phase, Task, TaskCopy

__all__ = ["SpeculationEstimator"]


class SpeculationEstimator:
    """Progress-based straggler estimation shared by Mantri and LATE.

    Parameters
    ----------
    min_progress:
        Minimum progress fraction a copy must have reported before its
        remaining time is considered estimable (too-early estimates are
        wildly noisy in practice, so both Mantri and LATE wait).
    min_elapsed:
        Minimum processing time a copy must have consumed before being a
        speculation candidate.
    min_samples:
        Minimum number of finished copies of the same job phase needed to
        estimate ``t_new``; this is exactly the "detection needs to wait for
        enough samples" limitation of detection-based schemes that the paper
        points out for small jobs.
    """

    #: Maximum duration samples retained per (job, phase); older samples are
    #: discarded, which both bounds memory and keeps estimates recent.
    max_samples: int = 64

    def __init__(
        self,
        min_progress: float = 0.05,
        min_elapsed: float = 1.0,
        min_samples: int = 3,
    ) -> None:
        if not 0.0 < min_progress < 1.0:
            raise ValueError(f"min_progress must be in (0, 1), got {min_progress}")
        if min_elapsed < 0:
            raise ValueError(f"min_elapsed must be >= 0, got {min_elapsed}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.min_progress = min_progress
        self.min_elapsed = min_elapsed
        self.min_samples = min_samples
        self._samples: Dict[tuple, deque] = {}

    def record_completion(self, task: Task, time: float) -> None:
        """Record the duration of the copy that completed ``task``.

        Schedulers call this from their ``on_task_completion`` hook so that
        ``t_new`` estimation is an O(1) lookup instead of a rescan of the
        job's copies at every decision point.
        """
        winner = next((c for c in task.copies if c.is_finished), None)
        if winner is None or winner.start_time is None:
            return
        key = (task.job.job_id, task.phase)
        bucket = self._samples.setdefault(key, deque(maxlen=self.max_samples))
        bucket.append(winner.finish_time - winner.start_time)

    def recorded_durations(self, job: Job, phase: Phase) -> List[float]:
        """Durations recorded via :meth:`record_completion` for ``job``/``phase``."""
        return list(self._samples.get((job.job_id, phase), ()))

    def remaining_time(self, view: SchedulerView, copy: TaskCopy) -> Optional[float]:
        """``t_rem``: estimated remaining processing time of a running copy.

        Uses the standard progress-rate extrapolation
        ``t_rem = elapsed * (1 - progress) / progress``.  Returns ``None``
        when the copy has not yet produced a usable progress signal.
        """
        if not copy.is_active or copy.is_blocked:
            return None
        elapsed = view.copy_elapsed(copy)
        progress = view.copy_progress(copy)
        if elapsed < self.min_elapsed or progress < self.min_progress:
            return None
        return elapsed * (1.0 - progress) / progress

    def observed_durations(self, job: Job, phase: Phase) -> List[float]:
        """Durations of already-finished copies of ``job``/``phase``.

        Prefers the samples recorded through :meth:`record_completion`.
        """
        return self.recorded_durations(job, phase)

    def new_copy_estimate(self, job: Job, phase: Phase) -> Optional[float]:
        """``t_new``: expected duration of a relaunched copy.

        The median of observed durations of the same job phase; ``None``
        until ``min_samples`` copies have finished.
        """
        durations = self.observed_durations(job, phase)
        if len(durations) < self.min_samples:
            return None
        return float(np.median(durations))

    def straggler_probability(
        self, view: SchedulerView, copy: TaskCopy
    ) -> Optional[float]:
        """Mantri's ``P(t_rem > 2 * t_new)`` estimated from observed samples.

        ``t_new`` is treated as a random draw from the empirical duration
        distribution of finished copies of the same job phase; the
        probability is the fraction of those samples ``d`` with
        ``2 d < t_rem``.  Returns ``None`` when either quantity cannot be
        estimated yet.
        """
        t_rem = self.remaining_time(view, copy)
        if t_rem is None:
            return None
        durations = self._samples.get((copy.task.job.job_id, copy.task.phase))
        if durations is None or len(durations) < self.min_samples:
            return None
        # Pure-Python loop: the sample buffer is tiny (<= max_samples) and
        # this runs for every running copy at every tick, so numpy overhead
        # would dominate.
        hits = sum(1 for duration in durations if 2.0 * duration < t_rem)
        return hits / len(durations)
