"""Map/Reduce launch gating shared by every policy and scheduler.

The precedence rule of Section V-B -- reduce tasks of a job become
launchable only once the job's map phase has *completed* -- used to be
implemented twice: once in ``schedulers/base.py`` for the baseline
schedulers and once in ``core/srptms_c.py`` for the paper's algorithm.
This module is now the single implementation; both the policy kernel and
the legacy scheduler entry points call these helpers.

``allow_early_reduce=True`` switches to the park-on-machine behaviour of
the offline algorithm (reduce copies may occupy machines before the map
phase completes, making no progress), which SRPTMS+C exposes as the
``schedule_reduce_before_map_completion`` ablation knob.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.workload.job import Job, Phase, Task

__all__ = ["has_launchable_tasks", "launchable_tasks", "schedulable_jobs"]


def has_launchable_tasks(job: Job, allow_early_reduce: bool = False) -> bool:
    """O(1) counter-based test for :func:`launchable_tasks` being non-empty."""
    if job.num_unscheduled_map_tasks > 0:
        return True
    return (
        (job.map_phase_complete or allow_early_reduce)
        and job.num_unscheduled_reduce_tasks > 0
    )


def launchable_tasks(job: Job, allow_early_reduce: bool = False) -> List[Task]:
    """Unscheduled tasks of ``job`` that can run right now (maps first)."""
    pending_maps = job.unscheduled_tasks(Phase.MAP)
    if pending_maps:
        return pending_maps
    if job.map_phase_complete or allow_early_reduce:
        return job.unscheduled_tasks(Phase.REDUCE)
    return []


def schedulable_jobs(
    jobs: Iterable[Job], allow_early_reduce: bool = False
) -> List[Job]:
    """``psi^s(l)``: jobs with unscheduled, launchable tasks, in given order.

    Uses the O(1) per-job counters (never builds task lists), so this is
    O(jobs) per decision point regardless of job sizes.
    """
    result: List[Job] = []
    for job in jobs:
        if job.num_unscheduled_map_tasks > 0:
            result.append(job)
        elif (
            (job.map_phase_complete or allow_early_reduce)
            and job.num_unscheduled_reduce_tasks > 0
        ):
            result.append(job)
    return result
