"""Stage-readiness launch gating shared by every policy and scheduler.

The precedence rule of Section V-B -- reduce tasks of a job become
launchable only once the job's map phase has *completed* -- generalises to
the stage DAG as: a stage's tasks are launchable once every *predecessor*
stage has completed (the stage is *ready*).  Map→reduce is the 2-node
instance: stage 0 is always ready, stage 1 becomes ready when stage 0
completes.  This module is the single implementation; both the policy
kernel and the legacy scheduler entry points call these helpers.

``allow_early_reduce=True`` switches to the park-on-machine behaviour of
the offline algorithm (copies of not-yet-ready stages may occupy machines
before their predecessors complete, making no progress), which SRPTMS+C
exposes as the ``schedule_reduce_before_map_completion`` ablation knob.
Ready stages are always preferred: parking candidates are only offered
when no ready stage has unscheduled work, exactly the maps-first rule of
the two-phase model.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.workload.job import Job, Task

__all__ = ["has_launchable_tasks", "launchable_tasks", "schedulable_jobs"]


def has_launchable_tasks(job: Job, allow_early_reduce: bool = False) -> bool:
    """O(1) counter-based test for :func:`launchable_tasks` being non-empty."""
    if job.num_unscheduled_ready_tasks > 0:
        return True
    return allow_early_reduce and job.num_unscheduled_tasks > 0


def launchable_tasks(job: Job, allow_early_reduce: bool = False) -> List[Task]:
    """Unscheduled tasks of ``job`` that can run right now (ready stages first).

    Returns the unscheduled tasks of every *ready* stage in stage order.
    Only when no ready stage has unscheduled work does
    ``allow_early_reduce`` offer the unscheduled tasks of not-yet-ready
    stages (launched copies park on their machines without progressing).
    """
    unscheduled = job._unscheduled
    ready = job._stage_ready
    stage_lists = job.stage_tasks
    if job._unscheduled_ready > 0:
        tasks: List[Task] = []
        for stage, stage_list in enumerate(stage_lists):
            count = unscheduled[stage]
            if count and ready[stage]:
                if count == len(stage_list):
                    # Every task of the stage is unscheduled (the common
                    # case: a freshly arrived or freshly readied stage);
                    # skip the per-task filter.
                    tasks.extend(stage_list)
                else:
                    tasks.extend(
                        task
                        for task in stage_list
                        if task.completion_time is None
                        and task._num_active == 0
                    )
        return tasks
    if allow_early_reduce and job._unscheduled_total > 0:
        tasks = []
        for stage, stage_list in enumerate(stage_lists):
            count = unscheduled[stage]
            if count and not ready[stage]:
                if count == len(stage_list):
                    tasks.extend(stage_list)
                else:
                    tasks.extend(
                        task
                        for task in stage_list
                        if task.completion_time is None
                        and task._num_active == 0
                    )
        return tasks
    return []


def schedulable_jobs(
    jobs: Iterable[Job], allow_early_reduce: bool = False
) -> List[Job]:
    """``psi^s(l)``: jobs with unscheduled, launchable tasks, in given order.

    Uses the O(1) per-job counters (never builds task lists), so this is
    O(jobs) per decision point regardless of job sizes.
    """
    result: List[Job] = []
    for job in jobs:
        if job.num_unscheduled_ready_tasks > 0 or (
            allow_early_reduce and job.num_unscheduled_tasks > 0
        ):
            result.append(job)
    return result
