"""Ordering policies: in which order are machines offered to jobs?

One of the three axes of the policy kernel (see :mod:`repro.policies`).
An :class:`OrderingPolicy` ranks the alive jobs at a decision point; the
allocation policy then distributes free machines over that ranking.

Two ranking modes exist:

* *static* (``dynamic = False``): the ranking is fixed for the whole
  decision point (:meth:`OrderingPolicy.order`).  FIFO and SRPT are
  static -- their keys do not change while machines are being handed out.
* *dynamic* (``dynamic = True``): the rank of a job depends on how many
  machines it currently occupies, so the greedy allocation re-ranks after
  every single machine it hands out (water-filling), using
  :meth:`OrderingPolicy.fill_key`.  Fair sharing is dynamic -- giving a
  job a machine makes it less underserved.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.priority import online_priority
from repro.simulation.scheduler_api import SchedulerView
from repro.workload.job import Job

__all__ = ["OrderingPolicy", "FIFOOrdering", "FairOrdering", "SRPTOrdering"]


class OrderingPolicy:
    """Base class of the ordering axis (see the module docstring)."""

    #: Registry name of the policy (also its segment in composition labels).
    name: str = "ordering"
    #: True when the ranking depends on the machines a job already holds,
    #: in which case the greedy allocation water-fills via :meth:`fill_key`.
    dynamic: bool = False

    def order(self, view: SchedulerView, jobs: Sequence[Job]) -> Sequence[Job]:
        """``jobs`` ranked for this decision point (highest priority first).

        May return the given sequence itself when it is already in policy
        order (FIFO does); callers must treat the result as read-only.
        """
        raise NotImplementedError

    def fill_key(self, job: Job, occupied: int) -> float:
        """Water-filling key of ``job`` holding ``occupied`` machines.

        Smaller keys are served first.  Only dynamic orderings implement
        this; static orderings are ranked once via :meth:`order`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is a static ordering (no fill_key)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FIFOOrdering(OrderingPolicy):
    """Serve jobs in arrival order (Hadoop's original default).

    The engine maintains the alive set in arrival-event order, which is
    exactly ``(arrival_time, job_id)``: traces are sorted on that key and
    simultaneous arrivals are enqueued in trace order.  Returning the
    given order directly is therefore identical to re-sorting -- and O(n)
    instead of O(n log n) at every decision point.
    """

    name = "fifo"

    def order(self, view: SchedulerView, jobs: Sequence[Job]) -> Sequence[Job]:
        """Alive jobs in arrival order (the given sequence, uncopied)."""
        return jobs


class FairOrdering(OrderingPolicy):
    """Most-underserved-first, by occupied-machines-per-weight ratio.

    This is the Hadoop Fair Scheduler's ranking: every alive job is
    entitled to a share of the cluster proportional to its weight, and the
    job furthest below its entitlement is served first.  The ranking is
    *dynamic*: handing a job one machine changes its key, so the greedy
    allocation water-fills one machine at a time.
    """

    name = "fair"
    dynamic = True

    def order(self, view: SchedulerView, jobs: Sequence[Job]) -> List[Job]:
        """Snapshot ranking by increasing occupied-per-weight ratio."""
        return sorted(
            jobs,
            key=lambda job: (job.num_running_copies / job.weight, job.job_id),
        )

    def fill_key(self, job: Job, occupied: int) -> float:
        """Occupied-per-weight ratio with ``occupied`` machines held."""
        return occupied / job.weight


class SRPTOrdering(OrderingPolicy):
    """Weighted-SRPT: rank by the online priority ``w_i / U_i(l)``.

    ``U_i(l)`` is the remaining effective workload of Equation (4) with
    standard-deviation weight ``r``.  Paired with the epsilon-share
    allocation this is the ordering of the paper's SRPTMS+C; paired with
    the greedy allocation it is plain weighted SRPT.
    """

    name = "srpt"

    def __init__(self, r: float = 0.0) -> None:
        if r < 0:
            raise ValueError(f"r must be non-negative, got {r}")
        self.r = r

    def order(self, view: SchedulerView, jobs: Sequence[Job]) -> List[Job]:
        """Jobs by decreasing online SRPT priority (ties by job id)."""
        r = self.r
        return sorted(
            jobs, key=lambda job: (-online_priority(job, r), job.job_id)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SRPTOrdering(r={self.r})"
