"""Redundancy policies: when is a second copy of a task worth a machine?

One of the three axes of the policy kernel (see :mod:`repro.policies`).
A :class:`RedundancyPolicy` has two hooks into a decision point:

* :meth:`RedundancyPolicy.expand_grant` -- called by *share-based*
  allocations (:class:`~repro.policies.allocation.EpsilonShareAllocation`)
  for every job, with the job's newly granted machines.  The default
  spends them one single copy per unscheduled task;
  :class:`PaperCloning` clones tasks to use the whole grant (the paper's
  Task Scheduling procedure).
* :meth:`RedundancyPolicy.finalize` -- called once per decision point
  after the base allocation, with the machines still free.  This is where
  post-pass redundancy lives: :class:`SCACloning` folds marginal-gain
  clones into the planned requests, :class:`LATESpeculation` and
  :class:`MantriSpeculation` append duplicates of detected stragglers,
  and :class:`PaperCloning` spreads leftover machines as clones when the
  allocation did not already give it per-job grants.

:class:`NoRedundancy` implements neither: exactly one copy per task, ever
(the engine-level ``SimulationResult.redundant_copies_launched`` counter
stays at zero, which the property tests assert).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.speedup import ParetoSpeedup, SpeedupFunction
from repro.policies.speculation import SpeculationEstimator
from repro.simulation.scheduler_api import LaunchRequest, SchedulerView
from repro.workload.job import Job, Phase, Task, TaskCopy

__all__ = [
    "RedundancyPolicy",
    "NoRedundancy",
    "CheckpointRedundancy",
    "PaperCloning",
    "SCACloning",
    "LATESpeculation",
    "MantriSpeculation",
]


class RedundancyPolicy:
    """Base class of the redundancy axis (see the module docstring)."""

    #: Registry name of the policy (also its segment in composition labels).
    name: str = "redundancy"
    #: Progress-monitoring policies (Mantri, LATE) ask the engine for
    #: periodic wake-ups; allocation-time policies do not need them.
    tick_interval: Optional[float] = None

    def __init__(self) -> None:
        #: Redundant copies (clones or speculative duplicates) this policy
        #: decided to launch over the lifetime of one simulation run.
        self.copies_launched = 0

    def on_task_completion(self, task: Task, time: float) -> None:
        """Observation hook (estimator feeding); default: nothing."""

    def expand_grant(
        self,
        job: Job,
        candidates: Sequence[Task],
        machines: int,
        rng: np.random.Generator,
    ) -> Tuple[List[LaunchRequest], int]:
        """Spend one job's ``machines``-machine grant on its ``candidates``.

        Default behaviour (no redundancy): one single copy per candidate,
        in candidate order, until the grant or the candidates run out.
        Returns the requests and the machines actually used.
        """
        count = len(candidates)
        if count == 0 or machines <= 0:
            return [], 0
        launch = min(machines, count)
        requests = [
            LaunchRequest(task=task, num_copies=1)
            for task in candidates[:launch]
        ]
        return requests, launch

    def finalize(
        self,
        view: SchedulerView,
        free: int,
        planned: List[LaunchRequest],
        rng: np.random.Generator,
        shares_expanded: bool,
    ) -> List[LaunchRequest]:
        """Post-allocation pass over the ``free`` machines still available.

        ``planned`` is the base allocation's request list; ``shares_expanded``
        is True when the allocation already routed per-job grants through
        :meth:`expand_grant` (so grant-time cloning must not double-apply).
        Default: return the planned requests unchanged.
        """
        return planned

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NoRedundancy(RedundancyPolicy):
    """Never launch a second copy of a task (the pure-ordering ablation)."""

    name = "none"


class CheckpointRedundancy(RedundancyPolicy):
    """Opportunistic checkpointing: save partial work instead of racing copies.

    Never launches a second copy of a task.  Instead, every running copy
    durably checkpoints its completed raw work every ``interval`` units;
    when a machine failure kills the copy, the engine rounds the completed
    raw work down to the last checkpoint boundary and the replacement copy
    resumes from there instead of from zero (the ``checkpoint_resumes`` /
    ``work_saved_by_checkpointing`` counters in
    :class:`~repro.simulation.metrics.SimulationResult` account for it).
    The engine reads :attr:`checkpoint_interval` off the scheduler at
    construction time -- the policy itself makes no launch decisions beyond
    the single-copy default.

    Parameters
    ----------
    interval:
        Raw-work units between durable checkpoints (must be positive).
        Smaller intervals save more work per failure at the cost of the
        modelled checkpoint overhead being ignored (the simulation treats
        checkpoint writes as free).
    """

    name = "checkpoint"

    def __init__(self, *, interval: float = 5.0) -> None:
        super().__init__()
        if interval <= 0:
            raise ValueError(
                f"checkpoint interval must be positive, got {interval}"
            )
        #: The engine discovers this attribute (via the composed scheduler)
        #: and enables the checkpoint-resume kill path.
        self.checkpoint_interval = float(interval)


class PaperCloning(RedundancyPolicy):
    """The paper's task cloning (Algorithm 2's Task Scheduling procedure).

    Under a share-based allocation this is exactly SRPTMS+C's rule: when a
    job's grant exceeds its unscheduled task count, every task is cloned so
    the whole grant is used (copies spread as evenly as possible, the extra
    copies going to a random subset); otherwise a random subset of tasks is
    launched with a single copy each.

    Under the greedy allocation there are no per-job grants, so the same
    spreading rule is applied once, in :meth:`finalize`, to the machines
    left over after every launchable task received its single copy -- the
    natural "FIFO + cloning" / "Fair + cloning" generalisation.

    Parameters
    ----------
    enabled:
        ``False`` caps every task at one copy while keeping the random
        subset draws of the disabled-cloning SRPTMS ablation bit-identical
        to the historical implementation.
    max_copies_per_task:
        Safety cap on simultaneous copies of one task (0 = uncapped, the
        paper's setting).
    local_clones_only:
        When True and a rack topology is active, leftover-machine cloning
        (the :meth:`finalize` pass) only clones tasks whose preferred rack
        has a free machine -- a clone that would run remotely is priced at
        the remote-read slowdown and rarely wins the race, so this sweeps
        the local-vs-remote cloning trade-off in the policy grid.  Ignored
        on flat clusters, so ``topology=None`` runs stay bit-identical.
    """

    name = "clone"

    def __init__(
        self,
        *,
        enabled: bool = True,
        max_copies_per_task: int = 0,
        local_clones_only: bool = False,
    ) -> None:
        super().__init__()
        if max_copies_per_task < 0:
            raise ValueError(
                f"max_copies_per_task must be >= 0, got {max_copies_per_task}"
            )
        self.enabled = enabled
        self.max_copies_per_task = max_copies_per_task
        self.local_clones_only = local_clones_only

    def _copies_for(self, task: Task, desired: int) -> int:
        """Apply the cloning switch and the optional per-task copy cap."""
        copies = desired if self.enabled else 1
        if self.max_copies_per_task > 0:
            existing = task.num_active_copies
            copies = min(copies, max(0, self.max_copies_per_task - existing))
        return copies

    def expand_grant(
        self,
        job: Job,
        candidates: Sequence[Task],
        machines: int,
        rng: np.random.Generator,
    ) -> Tuple[List[LaunchRequest], int]:
        """The paper's Task Scheduling procedure for one job's grant.

        Returns the launch requests and the number of machines actually
        used (``pi_i(l)`` in Algorithm 2).
        """
        if not candidates or machines <= 0:
            return [], 0
        count = len(candidates)
        requests: List[LaunchRequest] = []
        used = 0
        if machines >= count:
            # Enough machines for every unscheduled task: clone to use them all.
            base_copies = machines // count
            extras = machines - base_copies * count
            # Give the extra copies to a random subset so no task systematically
            # lags behind with fewer clones.
            extra_indices = set(
                int(i)
                for i in rng.choice(count, size=extras, replace=False)
            ) if extras > 0 else set()
            for index, task in enumerate(candidates):
                desired = base_copies + (1 if index in extra_indices else 0)
                copies = self._copies_for(task, desired)
                if copies <= 0:
                    continue
                requests.append(LaunchRequest(task=task, num_copies=copies))
                used += copies
                self.copies_launched += copies - 1
        else:
            # Fewer machines than tasks: launch a random subset, one copy each.
            chosen = rng.choice(count, size=machines, replace=False)
            for index in sorted(int(i) for i in chosen):
                task = candidates[index]
                requests.append(LaunchRequest(task=task, num_copies=1))
                used += 1
        return requests, used

    def finalize(
        self,
        view: SchedulerView,
        free: int,
        planned: List[LaunchRequest],
        rng: np.random.Generator,
        shares_expanded: bool,
    ) -> List[LaunchRequest]:
        """Spread leftover machines as clones over the planned tasks.

        Only under grant-less (greedy) allocations: a share-based
        allocation already routed its grants through :meth:`expand_grant`,
        and the paper's rule leaves share-exceeding machines idle.
        """
        if shares_expanded or free <= 0 or not planned or not self.enabled:
            return planned
        # Locality-restricted cloning: only tasks with a free slot on their
        # preferred rack receive extra copies.  target_indices stays None on
        # flat clusters (and by default), keeping the historical path -- and
        # its RNG draws -- untouched.
        target_indices: Optional[List[int]] = None
        if self.local_clones_only and view.topology_active:
            target_indices = [
                index
                for index, request in enumerate(planned)
                if view.locality_hint(request.task)
            ]
            if not target_indices:
                return planned
        count = len(planned) if target_indices is None else len(target_indices)
        base_copies = free // count
        extras = free - base_copies * count
        extra_indices = set(
            int(i) for i in rng.choice(count, size=extras, replace=False)
        ) if extras > 0 else set()
        if target_indices is not None:
            # Re-key the per-target spread onto positions in `planned`.
            extra_indices = {target_indices[i] for i in extra_indices}
            targets = set(target_indices)
        else:
            targets = None
        requests: List[LaunchRequest] = []
        for index, request in enumerate(planned):
            if targets is not None and index not in targets:
                requests.append(request)
                continue
            desired = request.num_copies + base_copies + (
                1 if index in extra_indices else 0
            )
            copies = self._copies_for(request.task, desired)
            if copies <= 0:
                continue
            self.copies_launched += max(0, copies - request.num_copies)
            requests.append(LaunchRequest(task=request.task, num_copies=copies))
        return requests


class SCACloning(RedundancyPolicy):
    """Smart Cloning Algorithm's marginal-gain cloning (after [26]).

    Remaining free machines are handed out one at a time to the task whose
    additional clone yields the largest marginal reduction in expected
    weighted phase-completion time,

        gain = w_i * (E / s(x) - E / s(x + 1)) / (#unfinished tasks in phase),

    where ``x`` is the task's current planned copy count.  Dividing by the
    number of unfinished tasks in the phase captures that a phase only
    completes when *all* its tasks do, which makes SCA clone *small* jobs
    aggressively -- the behaviour [26] reports.
    """

    name = "sca"

    def __init__(
        self,
        speedup: Optional[SpeedupFunction] = None,
        *,
        max_copies_per_task: int = 8,
    ) -> None:
        super().__init__()
        if max_copies_per_task < 1:
            raise ValueError(
                f"max_copies_per_task must be >= 1, got {max_copies_per_task}"
            )
        self.speedup = speedup if speedup is not None else ParetoSpeedup(alpha=2.0)
        self.max_copies_per_task = max_copies_per_task

    # -- clone allocation -------------------------------------------------------------

    def _phase_pending_count(self, job: Job, phase: Phase) -> int:
        """Unfinished task count of one phase, used to scale marginal gains."""
        return job.num_incomplete_tasks(phase)

    def _marginal_gain(self, task: Task, copies: int, pending_in_phase: int) -> float:
        """Weighted reduction in expected phase time from one more clone."""
        mean = task.duration_distribution.mean
        gain = self.speedup.marginal_gain(mean, copies)
        return task.job.weight * gain / max(1, pending_in_phase)

    def _allocate_clones(
        self,
        planned_copies: Dict[str, int],
        tasks_by_id: Dict[str, Task],
        free: int,
    ) -> Dict[str, int]:
        """Distribute ``free`` machines as clones by greedy marginal gain."""
        extra: Dict[str, int] = {}
        if free <= 0 or not planned_copies:
            return extra
        counter = itertools.count()
        heap: List[tuple] = []
        pending_cache: Dict[tuple, int] = {}
        for task_id, copies in planned_copies.items():
            task = tasks_by_id[task_id]
            key = (task.job.job_id, task.phase)
            if key not in pending_cache:
                pending_cache[key] = self._phase_pending_count(task.job, task.phase)
            gain = self._marginal_gain(task, copies, pending_cache[key])
            heapq.heappush(heap, (-gain, next(counter), task_id))

        while free > 0 and heap:
            negative_gain, _, task_id = heapq.heappop(heap)
            if -negative_gain <= 0:
                break
            task = tasks_by_id[task_id]
            current = planned_copies[task_id] + extra.get(task_id, 0)
            if current >= self.max_copies_per_task:
                continue
            extra[task_id] = extra.get(task_id, 0) + 1
            free -= 1
            new_count = current + 1
            if new_count < self.max_copies_per_task:
                key = (task.job.job_id, task.phase)
                gain = self._marginal_gain(task, new_count, pending_cache[key])
                heapq.heappush(heap, (-gain, next(counter), task_id))
        return extra

    # -- decision --------------------------------------------------------------------------

    def finalize(
        self,
        view: SchedulerView,
        free: int,
        planned: List[LaunchRequest],
        rng: np.random.Generator,
        shares_expanded: bool,
    ) -> List[LaunchRequest]:
        """Fold marginal-gain clones into the planned base requests."""
        planned_copies: Dict[str, int] = {}
        tasks_by_id: Dict[str, Task] = {}
        for request in planned:
            planned_copies[request.task.task_id] = request.num_copies
            tasks_by_id[request.task.task_id] = request.task
        extra = self._allocate_clones(planned_copies, tasks_by_id, free)
        self.copies_launched += sum(extra.values())
        requests: List[LaunchRequest] = []
        for task_id, copies in planned_copies.items():
            total = copies + extra.get(task_id, 0)
            requests.append(
                LaunchRequest(task=tasks_by_id[task_id], num_copies=total)
            )
        return requests


class LATESpeculation(RedundancyPolicy):
    """LATE (Longest Approximate Time to End) speculative execution [28].

    * estimate each running attempt's time-to-end by progress-rate
      extrapolation;
    * speculate only on attempts whose *progress rate* falls below the
      ``slow_task_percentile`` of currently running attempts;
    * among those, duplicate the attempts with the *longest* estimated time
      to end first;
    * never exceed ``speculative_cap`` (a fraction of the cluster)
      concurrent speculative copies, and at most one duplicate per task.
    """

    name = "late"

    def __init__(
        self,
        *,
        slow_task_percentile: float = 25.0,
        speculative_cap: float = 0.1,
        tick_interval: Optional[float] = 5.0,
        min_progress: float = 0.05,
        min_elapsed: float = 1.0,
    ) -> None:
        super().__init__()
        if not 0.0 < slow_task_percentile < 100.0:
            raise ValueError(
                f"slow_task_percentile must be in (0, 100), got {slow_task_percentile}"
            )
        if not 0.0 < speculative_cap <= 1.0:
            raise ValueError(
                f"speculative_cap must be in (0, 1], got {speculative_cap}"
            )
        self.slow_task_percentile = slow_task_percentile
        self.speculative_cap = speculative_cap
        self.tick_interval = tick_interval
        self.estimator = SpeculationEstimator(
            min_progress=min_progress, min_elapsed=min_elapsed, min_samples=1
        )

    def on_task_completion(self, task: Task, time: float) -> None:
        """Feed the finished task's duration into the time-left estimator."""
        self.estimator.record_completion(task, time)

    def _progress_rates(self, view: SchedulerView) -> Dict[int, float]:
        """Progress per unit time of every estimable running copy."""
        rates: Dict[int, float] = {}
        for copy in view.running_copies():
            elapsed = view.copy_elapsed(copy)
            if elapsed < self.estimator.min_elapsed:
                continue
            rates[id(copy)] = view.copy_progress(copy) / elapsed
        return rates

    def _speculate(self, view: SchedulerView, free: int) -> List[LaunchRequest]:
        if free <= 0:
            return []
        cap = int(self.speculative_cap * view.num_machines)
        budget = min(free, cap)
        if budget <= 0:
            return []
        rates = self._progress_rates(view)
        if not rates:
            return []
        threshold = float(
            np.percentile(list(rates.values()), self.slow_task_percentile)
        )
        candidates: List[tuple] = []
        for copy in view.running_copies():
            key = id(copy)
            if key not in rates or rates[key] > threshold:
                continue
            task = copy.task
            if task.num_active_copies >= 2:
                continue
            time_left = self.estimator.remaining_time(view, copy)
            if time_left is None:
                continue
            candidates.append((-time_left, copy))
        candidates.sort(key=lambda item: item[0])

        requests: List[LaunchRequest] = []
        duplicated = set()
        for _, copy in candidates:
            if budget <= 0:
                break
            task = copy.task
            if id(task) in duplicated:
                continue
            requests.append(LaunchRequest(task=task, num_copies=1))
            duplicated.add(id(task))
            self.copies_launched += 1
            budget -= 1
        return requests

    def finalize(
        self,
        view: SchedulerView,
        free: int,
        planned: List[LaunchRequest],
        rng: np.random.Generator,
        shares_expanded: bool,
    ) -> List[LaunchRequest]:
        """Append duplicates of the slowest detected attempts."""
        requests = list(planned)
        requests.extend(self._speculate(view, free))
        return requests


class MantriSpeculation(RedundancyPolicy):
    """Microsoft Mantri's duplicate-launch rule [4].

    For every running attempt Mantri tracks a progress score and estimates
    the remaining time ``t_rem`` by progress-rate extrapolation, and the
    duration ``t_new`` of a restarted copy from the empirical durations of
    finished copies of the same job phase; a duplicate is launched when
    ``P(t_rem > 2 * t_new) > delta``, the paper's inequality, with at most
    ``max_copies_per_task`` simultaneous attempts per task.  Pending
    (never-yet-launched) tasks always take priority over speculative
    duplicates because the base allocation runs first.
    """

    name = "mantri"

    def __init__(
        self,
        delta: float = 0.25,
        *,
        max_copies_per_task: int = 2,
        tick_interval: Optional[float] = 5.0,
        min_progress: float = 0.05,
        min_elapsed: float = 1.0,
        min_samples: int = 3,
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        if max_copies_per_task < 2:
            raise ValueError(
                f"max_copies_per_task must be at least 2, got {max_copies_per_task}"
            )
        self.delta = delta
        self.max_copies_per_task = max_copies_per_task
        self.tick_interval = tick_interval
        self.estimator = SpeculationEstimator(
            min_progress=min_progress,
            min_elapsed=min_elapsed,
            min_samples=min_samples,
        )

    def on_task_completion(self, task: Task, time: float) -> None:
        """Feed the finished task's duration into the t_new estimator."""
        self.estimator.record_completion(task, time)

    def _speculation_candidates(self, view: SchedulerView) -> List[TaskCopy]:
        """Running copies eligible for a duplicate, worst straggler first."""
        scored: List[tuple] = []
        for copy in view.running_copies():
            task = copy.task
            if task.num_active_copies >= self.max_copies_per_task:
                continue
            probability = self.estimator.straggler_probability(view, copy)
            if probability is None or probability <= self.delta:
                continue
            t_rem = self.estimator.remaining_time(view, copy)
            scored.append((-(t_rem or 0.0), copy))
        scored.sort(key=lambda item: item[0])
        return [copy for _, copy in scored]

    def _speculate(self, view: SchedulerView, free: int) -> List[LaunchRequest]:
        """Spend up to ``free`` machines on duplicates of detected stragglers."""
        if free <= 0:
            return []
        requests: List[LaunchRequest] = []
        duplicated = set()
        for copy in self._speculation_candidates(view):
            if free <= 0:
                break
            task = copy.task
            if id(task) in duplicated:
                continue
            requests.append(LaunchRequest(task=task, num_copies=1))
            duplicated.add(id(task))
            self.copies_launched += 1
            free -= 1
        return requests

    def finalize(
        self,
        view: SchedulerView,
        free: int,
        planned: List[LaunchRequest],
        rng: np.random.Generator,
        shares_expanded: bool,
    ) -> List[LaunchRequest]:
        """Append duplicates of attempts satisfying Mantri's inequality."""
        requests = list(planned)
        requests.extend(self._speculate(view, free))
        return requests
