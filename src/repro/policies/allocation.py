"""Allocation policies: how are free machines distributed over ranked jobs?

One of the three axes of the policy kernel (see :mod:`repro.policies`).
Given the ordering policy's ranking, an :class:`AllocationPolicy` decides
how many machines each job receives and emits the *base* launch requests
of a decision point; the redundancy policy then adds (or folds in) any
extra copies.

* :class:`GreedyAllocation` -- one copy per launchable task, jobs served
  strictly in ranking order.  For *dynamic* orderings (fair sharing) the
  machines are handed out one at a time with re-ranking after each
  (water-filling); for static orderings the one-pass walk is equivalent
  and cheaper.  This is the base allocation of FIFO, Fair, SRPT and the
  speculative baselines.
* :class:`EpsilonShareAllocation` -- the epsilon-fraction machine-sharing
  rule of SRPTMS+C (Section V-A, :mod:`repro.core.allocation`): the
  highest-priority jobs covering an ``epsilon`` fraction of the alive
  weight share the cluster in proportion to their weights; each job's
  newly available machines are spent through the redundancy policy's
  :meth:`~repro.policies.redundancy.RedundancyPolicy.expand_grant` hook
  (cloning when the policy says so, single copies otherwise).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Tuple

import numpy as np

from repro.core.allocation import epsilon_shares_from_ordered
from repro.policies.gating import (
    has_launchable_tasks,
    launchable_tasks,
    schedulable_jobs,
)
from repro.policies.ordering import OrderingPolicy
from repro.policies.redundancy import RedundancyPolicy
from repro.simulation.scheduler_api import LaunchRequest, SchedulerView
from repro.workload.job import Job

__all__ = ["AllocationPolicy", "GreedyAllocation", "EpsilonShareAllocation"]


class AllocationPolicy:
    """Base class of the allocation axis (see the module docstring)."""

    #: Registry name of the policy (also its segment in composition labels).
    name: str = "allocation"
    #: True when the policy computes per-job machine shares and spends them
    #: through ``RedundancyPolicy.expand_grant`` (the epsilon-share rule);
    #: redundancy policies use this to avoid double-cloning in ``finalize``.
    shares_machines: bool = False

    def allocate(
        self,
        view: SchedulerView,
        ordering: OrderingPolicy,
        redundancy: RedundancyPolicy,
        rng: np.random.Generator,
        allow_early_reduce: bool = False,
    ) -> Tuple[List[LaunchRequest], int]:
        """Base launch requests of this decision point and machines used."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GreedyAllocation(AllocationPolicy):
    """One copy per launchable task, jobs served in ranking order."""

    name = "greedy"

    def allocate(
        self,
        view: SchedulerView,
        ordering: OrderingPolicy,
        redundancy: RedundancyPolicy,
        rng: np.random.Generator,
        allow_early_reduce: bool = False,
    ) -> Tuple[List[LaunchRequest], int]:
        """Walk (static) or water-fill (dynamic ordering) the free machines."""
        free = view.num_free_machines
        if free <= 0:
            return [], 0
        if ordering.dynamic:
            requests = self._water_fill(view, ordering, free, allow_early_reduce)
        else:
            requests = self._static_walk(view, ordering, free, allow_early_reduce)
        return requests, len(requests)

    @staticmethod
    def _static_walk(
        view: SchedulerView,
        ordering: OrderingPolicy,
        free: int,
        allow_early_reduce: bool,
    ) -> List[LaunchRequest]:
        """One pass over the fixed ranking, one copy per launchable task."""
        requests: List[LaunchRequest] = []
        launchable = launchable_tasks
        for job in ordering.order(view, view.alive_jobs):
            if free <= 0:
                break
            # O(1) skip on the raw counters (inlined has_launchable_tasks:
            # this test runs once per alive job per decision point): don't
            # build a task list for a job with nothing launchable (the
            # common case once a job is fully dispatched).
            if job._unscheduled_ready == 0 and not (
                allow_early_reduce and job._unscheduled_total > 0
            ):
                continue
            for task in launchable(job, allow_early_reduce):
                if free <= 0:
                    break
                requests.append(LaunchRequest(task))
                free -= 1
        return requests

    @staticmethod
    def _water_fill(
        view: SchedulerView,
        ordering: OrderingPolicy,
        free: int,
        allow_early_reduce: bool,
    ) -> List[LaunchRequest]:
        """Hand out machines one at a time, re-ranking after each.

        This is the Hadoop Fair Scheduler's water-filling loop: each free
        machine goes to the job whose :meth:`OrderingPolicy.fill_key` is
        currently smallest among jobs that still have launchable tasks.
        """
        candidates: Dict[int, List] = {}
        jobs: Dict[int, Job] = {}
        for job in view.alive_jobs:
            if not has_launchable_tasks(job, allow_early_reduce):
                continue
            candidates[job.job_id] = launchable_tasks(job, allow_early_reduce)
            jobs[job.job_id] = job
        if not candidates:
            return []

        counter = itertools.count()
        heap: List[tuple] = []
        occupied: Dict[int, int] = {}
        for job_id, job in jobs.items():
            occupied[job_id] = job.num_running_copies
            heapq.heappush(
                heap,
                (ordering.fill_key(job, occupied[job_id]), next(counter), job_id),
            )

        requests: List[LaunchRequest] = []
        while free > 0 and heap:
            _, _, job_id = heapq.heappop(heap)
            tasks = candidates[job_id]
            if not tasks:
                continue
            task = tasks.pop(0)
            requests.append(LaunchRequest(task=task, num_copies=1))
            free -= 1
            occupied[job_id] += 1
            if tasks:
                heapq.heappush(
                    heap,
                    (
                        ordering.fill_key(jobs[job_id], occupied[job_id]),
                        next(counter),
                        job_id,
                    ),
                )
        return requests


class EpsilonShareAllocation(AllocationPolicy):
    """Epsilon-fraction machine sharing (the paper's Section V-A rule).

    ``epsilon -> 0`` grants everything to the single highest-ranked job;
    ``epsilon = 1`` degenerates to weight-proportional fair shares.  Shares
    are non-preemptive: a job already occupying at least its share receives
    nothing new.  Each job's newly available machines are spent through the
    redundancy policy's ``expand_grant`` hook, which is where the paper's
    task cloning happens.
    """

    name = "share"
    shares_machines = True

    def __init__(self, epsilon: float = 0.6) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in (0, 1], got {epsilon}")
        self.epsilon = epsilon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EpsilonShareAllocation(epsilon={self.epsilon})"

    def allocate(
        self,
        view: SchedulerView,
        ordering: OrderingPolicy,
        redundancy: RedundancyPolicy,
        rng: np.random.Generator,
        allow_early_reduce: bool = False,
    ) -> Tuple[List[LaunchRequest], int]:
        """Rank, share, then spend each job's grant via the redundancy hook."""
        available = view.num_free_machines
        if available <= 0:
            return [], 0
        jobs = schedulable_jobs(view.alive_jobs, allow_early_reduce)
        if not jobs:
            return [], 0
        # Rank once and feed the same ordering to the sharing rule instead
        # of re-sorting inside an epsilon_shares() call.
        ordered = ordering.order(view, jobs)
        shares = epsilon_shares_from_ordered(
            [(job.job_id, job.weight) for job in ordered],
            view.num_machines,
            self.epsilon,
        )

        requests: List[LaunchRequest] = []
        used_total = 0
        for job in ordered:
            if available <= 0:
                break
            share = shares.get(job.job_id, 0)
            if share <= 0:
                continue
            occupied = job.num_running_copies
            newly_available = share - occupied
            if newly_available <= 0:
                # Non-preemptive: the job already holds at least its share.
                continue
            grant = min(newly_available, available)
            candidates = launchable_tasks(job, allow_early_reduce)
            job_requests, used = redundancy.expand_grant(
                job, candidates, grant, rng
            )
            requests.extend(job_requests)
            available -= used
            used_total += used
        return requests, used_total
