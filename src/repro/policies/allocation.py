"""Allocation policies: how are free machines distributed over ranked jobs?

One of the three axes of the policy kernel (see :mod:`repro.policies`).
Given the ordering policy's ranking, an :class:`AllocationPolicy` decides
how many machines each job receives and emits the *base* launch requests
of a decision point; the redundancy policy then adds (or folds in) any
extra copies.

* :class:`GreedyAllocation` -- one copy per launchable task, jobs served
  strictly in ranking order.  For *dynamic* orderings (fair sharing) the
  machines are handed out one at a time with re-ranking after each
  (water-filling); for static orderings the one-pass walk is equivalent
  and cheaper.  This is the base allocation of FIFO, Fair, SRPT and the
  speculative baselines.
* :class:`EpsilonShareAllocation` -- the epsilon-fraction machine-sharing
  rule of SRPTMS+C (Section V-A, :mod:`repro.core.allocation`): the
  highest-priority jobs covering an ``epsilon`` fraction of the alive
  weight share the cluster in proportion to their weights; each job's
  newly available machines are spent through the redundancy policy's
  :meth:`~repro.policies.redundancy.RedundancyPolicy.expand_grant` hook
  (cloning when the policy says so, single copies otherwise).
* :class:`DelayScheduling` -- the greedy walk made placement-aware (delay
  scheduling, after the Spark/dpark ``LOCALITY_WAIT`` rule): a task whose
  preferred rack has no free machine *waits* up to :data:`LOCALITY_WAIT`
  simulated seconds for a local slot before accepting a remote one, and a
  machine whose copy of the task was killed by a failure is blacklisted
  for that task.  Without an active topology it is exactly the greedy
  allocation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.allocation import epsilon_shares_from_ordered
from repro.scenarios import DEFAULT_LOCALITY_WAIT
from repro.policies.gating import (
    has_launchable_tasks,
    launchable_tasks,
    schedulable_jobs,
)
from repro.policies.ordering import OrderingPolicy
from repro.policies.redundancy import RedundancyPolicy
from repro.simulation.scheduler_api import LaunchRequest, SchedulerView
from repro.workload.job import Job, Task

__all__ = [
    "AllocationPolicy",
    "GreedyAllocation",
    "EpsilonShareAllocation",
    "DelayScheduling",
    "LOCALITY_WAIT",
]

#: Default delay-scheduling wait (simulated seconds): how long a task holds
#: out for a slot on its preferred rack before accepting a remote one.
#: One constant, shared with the CLI flag via ``repro.scenarios``.
LOCALITY_WAIT = DEFAULT_LOCALITY_WAIT


class AllocationPolicy:
    """Base class of the allocation axis (see the module docstring)."""

    #: Registry name of the policy (also its segment in composition labels).
    name: str = "allocation"
    #: True when the policy computes per-job machine shares and spends them
    #: through ``RedundancyPolicy.expand_grant`` (the epsilon-share rule);
    #: redundancy policies use this to avoid double-cloning in ``finalize``.
    shares_machines: bool = False
    #: Engine wake-up request, mirroring ``Scheduler.tick_interval``: an
    #: allocation that defers launches (delay scheduling) asks for a tick so
    #: its deadline is a decision point.  Policies with ``dynamic_tick``
    #: refresh this inside ``allocate()``; the composed scheduler re-reads
    #: it after every decision.
    tick_interval: Optional[float] = None
    #: True when ``tick_interval`` is refreshed per decision point.
    dynamic_tick: bool = False

    def allocate(
        self,
        view: SchedulerView,
        ordering: OrderingPolicy,
        redundancy: RedundancyPolicy,
        rng: np.random.Generator,
        allow_early_reduce: bool = False,
    ) -> Tuple[List[LaunchRequest], int]:
        """Base launch requests of this decision point and machines used."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GreedyAllocation(AllocationPolicy):
    """One copy per launchable task, jobs served in ranking order."""

    name = "greedy"

    def allocate(
        self,
        view: SchedulerView,
        ordering: OrderingPolicy,
        redundancy: RedundancyPolicy,
        rng: np.random.Generator,
        allow_early_reduce: bool = False,
    ) -> Tuple[List[LaunchRequest], int]:
        """Walk (static) or water-fill (dynamic ordering) the free machines."""
        free = view.num_free_machines
        if free <= 0:
            return [], 0
        if ordering.dynamic:
            requests = self._water_fill(view, ordering, free, allow_early_reduce)
        else:
            requests = self._static_walk(view, ordering, free, allow_early_reduce)
        return requests, len(requests)

    @staticmethod
    def _static_walk(
        view: SchedulerView,
        ordering: OrderingPolicy,
        free: int,
        allow_early_reduce: bool,
    ) -> List[LaunchRequest]:
        """One pass over the fixed ranking, one copy per launchable task."""
        requests: List[LaunchRequest] = []
        launchable = launchable_tasks
        for job in ordering.order(view, view.alive_jobs):
            if free <= 0:
                break
            # O(1) skip on the raw counters (inlined has_launchable_tasks:
            # this test runs once per alive job per decision point): don't
            # build a task list for a job with nothing launchable (the
            # common case once a job is fully dispatched).
            if job._unscheduled_ready == 0 and not (
                allow_early_reduce and job._unscheduled_total > 0
            ):
                continue
            for task in launchable(job, allow_early_reduce):
                if free <= 0:
                    break
                requests.append(LaunchRequest(task))
                free -= 1
        return requests

    @staticmethod
    def _water_fill(
        view: SchedulerView,
        ordering: OrderingPolicy,
        free: int,
        allow_early_reduce: bool,
    ) -> List[LaunchRequest]:
        """Hand out machines one at a time, re-ranking after each.

        This is the Hadoop Fair Scheduler's water-filling loop: each free
        machine goes to the job whose :meth:`OrderingPolicy.fill_key` is
        currently smallest among jobs that still have launchable tasks.
        """
        candidates: Dict[int, List] = {}
        jobs: Dict[int, Job] = {}
        for job in view.alive_jobs:
            if not has_launchable_tasks(job, allow_early_reduce):
                continue
            candidates[job.job_id] = launchable_tasks(job, allow_early_reduce)
            jobs[job.job_id] = job
        if not candidates:
            return []

        counter = itertools.count()
        heap: List[tuple] = []
        occupied: Dict[int, int] = {}
        for job_id, job in jobs.items():
            occupied[job_id] = job.num_running_copies
            heapq.heappush(
                heap,
                (ordering.fill_key(job, occupied[job_id]), next(counter), job_id),
            )

        requests: List[LaunchRequest] = []
        while free > 0 and heap:
            _, _, job_id = heapq.heappop(heap)
            tasks = candidates[job_id]
            if not tasks:
                continue
            task = tasks.pop(0)
            requests.append(LaunchRequest(task=task, num_copies=1))
            free -= 1
            occupied[job_id] += 1
            if tasks:
                heapq.heappush(
                    heap,
                    (
                        ordering.fill_key(jobs[job_id], occupied[job_id]),
                        next(counter),
                        job_id,
                    ),
                )
        return requests


class EpsilonShareAllocation(AllocationPolicy):
    """Epsilon-fraction machine sharing (the paper's Section V-A rule).

    ``epsilon -> 0`` grants everything to the single highest-ranked job;
    ``epsilon = 1`` degenerates to weight-proportional fair shares.  Shares
    are non-preemptive: a job already occupying at least its share receives
    nothing new.  Each job's newly available machines are spent through the
    redundancy policy's ``expand_grant`` hook, which is where the paper's
    task cloning happens.
    """

    name = "share"
    shares_machines = True

    def __init__(self, epsilon: float = 0.6) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in (0, 1], got {epsilon}")
        self.epsilon = epsilon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EpsilonShareAllocation(epsilon={self.epsilon})"

    def allocate(
        self,
        view: SchedulerView,
        ordering: OrderingPolicy,
        redundancy: RedundancyPolicy,
        rng: np.random.Generator,
        allow_early_reduce: bool = False,
    ) -> Tuple[List[LaunchRequest], int]:
        """Rank, share, then spend each job's grant via the redundancy hook."""
        available = view.num_free_machines
        if available <= 0:
            return [], 0
        jobs = schedulable_jobs(view.alive_jobs, allow_early_reduce)
        if not jobs:
            return [], 0
        # Rank once and feed the same ordering to the sharing rule instead
        # of re-sorting inside an epsilon_shares() call.
        ordered = ordering.order(view, jobs)
        shares = epsilon_shares_from_ordered(
            [(job.job_id, job.weight) for job in ordered],
            view.num_machines,
            self.epsilon,
        )

        requests: List[LaunchRequest] = []
        used_total = 0
        for job in ordered:
            if available <= 0:
                break
            share = shares.get(job.job_id, 0)
            if share <= 0:
                continue
            occupied = job.num_running_copies
            newly_available = share - occupied
            if newly_available <= 0:
                # Non-preemptive: the job already holds at least its share.
                continue
            grant = min(newly_available, available)
            candidates = launchable_tasks(job, allow_early_reduce)
            job_requests, used = redundancy.expand_grant(
                job, candidates, grant, rng
            )
            requests.extend(job_requests)
            available -= used
            used_total += used
        return requests, used_total


class DelayScheduling(AllocationPolicy):
    """Greedy allocation with delay scheduling on the rack topology.

    The walk visits jobs in ranking order like :class:`GreedyAllocation`,
    but each launchable task now has a *placement opinion*:

    * a free machine on the task's preferred rack (and not blacklisted for
      the task) -> launch immediately, locally;
    * only remote machines free -> the task *defers*: it waits until it
      has been deferred for ``locality_wait`` simulated seconds, then
      accepts the remote slot.  The wait clock starts the first time the
      task is considered without a local slot;
    * machines whose copy of this task was killed by a failure are
      *blacklisted* for the task and never receive a re-dispatched copy.
      While every free machine is blacklisted the task simply waits for a
      different machine (this wait is exempt from the ``locality_wait``
      bound -- there is no acceptable slot to accept).

    The policy keeps the engine alive across pure-deferral decisions by
    publishing the earliest pending deadline through ``tick_interval``
    (``dynamic_tick`` contract); deadlines are monotone (first-seen time
    plus a constant), so the engine's pending tick is never too late.

    With no active topology the walk degenerates to exactly the greedy
    allocation, which keeps ``topology=None`` runs bit-identical.
    """

    name = "delay"
    dynamic_tick = True

    def __init__(self, locality_wait: float = LOCALITY_WAIT) -> None:
        if locality_wait < 0:
            raise ValueError(
                f"locality_wait must be non-negative, got {locality_wait}"
            )
        self.locality_wait = float(locality_wait)
        #: Earliest pending deferral deadline, as a delay from "now";
        #: refreshed by every allocate() call (None = nothing deferred).
        self.tick_interval: Optional[float] = (
            self.locality_wait if self.locality_wait > 0 else None
        )
        # (job_id, stage, index) -> time the task first failed to find a
        # local slot; cleared when the task launches.
        self._first_seen: Dict[Tuple[int, int, int], float] = {}
        #: Longest any task had already waited at a moment the policy chose
        #: to keep deferring (instrumentation; < locality_wait by design).
        self.max_deferred_wait = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DelayScheduling(locality_wait={self.locality_wait})"

    @staticmethod
    def _blacklist(task: Task) -> Optional[Set[int]]:
        """Machines that failure-killed a copy of ``task`` (None if none).

        For an incomplete task every killed copy is a failure kill (clone
        kills only happen when a sibling *finishes*, completing the task),
        so the kill ledger on ``task.copies`` is exactly the blacklist.
        """
        hosts: Optional[Set[int]] = None
        for copy in task.copies:
            if copy.killed_at is not None:
                if hosts is None:
                    hosts = set()
                hosts.add(copy.machine_id)
        return hosts

    @staticmethod
    def _take_machine(
        free_pool: List[int],
        rack_of: List[int],
        preferred: Optional[int],
        blacklist: Optional[Set[int]],
    ) -> int:
        """Pop the machine the engine's placement rule would choose.

        Mirrors ``SimulationEngine._place_for_locality`` on the policy's
        private pool copy so launch requests issued in one batch account
        for the machines consumed by the requests before them.
        """
        top = len(free_pool) - 1
        choice = -1
        fallback = -1
        for i in range(top, -1, -1):
            machine_id = free_pool[i]
            if blacklist is not None and machine_id in blacklist:
                continue
            if rack_of[machine_id] == preferred:
                choice = i
                break
            if fallback < 0:
                fallback = i
        if choice < 0:
            choice = fallback if fallback >= 0 else top
        if choice != top:
            free_pool[choice], free_pool[top] = free_pool[top], free_pool[choice]
        return free_pool.pop()

    def allocate(
        self,
        view: SchedulerView,
        ordering: OrderingPolicy,
        redundancy: RedundancyPolicy,
        rng: np.random.Generator,
        allow_early_reduce: bool = False,
    ) -> Tuple[List[LaunchRequest], int]:
        """Placement-aware walk; defers off-rack launches within the wait."""
        free = view.num_free_machines
        if free <= 0:
            return [], 0
        if not view.topology_active or self.locality_wait <= 0.0:
            # Flat cluster (or zero wait): exactly the greedy allocation.
            self.tick_interval = None
            if ordering.dynamic:
                requests = GreedyAllocation._water_fill(
                    view, ordering, free, allow_early_reduce
                )
            else:
                requests = GreedyAllocation._static_walk(
                    view, ordering, free, allow_early_reduce
                )
            return requests, len(requests)

        now = view.time
        wait = self.locality_wait
        rack_of = view.machine_racks
        num_machines = view.num_machines
        free_pool = view.free_machine_ids()
        requests: List[LaunchRequest] = []
        first_seen = self._first_seen
        next_deadline: Optional[float] = None
        launchable = launchable_tasks
        # Note: one ranked pass even under dynamic orderings -- deferral
        # does not compose with per-machine water-filling, and the ranking
        # is refreshed every decision point anyway.
        for job in ordering.order(view, view.alive_jobs):
            if not free_pool:
                break
            if job._unscheduled_ready == 0 and not (
                allow_early_reduce and job._unscheduled_total > 0
            ):
                continue
            for task in launchable(job, allow_early_reduce):
                if not free_pool:
                    break
                blacklist = self._blacklist(task)
                if blacklist is not None and len(blacklist) >= num_machines:
                    # The task has died on every machine in the cluster;
                    # refusing all of them forever would deadlock the run.
                    # Forgive the blacklist (the engine's placement rule
                    # applies the same forgiveness).
                    blacklist = None
                preferred = task.preferred_rack
                have_local = False
                have_eligible = False
                for machine_id in free_pool:
                    if blacklist is not None and machine_id in blacklist:
                        continue
                    have_eligible = True
                    if rack_of[machine_id] == preferred:
                        have_local = True
                        break
                if have_local:
                    self._take_machine(free_pool, rack_of, preferred, blacklist)
                    first_seen.pop((job.job_id, task.stage, task.index), None)
                    requests.append(LaunchRequest(task))
                    continue
                key = (job.job_id, task.stage, task.index)
                seen = first_seen.get(key)
                if seen is None:
                    first_seen[key] = now
                    seen = now
                if not have_eligible:
                    # Every free machine is blacklisted for this task: hold
                    # the copy back regardless of how long it has waited,
                    # and poll again one wait from now (keeps the run alive
                    # until a non-blacklisted machine frees up or repairs).
                    deadline = now + wait
                    if next_deadline is None or deadline < next_deadline:
                        next_deadline = deadline
                    continue
                waited = now - seen
                if waited < wait:
                    if waited > self.max_deferred_wait:
                        self.max_deferred_wait = waited
                    deadline = seen + wait
                    if next_deadline is None or deadline < next_deadline:
                        next_deadline = deadline
                    continue
                # Wait exhausted: accept the remote (non-blacklisted) slot.
                self._take_machine(free_pool, rack_of, preferred, blacklist)
                first_seen.pop(key, None)
                requests.append(LaunchRequest(task))
        if next_deadline is None:
            self.tick_interval = None
        else:
            self.tick_interval = max(next_deadline - now, 0.0)
        return requests, len(requests)
