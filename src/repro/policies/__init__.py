"""The composable policy kernel: ordering x allocation x redundancy.

The paper's SRPTMS+C is literally a composition -- SRPT job ordering +
epsilon-fraction machine sharing + task cloning -- and so is every baseline
scheduler in this repository.  This package makes the three concerns
pluggable:

* :mod:`~repro.policies.ordering` -- in which order are machines offered
  to jobs?  (``fifo`` / ``fair`` / ``srpt``)
* :mod:`~repro.policies.allocation` -- how are free machines distributed
  over that order?  (``greedy`` one-per-task / ``share`` epsilon-fraction
  shares / ``delay`` rack-locality delay scheduling)
* :mod:`~repro.policies.redundancy` -- when is a second copy of a task
  worth a machine?  (``none`` / ``checkpoint`` opportunistic
  checkpointing / ``clone`` paper cloning / ``sca`` marginal-gain
  cloning / ``late`` / ``mantri`` speculation)

Any triple runs through
:class:`~repro.simulation.scheduler_api.ComposedScheduler`; the seven
historical schedulers are the named points of :data:`NAMED_COMPOSITIONS`
(their classes are thin aliases producing bit-identical results), and the
remaining cells of the 3 x 2 x 6 grid are the novel design space the
``policy-grid`` study preset sweeps.

A composition is written ``"<ordering>+<allocation>+<redundancy>"``, e.g.
``"srpt+greedy+late"`` (SRPT ordering with LATE speculation) or
``"fifo+share+clone"`` (FIFO priorities under epsilon sharing with paper
cloning); :func:`parse_composition` recognises the form, and the Study
scheduler axis, spec files and the CLI all accept it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type, Union

from repro.policies.allocation import (
    LOCALITY_WAIT,
    AllocationPolicy,
    DelayScheduling,
    EpsilonShareAllocation,
    GreedyAllocation,
)
from repro.policies.gating import (
    has_launchable_tasks,
    launchable_tasks,
    schedulable_jobs,
)
from repro.policies.ordering import (
    FairOrdering,
    FIFOOrdering,
    OrderingPolicy,
    SRPTOrdering,
)
from repro.policies.redundancy import (
    CheckpointRedundancy,
    LATESpeculation,
    MantriSpeculation,
    NoRedundancy,
    PaperCloning,
    RedundancyPolicy,
    SCACloning,
)
from repro.policies.speculation import SpeculationEstimator

__all__ = [
    "OrderingPolicy",
    "FIFOOrdering",
    "FairOrdering",
    "SRPTOrdering",
    "AllocationPolicy",
    "GreedyAllocation",
    "EpsilonShareAllocation",
    "DelayScheduling",
    "LOCALITY_WAIT",
    "RedundancyPolicy",
    "NoRedundancy",
    "CheckpointRedundancy",
    "PaperCloning",
    "SCACloning",
    "LATESpeculation",
    "MantriSpeculation",
    "SpeculationEstimator",
    "ORDERING_POLICIES",
    "ALLOCATION_POLICIES",
    "REDUNDANCY_POLICIES",
    "NAMED_COMPOSITIONS",
    "composition_label",
    "parse_composition",
    "make_ordering",
    "make_allocation",
    "make_redundancy",
    "has_launchable_tasks",
    "launchable_tasks",
    "schedulable_jobs",
]

#: The ordering axis, by registry name.
ORDERING_POLICIES: Dict[str, Type[OrderingPolicy]] = {
    "fifo": FIFOOrdering,
    "fair": FairOrdering,
    "srpt": SRPTOrdering,
}

#: The allocation axis, by registry name.
ALLOCATION_POLICIES: Dict[str, Type[AllocationPolicy]] = {
    "greedy": GreedyAllocation,
    "share": EpsilonShareAllocation,
    "delay": DelayScheduling,
}

#: The redundancy axis, by registry name.
REDUNDANCY_POLICIES: Dict[str, Type[RedundancyPolicy]] = {
    "none": NoRedundancy,
    "checkpoint": CheckpointRedundancy,
    "clone": PaperCloning,
    "sca": SCACloning,
    "late": LATESpeculation,
    "mantri": MantriSpeculation,
}

#: The seven historical schedulers as named points of the policy grid.
#: Their legacy classes are thin aliases over exactly these triples
#: (bit-identity asserted in ``tests/test_policies.py``).
NAMED_COMPOSITIONS: Dict[str, Tuple[str, str, str]] = {
    "fifo": ("fifo", "greedy", "none"),
    "fair": ("fair", "greedy", "none"),
    "srpt": ("srpt", "greedy", "none"),
    "sca": ("fair", "greedy", "sca"),
    "late": ("fair", "greedy", "late"),
    "mantri": ("fair", "greedy", "mantri"),
    "srptms_c": ("srpt", "share", "clone"),
}


def composition_label(ordering: str, allocation: str, redundancy: str) -> str:
    """The canonical ``"<ordering>+<allocation>+<redundancy>"`` spelling."""
    return f"{ordering}+{allocation}+{redundancy}"


def parse_composition(name: str) -> Optional[Tuple[str, str, str]]:
    """Parse a composition triple, or ``None`` if ``name`` is not one.

    Only strings of exactly three ``+``-separated *registered* policy names
    parse (so ``"SRPTMS+C"``, which splits into two parts, stays a plain
    scheduler name).
    """
    if not isinstance(name, str):
        return None
    parts = name.split("+")
    if len(parts) != 3:
        return None
    ordering, allocation, redundancy = parts
    if (
        ordering in ORDERING_POLICIES
        and allocation in ALLOCATION_POLICIES
        and redundancy in REDUNDANCY_POLICIES
    ):
        return (ordering, allocation, redundancy)
    return None


def _unknown(kind: str, name: object, registry: Dict[str, type]) -> ValueError:
    known = ", ".join(sorted(registry))
    return ValueError(f"unknown {kind} policy {name!r}; known: {known}")


def make_ordering(
    spec: Union[str, OrderingPolicy], *, r: float = 0.0
) -> OrderingPolicy:
    """Resolve an ordering name (or pass an instance through).

    ``r`` parameterises the ``srpt`` ordering (the standard-deviation
    weight of the remaining effective workload); other orderings ignore it.
    """
    if isinstance(spec, OrderingPolicy):
        return spec
    if spec == "srpt":
        return SRPTOrdering(r=r)
    try:
        return ORDERING_POLICIES[spec]()
    except KeyError:
        raise _unknown("ordering", spec, ORDERING_POLICIES) from None


def make_allocation(
    spec: Union[str, AllocationPolicy],
    *,
    epsilon: float = 0.6,
    locality_wait: Optional[float] = None,
) -> AllocationPolicy:
    """Resolve an allocation name (or pass an instance through).

    ``epsilon`` parameterises the ``share`` allocation (the machine-sharing
    fraction of Section V-A) and ``locality_wait`` the ``delay`` allocation
    (how long a task holds out for its preferred rack; ``None`` keeps the
    :data:`LOCALITY_WAIT` default); the other allocations ignore them.
    """
    if isinstance(spec, AllocationPolicy):
        return spec
    if spec == "share":
        return EpsilonShareAllocation(epsilon=epsilon)
    if spec == "delay" and locality_wait is not None:
        return DelayScheduling(locality_wait=locality_wait)
    try:
        return ALLOCATION_POLICIES[spec]()
    except KeyError:
        raise _unknown("allocation", spec, ALLOCATION_POLICIES) from None


def make_redundancy(
    spec: Union[str, RedundancyPolicy]
) -> RedundancyPolicy:
    """Resolve a redundancy name with default parameters (or pass through).

    Policy-specific knobs (Mantri's ``delta``, LATE's percentile, the SCA
    speedup function, the cloning cap) are available by passing a
    constructed policy instance instead of a name.
    """
    if isinstance(spec, RedundancyPolicy):
        return spec
    try:
        return REDUNDANCY_POLICIES[spec]()
    except KeyError:
        raise _unknown("redundancy", spec, REDUNDANCY_POLICIES) from None
