"""Cluster substrate: machines, straggler injection and occupancy bookkeeping."""

from repro.cluster.machine import Machine
from repro.cluster.stragglers import (
    DynamicStragglers,
    NoStragglers,
    ParetoTailInflation,
    ProbabilisticSlowdown,
    SlowMachines,
    StragglerModel,
)
from repro.cluster.state import ClusterState

__all__ = [
    "Machine",
    "ClusterState",
    "StragglerModel",
    "NoStragglers",
    "ProbabilisticSlowdown",
    "SlowMachines",
    "ParetoTailInflation",
    "DynamicStragglers",
]
