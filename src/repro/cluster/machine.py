"""Machine model.

The paper assumes identical machines that each hold at most one map or
reduce task at any time and run at unit speed; variation in task completion
times is folded into the task *workload* instead of the machine speed
(Section III).  The :class:`Machine` class nevertheless carries a ``speed``
attribute so that the resource-augmentation analysis of Section V-C (the
algorithm running on ``(1 + eps)``-speed machines) and the slow-machine
straggler model can both be expressed directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.workload.job import TaskCopy

__all__ = ["Machine"]


@dataclass
class Machine:
    """One machine (processor, core or VM) of the cluster.

    Attributes
    ----------
    machine_id:
        Index of the machine within the cluster, ``0 .. M-1``.
    speed:
        Base processing speed; a task copy with workload ``p`` takes
        ``p / speed`` time units on this machine at full health.  Defaults
        to the paper's unit speed; heterogeneous scenarios assign each
        machine its own value.
    slowdown:
        Current dynamic straggler divisor (``>= 1``); the engine raises it
        at slowdown onset and resets it to 1 at recovery.
    is_down:
        True while the machine is failed; a down machine hosts no copies.
    current_copy:
        The task copy occupying this machine, or ``None`` when idle.
    """

    machine_id: int
    speed: float = 1.0
    #: Dynamic straggler divisor applied to ``speed`` (1.0 = healthy).
    slowdown: float = 1.0
    #: True while the machine is failed (engine/ClusterState managed).
    is_down: bool = False
    current_copy: Optional["TaskCopy"] = field(default=None, repr=False)
    #: Total busy time accumulated, for utilisation accounting.
    busy_time: float = 0.0
    #: Number of copies this machine has ever executed (including killed clones).
    copies_hosted: int = 0
    #: Number of failures this machine has suffered.
    failures: int = 0

    def __post_init__(self) -> None:
        if self.machine_id < 0:
            raise ValueError(f"machine_id must be >= 0, got {self.machine_id}")
        if self.speed <= 0:
            raise ValueError(f"machine speed must be positive, got {self.speed}")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    @property
    def is_free(self) -> bool:
        """True when no task copy occupies the machine."""
        return self.current_copy is None

    @property
    def effective_speed(self) -> float:
        """Current processing rate: base speed divided by any active slowdown.

        Returns ``speed`` *exactly* (no division) while healthy, so static
        scenarios reproduce pre-scenario results bit for bit.
        """
        if self.is_down:
            return 0.0
        if self.slowdown == 1.0:
            return self.speed
        return self.speed / self.slowdown

    def assign(self, copy: "TaskCopy") -> None:
        """Place ``copy`` on this machine."""
        if self.is_down:
            raise ValueError(f"machine {self.machine_id} is down")
        if not self.is_free:
            raise ValueError(
                f"machine {self.machine_id} is already running a copy"
            )
        self.current_copy = copy
        self.copies_hosted += 1

    def release(self, elapsed: float = 0.0) -> "TaskCopy":
        """Free the machine and return the copy that was occupying it."""
        if self.current_copy is None:
            raise ValueError(f"machine {self.machine_id} is already free")
        copy = self.current_copy
        self.current_copy = None
        if elapsed < 0:
            raise ValueError(f"elapsed busy time must be >= 0, got {elapsed}")
        self.busy_time += elapsed
        return copy

    def processing_time(self, workload: float) -> float:
        """Wall-clock time to process ``workload`` at the *current* rate.

        Under a dynamic scenario this is an estimate that the engine revises
        whenever the machine's effective speed changes.
        """
        if workload <= 0:
            raise ValueError(f"workload must be positive, got {workload}")
        if self.is_down:
            raise ValueError(f"machine {self.machine_id} is down")
        return workload / self.effective_speed
