"""Machine model.

The paper assumes identical machines that each hold at most one map or
reduce task at any time and run at unit speed; variation in task completion
times is folded into the task *workload* instead of the machine speed
(Section III).  The :class:`Machine` class nevertheless carries a ``speed``
attribute so that the resource-augmentation analysis of Section V-C (the
algorithm running on ``(1 + eps)``-speed machines) and the slow-machine
straggler model can both be expressed directly.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.workload.job import TaskCopy

__all__ = ["Machine"]


class Machine:
    """One machine (processor, core or VM) of the cluster.

    Attributes
    ----------
    machine_id:
        Index of the machine within the cluster, ``0 .. M-1``.
    speed:
        Base processing speed; a task copy with workload ``p`` takes
        ``p / speed`` time units on this machine at full health.  Defaults
        to the paper's unit speed; heterogeneous scenarios assign each
        machine its own value.
    slowdown:
        Current dynamic straggler divisor (``>= 1``); the engine raises it
        at slowdown onset and resets it to 1 at recovery.
    is_down:
        True while the machine is failed; a down machine hosts no copies.
    current_copy:
        The task copy occupying this machine, or ``None`` when idle.
    busy_time:
        Total busy time accumulated, for utilisation accounting.
    copies_hosted:
        Number of copies this machine has ever executed (incl. killed clones).
    failures:
        Number of failures this machine has suffered.
    """

    __slots__ = (
        "machine_id",
        "speed",
        "slowdown",
        "is_down",
        "current_copy",
        "busy_time",
        "copies_hosted",
        "failures",
    )

    def __init__(
        self,
        machine_id: int,
        speed: float = 1.0,
        slowdown: float = 1.0,
        is_down: bool = False,
        current_copy: Optional["TaskCopy"] = None,
        busy_time: float = 0.0,
        copies_hosted: int = 0,
        failures: int = 0,
    ) -> None:
        if machine_id < 0:
            raise ValueError(f"machine_id must be >= 0, got {machine_id}")
        if speed <= 0:
            raise ValueError(f"machine speed must be positive, got {speed}")
        if slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {slowdown}")
        self.machine_id = machine_id
        self.speed = speed
        self.slowdown = slowdown
        self.is_down = is_down
        self.current_copy = current_copy
        self.busy_time = busy_time
        self.copies_hosted = copies_hosted
        self.failures = failures

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(machine_id={self.machine_id}, speed={self.speed}, "
            f"slowdown={self.slowdown}, is_down={self.is_down})"
        )

    @property
    def is_free(self) -> bool:
        """True when no task copy occupies the machine."""
        return self.current_copy is None

    @property
    def effective_speed(self) -> float:
        """Current processing rate: base speed divided by any active slowdown.

        Returns ``speed`` *exactly* (no division) while healthy, so static
        scenarios reproduce pre-scenario results bit for bit.
        """
        if self.is_down:
            return 0.0
        if self.slowdown == 1.0:
            return self.speed
        return self.speed / self.slowdown

    def assign(self, copy: "TaskCopy") -> None:
        """Place ``copy`` on this machine."""
        if self.is_down:
            raise ValueError(f"machine {self.machine_id} is down")
        if not self.is_free:
            raise ValueError(
                f"machine {self.machine_id} is already running a copy"
            )
        self.current_copy = copy
        self.copies_hosted += 1

    def release(self, elapsed: float = 0.0) -> "TaskCopy":
        """Free the machine and return the copy that was occupying it."""
        if self.current_copy is None:
            raise ValueError(f"machine {self.machine_id} is already free")
        copy = self.current_copy
        self.current_copy = None
        if elapsed < 0:
            raise ValueError(f"elapsed busy time must be >= 0, got {elapsed}")
        self.busy_time += elapsed
        return copy

    def processing_time(self, workload: float) -> float:
        """Wall-clock time to process ``workload`` at the *current* rate.

        Under a dynamic scenario this is an estimate that the engine revises
        whenever the machine's effective speed changes.
        """
        if workload <= 0:
            raise ValueError(f"workload must be positive, got {workload}")
        if self.is_down:
            raise ValueError(f"machine {self.machine_id} is down")
        return workload / self.effective_speed
