"""Machine model.

The paper assumes identical machines that each hold at most one map or
reduce task at any time and run at unit speed; variation in task completion
times is folded into the task *workload* instead of the machine speed
(Section III).  The :class:`Machine` class nevertheless carries a ``speed``
attribute so that the resource-augmentation analysis of Section V-C (the
algorithm running on ``(1 + eps)``-speed machines) and the slow-machine
straggler model can both be expressed directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.workload.job import TaskCopy

__all__ = ["Machine"]


@dataclass
class Machine:
    """One machine (processor, core or VM) of the cluster.

    Attributes
    ----------
    machine_id:
        Index of the machine within the cluster, ``0 .. M-1``.
    speed:
        Processing speed; a task copy with workload ``p`` takes ``p / speed``
        time units on this machine.  Defaults to the paper's unit speed.
    current_copy:
        The task copy occupying this machine, or ``None`` when idle.
    """

    machine_id: int
    speed: float = 1.0
    current_copy: Optional["TaskCopy"] = field(default=None, repr=False)
    #: Total busy time accumulated, for utilisation accounting.
    busy_time: float = 0.0
    #: Number of copies this machine has ever executed (including killed clones).
    copies_hosted: int = 0

    def __post_init__(self) -> None:
        if self.machine_id < 0:
            raise ValueError(f"machine_id must be >= 0, got {self.machine_id}")
        if self.speed <= 0:
            raise ValueError(f"machine speed must be positive, got {self.speed}")

    @property
    def is_free(self) -> bool:
        """True when no task copy occupies the machine."""
        return self.current_copy is None

    def assign(self, copy: "TaskCopy") -> None:
        """Place ``copy`` on this machine."""
        if not self.is_free:
            raise ValueError(
                f"machine {self.machine_id} is already running a copy"
            )
        self.current_copy = copy
        self.copies_hosted += 1

    def release(self, elapsed: float = 0.0) -> "TaskCopy":
        """Free the machine and return the copy that was occupying it."""
        if self.current_copy is None:
            raise ValueError(f"machine {self.machine_id} is already free")
        copy = self.current_copy
        self.current_copy = None
        if elapsed < 0:
            raise ValueError(f"elapsed busy time must be >= 0, got {elapsed}")
        self.busy_time += elapsed
        return copy

    def processing_time(self, workload: float) -> float:
        """Wall-clock time needed to process ``workload`` on this machine."""
        if workload <= 0:
            raise ValueError(f"workload must be positive, got {workload}")
        return workload / self.speed
