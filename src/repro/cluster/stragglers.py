"""Straggler-injection models.

The paper attributes stragglers to "tasks running on partially/intermittently
failing machines or the existence of some localized resource bottleneck(s)"
and folds the resulting variability into the task workload.  The task
duration distributions of :mod:`repro.workload.distributions` already carry
heavy tails; the models here add an *extra*, machine- or event-driven layer
of inflation so that ablation benchmarks can dial straggler severity
independently of the base workload:

* :class:`NoStragglers` -- pass-through (the default).
* :class:`ProbabilisticSlowdown` -- with probability ``p`` a copy is slowed
  by a constant factor (a transient resource bottleneck hits that copy).
* :class:`SlowMachines` -- a fixed subset of machines is permanently slow
  (a partially failing node); every copy placed there is inflated.
* :class:`ParetoTailInflation` -- every copy is multiplied by a Pareto
  factor with unit minimum, adding a heavy tail on top of any base
  distribution.

All models act on the *sampled workload of one copy*; two copies of the same
task placed on different machines therefore see independent straggler
events, which is exactly why cloning helps.

:class:`DynamicStragglers` is different in kind: it is not a per-copy
workload transform but a *time-varying machine process* (slowdown onset and
recovery events) executed by the simulation engine, which re-estimates the
remaining work of whatever copy is running when a machine's effective speed
changes.  It composes into a :class:`~repro.scenarios.ScenarioSpec`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

__all__ = [
    "StragglerModel",
    "NoStragglers",
    "ProbabilisticSlowdown",
    "SlowMachines",
    "ParetoTailInflation",
    "DynamicStragglers",
]


class StragglerModel(ABC):
    """Transforms a sampled copy workload to model straggler effects."""

    @abstractmethod
    def inflate(
        self, workload: float, machine_id: int, rng: np.random.Generator
    ) -> float:
        """Return the (possibly inflated) workload of one copy.

        Parameters
        ----------
        workload:
            The workload sampled from the task's duration distribution.
        machine_id:
            The machine the copy is being placed on.
        rng:
            The simulator's random generator.
        """

    def prepare(self, num_machines: int, rng: np.random.Generator) -> None:
        """Hook called once per simulation before any copy is placed.

        Models that depend on the cluster size (e.g. choosing which machines
        are slow) override this; the default is a no-op.
        """


class NoStragglers(StragglerModel):
    """Pass-through model: the sampled workload is used as-is."""

    def inflate(
        self, workload: float, machine_id: int, rng: np.random.Generator
    ) -> float:
        """Apply the straggler model to one sampled workload (see base class)."""
        return workload


class ProbabilisticSlowdown(StragglerModel):
    """Each copy independently hits a slowdown with probability ``probability``."""

    def __init__(self, probability: float, factor: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self.probability = probability
        self.factor = factor

    def inflate(
        self, workload: float, machine_id: int, rng: np.random.Generator
    ) -> float:
        """Apply the straggler model to one sampled workload (see base class)."""
        if self.probability > 0 and rng.random() < self.probability:
            return workload * self.factor
        return workload


class SlowMachines(StragglerModel):
    """A random fraction of machines is permanently slow.

    Copies placed on a slow machine have their workload multiplied by
    ``factor``; this is the "partially failing machine" straggler cause.
    The slow set is drawn once per simulation in :meth:`prepare`.
    """

    def __init__(self, fraction: float, factor: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self.fraction = fraction
        self.factor = factor
        self._slow_machines: Optional[Set[int]] = None

    @property
    def slow_machines(self) -> Set[int]:
        """The machine ids selected as slow (empty before :meth:`prepare`)."""
        return set(self._slow_machines) if self._slow_machines else set()

    def prepare(self, num_machines: int, rng: np.random.Generator) -> None:
        """Pre-run hook: sample per-machine straggler state (see base class)."""
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        n_slow = int(round(self.fraction * num_machines))
        chosen = rng.choice(num_machines, size=n_slow, replace=False)
        self._slow_machines = set(int(m) for m in chosen)

    def inflate(
        self, workload: float, machine_id: int, rng: np.random.Generator
    ) -> float:
        """Apply the straggler model to one sampled workload (see base class)."""
        if self._slow_machines is None:
            raise RuntimeError("SlowMachines.prepare() must be called before use")
        if machine_id in self._slow_machines:
            return workload * self.factor
        return workload


class ParetoTailInflation(StragglerModel):
    """Multiply every copy's workload by a Pareto factor with unit minimum.

    With shape ``alpha`` the inflation factor has mean ``alpha / (alpha - 1)``
    (for ``alpha > 1``); small ``alpha`` produces occasional extreme
    stragglers regardless of the base task-duration distribution.
    """

    def __init__(self, alpha: float, cap: float = 100.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if cap < 1.0:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.alpha = alpha
        self.cap = cap

    def inflate(
        self, workload: float, machine_id: int, rng: np.random.Generator
    ) -> float:
        """Apply the straggler model to one sampled workload (see base class)."""
        factor = (1.0 - rng.random()) ** (-1.0 / self.alpha)
        return workload * min(factor, self.cap)


@dataclass(frozen=True)
class DynamicStragglers:
    """A per-machine alternating normal/slow renewal process.

    While healthy, a machine hits a slowdown after an exponential time with
    rate ``onset_rate``; the slow period lasts an exponential time with mean
    ``mean_duration``, during which the machine's effective speed is divided
    by ``factor``.  Onset and recovery are *events*: copies already running
    on the machine slow down (or speed back up) mid-flight, which is what
    distinguishes this model from the static per-copy transforms above.

    The engine drives the process from each machine's dedicated scenario
    stream (see :mod:`repro.scenarios` for the seeding contract).
    """

    onset_rate: float
    mean_duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.onset_rate <= 0:
            raise ValueError(f"onset_rate must be positive, got {self.onset_rate}")
        if self.mean_duration <= 0:
            raise ValueError(
                f"mean_duration must be positive, got {self.mean_duration}"
            )
        if self.factor <= 1.0:
            raise ValueError(f"slowdown factor must exceed 1, got {self.factor}")

    def draw_onset(self, rng: np.random.Generator) -> float:
        """Healthy time until the next slowdown begins."""
        return float(rng.exponential(1.0 / self.onset_rate))

    def draw_duration(self, rng: np.random.Generator) -> float:
        """Length of one slow period."""
        return float(rng.exponential(self.mean_duration))
