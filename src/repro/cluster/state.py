"""Cluster occupancy bookkeeping.

:class:`ClusterState` tracks which machines are free, busy or down, which
task copy runs where, and the per-phase machine counts ``M(t)`` (map) and
``R(t)`` (reduce) that appear in constraints (1h)-(1j) of the paper's
optimisation program.  Machines may carry *individual* speeds (heterogeneous
scenarios); all speed queries go through :meth:`speed_of` rather than a
single cluster-wide scalar, so heterogeneity can never silently read the
wrong rate.  The simulation engine is the only writer; schedulers receive a
read-only view through
:class:`repro.simulation.scheduler_api.SchedulerView`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.machine import Machine
from repro.workload.job import Phase, TaskCopy

__all__ = ["ClusterState"]


class ClusterState:
    """Tracks machine occupancy for a cluster of ``num_machines`` machines."""

    def __init__(
        self,
        num_machines: int,
        machine_speed: float = 1.0,
        *,
        speeds: Optional[Sequence[float]] = None,
    ) -> None:
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        if machine_speed <= 0:
            raise ValueError(f"machine_speed must be positive, got {machine_speed}")
        if speeds is None:
            per_machine = [machine_speed] * num_machines
        else:
            per_machine = [float(s) for s in speeds]
            if len(per_machine) != num_machines:
                raise ValueError(
                    f"speeds has {len(per_machine)} entries for "
                    f"{num_machines} machines"
                )
            if any(s <= 0 for s in per_machine):
                raise ValueError("every machine speed must be positive")
        self._machines: List[Machine] = [
            Machine(machine_id=i, speed=per_machine[i]) for i in range(num_machines)
        ]
        self._free_ids: List[int] = list(range(num_machines - 1, -1, -1))
        # Plain int counters per phase (dict-of-Phase hashing is measurable
        # on the placement hot path).
        self._map_running = 0
        self._reduce_running = 0
        self._num_down = 0
        # Rack topology (None unless configure_topology() was called):
        # machine -> rack, and running-copy counts per rack.
        self._rack_of: Optional[List[int]] = None
        self._rack_running: Optional[List[int]] = None

    # -- basic accessors ---------------------------------------------------------

    @property
    def num_machines(self) -> int:
        """``M`` -- the total machine count (up or down)."""
        return len(self._machines)

    @property
    def num_free(self) -> int:
        """Machines currently idle and up."""
        return len(self._free_ids)

    @property
    def num_down(self) -> int:
        """Machines currently failed."""
        return self._num_down

    @property
    def num_busy(self) -> int:
        """Machines currently running (or holding a blocked) copy."""
        return self.num_machines - self.num_free - self.num_down

    def machine(self, machine_id: int) -> Machine:
        """Look up a machine by id."""
        return self._machines[machine_id]

    def speed_of(self, machine_id: int) -> float:
        """Base speed of one machine (heterogeneity-safe speed query)."""
        return self._machines[machine_id].speed

    @property
    def speeds(self) -> List[float]:
        """Base speed of every machine, in machine-id order."""
        return [machine.speed for machine in self._machines]

    @property
    def mean_speed(self) -> float:
        """Average base speed across all machines."""
        return sum(self.speeds) / self.num_machines

    @property
    def machines(self) -> List[Machine]:
        """All machines (the engine may mutate them; schedulers must not)."""
        return self._machines

    def num_running(self, phase: Phase) -> int:
        """``M(t)`` or ``R(t)``: machines occupied by copies of ``phase``."""
        return self._map_running if phase is Phase.MAP else self._reduce_running

    @property
    def utilization(self) -> float:
        """Fraction of machines currently occupied."""
        return self.num_busy / self.num_machines

    # -- topology ------------------------------------------------------------------

    def configure_topology(self, rack_of: Sequence[int]) -> None:
        """Install a machine→rack map and start per-rack occupancy counts.

        Called once by the engine before any placement when a
        non-degenerate :class:`~repro.scenarios.TopologySpec` is active;
        without it every rack query answers as if the cluster were flat.
        """
        rack_map = [int(r) for r in rack_of]
        if len(rack_map) != self.num_machines:
            raise ValueError(
                f"rack_of has {len(rack_map)} entries for "
                f"{self.num_machines} machines"
            )
        num_racks = max(rack_map) + 1 if rack_map else 0
        if any(r < 0 for r in rack_map):
            raise ValueError("rack ids must be non-negative")
        self._rack_of = rack_map
        self._rack_running = [0] * num_racks

    @property
    def num_racks(self) -> int:
        """Number of racks (1 when no topology is configured)."""
        if self._rack_running is None:
            return 1
        return len(self._rack_running)

    def rack_of(self, machine_id: int) -> int:
        """Rack hosting ``machine_id`` (0 when no topology is configured)."""
        if self._rack_of is None:
            return 0
        return self._rack_of[machine_id]

    def num_running_on_rack(self, rack: int) -> int:
        """Copies currently occupying machines of ``rack`` (O(1))."""
        if self._rack_running is None:
            return self.num_busy if rack == 0 else 0
        return self._rack_running[rack]

    # -- placement -----------------------------------------------------------------

    def has_free_machine(self) -> bool:
        """True while at least one machine is idle and up."""
        return bool(self._free_ids)

    def peek_free_machine(self) -> Optional[int]:
        """Id of the machine the next placement would use (or ``None``)."""
        return self._free_ids[-1] if self._free_ids else None

    def place(self, copy: TaskCopy) -> Machine:
        """Occupy a free machine with ``copy`` and return that machine.

        The copy must already carry the machine id chosen by
        :meth:`peek_free_machine`; this keeps the machine choice visible to
        the straggler model before the copy object is created.
        """
        if not self._free_ids:
            raise ValueError("no free machine available")
        machine_id = self._free_ids.pop()
        if copy.machine_id != machine_id:
            # The engine must place copies on the machine it peeked.
            self._free_ids.append(machine_id)
            raise ValueError(
                f"copy targets machine {copy.machine_id}, expected {machine_id}"
            )
        machine = self._machines[machine_id]
        machine.assign(copy)
        # Task.phase avoided (property call): stage 0 is the map phase.
        if copy.task.stage == 0:
            self._map_running += 1
        else:
            self._reduce_running += 1
        if self._rack_of is not None:
            self._rack_running[self._rack_of[machine_id]] += 1
        return machine

    def release(self, copy: TaskCopy, elapsed: float = 0.0) -> Machine:
        """Free the machine occupied by ``copy``."""
        machine_id = self.machine_of(copy)
        if machine_id is None:
            raise ValueError("copy is not placed on any machine")
        machine = self._machines[machine_id]
        machine.release(elapsed=elapsed)
        self._free_ids.append(machine_id)
        if copy.task.stage == 0:
            self._map_running -= 1
        else:
            self._reduce_running -= 1
        if self._rack_of is not None:
            self._rack_running[self._rack_of[machine_id]] -= 1
        return machine

    def machine_of(self, copy: TaskCopy) -> Optional[int]:
        """Machine id currently hosting ``copy``, or ``None``.

        Placement is derived from the hosting machine's ``current_copy``
        (the copy's ``machine_id`` names the only machine that could host
        it), so no side table has to be maintained on the placement path.
        """
        machine_id = copy.machine_id
        if machine_id is None or not 0 <= machine_id < len(self._machines):
            return None
        if self._machines[machine_id].current_copy is copy:
            return machine_id
        return None

    # -- failure state transitions ---------------------------------------------------

    def mark_down(self, machine_id: int) -> Machine:
        """Take a machine out of service (failure).

        The machine must be idle: the engine kills and releases any resident
        copy *before* marking its host down, so occupancy bookkeeping stays
        exact.  The machine leaves the free pool until :meth:`mark_up`.
        """
        machine = self._machines[machine_id]
        if machine.is_down:
            raise ValueError(f"machine {machine_id} is already down")
        if not machine.is_free:
            raise ValueError(
                f"machine {machine_id} still hosts a copy; release it first"
            )
        self._free_ids.remove(machine_id)
        machine.is_down = True
        machine.failures += 1
        self._num_down += 1
        return machine

    def mark_up(self, machine_id: int) -> Machine:
        """Return a repaired machine to the free pool."""
        machine = self._machines[machine_id]
        if not machine.is_down:
            raise ValueError(f"machine {machine_id} is not down")
        machine.is_down = False
        self._free_ids.append(machine_id)
        self._num_down -= 1
        return machine

    # -- invariants -------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if the occupancy bookkeeping is inconsistent.

        Used by the property-based tests and by the engine's debug mode.
        """
        busy_machines = [
            m for m in self._machines if not m.is_free and not m.is_down
        ]
        down_machines = [m for m in self._machines if m.is_down]
        assert len(busy_machines) == self.num_busy, "free-list inconsistent"
        assert len(down_machines) == self.num_down, "down count inconsistent"
        assert (
            self._map_running + self._reduce_running == self.num_busy
        ), "phase counts inconsistent"
        assert self.num_busy + self.num_free + self.num_down == self.num_machines
        for machine in down_machines:
            assert machine.is_free, "down machine still hosts a copy"
            assert machine.machine_id not in self._free_ids, "down machine in free list"
        for machine in busy_machines:
            copy = machine.current_copy
            assert copy is not None
            assert copy.machine_id == machine.machine_id, "copy/machine id mismatch"
        if self._rack_of is not None:
            recount = [0] * len(self._rack_running)
            for machine in busy_machines:
                recount[self._rack_of[machine.machine_id]] += 1
            assert recount == self._rack_running, "rack occupancy inconsistent"
            assert sum(self._rack_running) == self.num_busy
