"""Sweep service: Studies as a long-running, resumable HTTP workload.

The serving layer over the Study API and the content-addressed results
cache: ``repro-mapreduce serve`` runs a local HTTP/JSON daemon that
accepts Study specs (the exact :mod:`repro.study.specfile` TOML/JSON
format, strict-parsed), compiles them to fingerprint-tagged
:class:`~repro.simulation.experiment_runner.RunSpec` s and schedules them
incrementally on a shared
:class:`~repro.simulation.experiment_runner.ExperimentRunner` backed by
one shared :class:`~repro.simulation.results_store.ResultsStore`.

Guarantees (the reason this exists instead of ad-hoc process spawning):

* **dedup** -- a fingerprint-keyed in-flight registry collapses identical
  RunSpecs across concurrent client studies to one engine run per unique
  fingerprint; every waiting study observes the same (byte-identical)
  result (:mod:`repro.service.registry`);
* **resume** -- results are persisted to the cache before a study
  observes them, so a killed-and-restarted daemon (same ``--cache-dir``)
  re-executes only cache misses when specs are resubmitted;
* **bit-identity** -- a study served by the daemon has the same
  `ResultSet` fingerprint, and exports byte-identical CSV/JSON, as the
  same study executed offline via :meth:`repro.study.core.Study.run`.

Layout: :mod:`~repro.service.registry` (study state machine + dedup index
+ executor threads), :mod:`~repro.service.server` (stdlib
``ThreadingHTTPServer`` endpoints), :mod:`~repro.service.client` (urllib
helpers used by the ``submit`` subcommand, the CI smoke and the tests),
:mod:`~repro.service.cli` (``serve``/``submit`` argument parsing).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.registry import (
    StudyRegistry,
    StudyState,
    StudySubmitError,
    ServiceExecutor,
)
from repro.service.server import SweepService, create_service

__all__ = [
    "ServiceClient",
    "ServiceError",
    "StudyRegistry",
    "StudyState",
    "StudySubmitError",
    "ServiceExecutor",
    "SweepService",
    "create_service",
]
