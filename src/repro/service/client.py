"""urllib-based client for the sweep service.

Used by the ``repro-mapreduce submit`` subcommand, the CI service smoke
and the end-to-end tests.  Pure stdlib (``urllib.request``); every
non-2xx reply raises :class:`ServiceError` carrying the HTTP status and
the server's JSON ``error`` message when present.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.study.core import Study
from repro.study.specfile import study_to_json

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A service request failed (connection error or non-2xx reply)."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Minimal blocking client for one sweep-service daemon."""

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        path: str,
        *,
        method: str = "GET",
        body: Optional[bytes] = None,
        content_type: Optional[str] = None,
    ) -> bytes:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        if content_type is not None:
            request.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return reply.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (ValueError, AttributeError):
                pass
            raise ServiceError(
                f"{method} {path} -> {exc.code}: {detail}", status=exc.code
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"{method} {path} failed: {exc.reason}") from exc

    def _request_json(self, path: str, **kwargs: Any) -> Any:
        return json.loads(self._request(path, **kwargs).decode("utf-8"))

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> bool:
        """True when the daemon answers ``GET /healthz`` with ok."""
        try:
            return self._request_json("/healthz").get("status") == "ok"
        except ServiceError:
            return False

    def wait_healthy(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll ``/healthz`` until ok; :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthz():
                return
            time.sleep(interval)
        raise ServiceError(f"service at {self.base_url} not healthy after {timeout}s")

    def metrics(self) -> Dict[str, Any]:
        """The daemon's global counters (``GET /metrics``)."""
        return self._request_json("/metrics")

    def submit(self, spec: Union[Study, str, Path]) -> Dict[str, Any]:
        """Submit a study; returns its status summary (with ``id``).

        ``spec`` may be a :class:`~repro.study.core.Study`, a path to a
        ``.toml``/``.json`` spec file, or raw spec text (JSON unless it
        parses as TOML via the file suffix rule -- pass file paths for
        TOML).
        """
        content_type = "application/json"
        if isinstance(spec, Study):
            text = study_to_json(spec)
        elif isinstance(spec, Path) or (
            isinstance(spec, str) and "\n" not in spec and Path(spec).is_file()
        ):
            path = Path(spec)
            text = path.read_text()
            if path.suffix == ".toml":
                content_type = "application/toml"
        else:
            text = str(spec)
        payload = self._request_json(
            "/studies",
            method="POST",
            body=text.encode("utf-8"),
            content_type=content_type,
        )
        return payload

    def status(self, study_id: str) -> Dict[str, Any]:
        """One study's status summary (``GET /studies/{id}``)."""
        return self._request_json(f"/studies/{study_id}")

    def list_studies(self) -> List[Dict[str, Any]]:
        """Every registered study's summary (``GET /studies``)."""
        return self._request_json("/studies")["studies"]

    def wait(
        self,
        study_id: str,
        *,
        timeout: float = 300.0,
        interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll a study until completed/failed; returns the final summary.

        Raises :class:`ServiceError` on study failure or poll timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            summary = self.status(study_id)
            if summary["status"] == "completed":
                return summary
            if summary["status"] == "failed":
                raise ServiceError(
                    f"study {study_id} failed: {summary.get('error', '?')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"study {study_id} still {summary['status']} after {timeout}s "
                    f"({summary['completed']}/{summary['total']} results)"
                )
            time.sleep(interval)

    def results(
        self,
        study_id: str,
        *,
        format: str = "csv",
        partial: bool = False,
    ) -> bytes:
        """Download a study's export (CSV/JSON bytes, exactly as served)."""
        query = f"?format={format}"
        if partial:
            query += "&partial=1"
        return self._request(f"/studies/{study_id}/results{query}")
