"""Study registry: state machine, fingerprint dedup index, executor pool.

The registry is the daemon's brain.  Every submitted
:class:`~repro.study.core.Study` becomes a :class:`StudyState` -- its
compiled points/specs, a result slot per point, and a status that walks
the state machine::

    queued --> running --> completed
                  \\-> failed

``queued``    compiled and registered, no result delivered yet;
``running``   at least one result slot filled;
``completed`` every slot filled (the full ResultSet is available);
``failed``    a spec's engine run raised, or the study compiled to an
              uncacheable spec -- the error rides on the state.

Dedup contract
--------------
Specs are keyed by
:func:`~repro.simulation.results_store.run_spec_fingerprint`.  The
*in-flight index* maps each fingerprint to the single pending execution
and the list of ``(study, slot)`` waiters; a spec whose fingerprint is
already in flight joins the waiter list instead of enqueueing a second
execution, so N concurrent studies asking overlapping questions cost one
engine run per *unique* fingerprint and every waiter receives the same
result object (byte-identical by construction).  Cross-*process* dedup
(two daemons, or a daemon next to an offline sweep, sharing one
``cache_dir``) is handled one layer down by
:meth:`~repro.simulation.results_store.ResultsStore.shard_lock`: the
executor holds the shard lock across its miss-check-then-run window, so
the race loser re-reads the winner's entry instead of recomputing.

Execution
---------
:class:`ServiceExecutor` drains the registry's queue on worker threads;
each unique spec runs through a shared
:class:`~repro.simulation.experiment_runner.ExperimentRunner` whose
``on_result`` callback delivers into the registry (cache hits are
recognised there too, so a restarted daemon resumes with only misses).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.simulation.experiment_runner import ExperimentRunner, RunSpec
from repro.simulation.metrics import SimulationResult
from repro.simulation.results_store import (
    ResultsStore,
    UncacheableSpecError,
    run_spec_fingerprint,
)
from repro.study.core import Study, StudyPoint
from repro.study.resultset import ResultSet, StudyRun

__all__ = [
    "StudySubmitError",
    "StudyState",
    "StudyRegistry",
    "ServiceExecutor",
    "STUDY_STATES",
]

#: The study state machine's states, in lifecycle order.
STUDY_STATES: Tuple[str, ...] = ("queued", "running", "completed", "failed")


class StudySubmitError(ValueError):
    """The submitted study cannot be registered (e.g. uncacheable specs)."""


class StudyState:
    """One registered study: compiled points, result slots, lifecycle status.

    All mutation happens under the owning registry's lock; readers get
    consistent snapshots via :meth:`summary` / :meth:`result_set`.
    """

    def __init__(
        self,
        study_id: str,
        study: Study,
        points: List[StudyPoint],
        keys: List[str],
    ) -> None:
        self.study_id = study_id
        self.study = study
        self.points = points
        self.keys = keys
        self.status = "queued"
        self.error: Optional[str] = None
        self.results: List[Optional[SimulationResult]] = [None] * len(points)
        self.filled = 0
        #: Slots served straight from the results cache.
        self.slots_from_cache = 0
        #: Slots filled by a fresh engine run (a run shared with another
        #: study counts here for every waiter; the *global* engine-run
        #: count lives on the registry).
        self.slots_from_runs = 0
        #: Specs whose fingerprint was already in flight for another
        #: study (or an earlier slot) at submit time.
        self.shared_at_submit = 0
        self.created_at = time.time()
        self.finished_at: Optional[float] = None

    @property
    def total(self) -> int:
        """Number of result slots (compiled study points)."""
        return len(self.points)

    def fill(self, index: int, result: SimulationResult, cache_hit: bool) -> None:
        """Deliver ``result`` into slot ``index`` (registry-lock held)."""
        if self.results[index] is not None or self.status in ("completed", "failed"):
            return
        self.results[index] = result
        self.filled += 1
        if cache_hit:
            self.slots_from_cache += 1
        else:
            self.slots_from_runs += 1
        if self.filled == self.total:
            self.status = "completed"
            self.finished_at = time.time()
        elif self.status == "queued":
            self.status = "running"

    def fail(self, error: str) -> None:
        """Move to ``failed`` with ``error`` (terminal; registry-lock held)."""
        if self.status in ("completed", "failed"):
            return
        self.status = "failed"
        self.error = error
        self.finished_at = time.time()

    def result_set(self, partial: bool = False) -> ResultSet:
        """The study's (possibly partial) tidy result set, in point order.

        With ``partial=False`` every slot must be filled; the returned
        set is then bit-identical (same
        :meth:`~repro.study.resultset.ResultSet.fingerprint`) to
        :meth:`Study.run <repro.study.core.Study.run>` of the same study.
        """
        pairs = zip(self.points, self.results)
        if partial:
            runs = [
                StudyRun(coords=point.coords, result=result)
                for point, result in pairs
                if result is not None
            ]
        else:
            if self.filled != self.total:
                raise ValueError(
                    f"study {self.study_id} is {self.status} "
                    f"({self.filled}/{self.total} results); pass partial=True"
                )
            runs = [
                StudyRun(coords=point.coords, result=result)
                for point, result in pairs
            ]
        return ResultSet(runs, name=self.study.name)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready status snapshot (the ``GET /studies/{id}`` payload)."""
        payload: Dict[str, Any] = {
            "id": self.study_id,
            "name": self.study.name,
            "status": self.status,
            "total": self.total,
            "completed": self.filled,
            "unique_specs": len(set(self.keys)),
            "slots_from_cache": self.slots_from_cache,
            "slots_from_runs": self.slots_from_runs,
            "shared_at_submit": self.shared_at_submit,
            "created_at": self.created_at,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.finished_at is not None:
            payload["finished_at"] = self.finished_at
        if self.status == "completed":
            payload["resultset_fingerprint"] = self.result_set().fingerprint()
        return payload


class _InFlight:
    """One pending unique execution: its spec and the slots awaiting it."""

    __slots__ = ("spec", "waiters")

    def __init__(self, spec: RunSpec) -> None:
        self.spec = spec
        self.waiters: List[Tuple[str, int]] = []


class StudyRegistry:
    """Thread-safe study table + fingerprint-keyed in-flight dedup index."""

    def __init__(self, store: ResultsStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._studies: "OrderedDict[str, StudyState]" = OrderedDict()
        self._inflight: Dict[str, _InFlight] = {}
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._ids = itertools.count(1)
        self.started_at = time.time()
        #: Unique fingerprints that went through an engine run here.
        self.engine_runs = 0
        #: Unique fingerprints served from the results cache.
        self.cache_hits = 0
        #: Submit-time dedup events (a spec joining an in-flight entry).
        self.dedup_shared = 0
        #: Every distinct fingerprint ever registered.
        self.unique_keys_seen = 0

    # -- submission ---------------------------------------------------------

    def submit(self, study: Study) -> StudyState:
        """Register ``study``, enqueue its not-yet-in-flight unique specs.

        Raises :class:`StudySubmitError` when any compiled spec has no
        stable fingerprint (the service is content-addressed end to end;
        an uncacheable spec could be neither deduped nor resumed).
        """
        points = study.points()
        specs = [point.to_run_spec() for point in points]
        try:
            keys = [run_spec_fingerprint(spec) for spec in specs]
        except UncacheableSpecError as exc:
            raise StudySubmitError(
                f"study {study.name!r} compiles to an uncacheable spec: {exc}"
            ) from exc
        to_enqueue: List[str] = []
        with self._lock:
            study_id = f"st-{next(self._ids):06d}"
            state = StudyState(study_id, study, points, keys)
            self._studies[study_id] = state
            for index, (spec, key) in enumerate(zip(specs, keys)):
                entry = self._inflight.get(key)
                if entry is None:
                    entry = _InFlight(spec)
                    self._inflight[key] = entry
                    self.unique_keys_seen += 1
                    to_enqueue.append(key)
                else:
                    self.dedup_shared += 1
                    state.shared_at_submit += 1
                entry.waiters.append((study_id, index))
            if not points:
                # Zero-point studies (empty scheduler axis) are complete
                # on arrival -- nothing to execute.
                state.status = "completed"
                state.finished_at = time.time()
        for key in to_enqueue:
            self._queue.put(key)
        return state

    # -- executor interface -------------------------------------------------

    def next_key(self, timeout: float = 0.2) -> Optional[str]:
        """Next queued unique fingerprint, or ``None`` after ``timeout``."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def spec_for(self, key: str) -> Optional[RunSpec]:
        """The pending spec behind ``key`` (``None`` once delivered)."""
        with self._lock:
            entry = self._inflight.get(key)
            return entry.spec if entry is not None else None

    def deliver(self, key: str, result: SimulationResult, cache_hit: bool) -> None:
        """Fan ``result`` out to every slot waiting on ``key``."""
        with self._lock:
            entry = self._inflight.pop(key, None)
            if entry is None:
                return
            if cache_hit:
                self.cache_hits += 1
            else:
                self.engine_runs += 1
            for study_id, index in entry.waiters:
                self._studies[study_id].fill(index, result, cache_hit)

    def fail_key(self, key: str, error: str) -> None:
        """Fail every study waiting on ``key`` (terminal for those studies)."""
        with self._lock:
            entry = self._inflight.pop(key, None)
            if entry is None:
                return
            for study_id, _ in entry.waiters:
                self._studies[study_id].fail(error)

    # -- introspection ------------------------------------------------------

    def get(self, study_id: str) -> Optional[StudyState]:
        """The state registered under ``study_id``, or ``None``."""
        with self._lock:
            return self._studies.get(study_id)

    def summaries(self) -> List[Dict[str, Any]]:
        """Status snapshots of every registered study, oldest first."""
        with self._lock:
            states = list(self._studies.values())
        return [state.summary() for state in states]

    def metrics(self) -> Dict[str, Any]:
        """Global daemon counters (the ``GET /metrics`` payload)."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for state in self._studies.values():
                by_status[state.status] = by_status.get(state.status, 0) + 1
            runs = {
                "unique_keys_seen": self.unique_keys_seen,
                "engine_runs": self.engine_runs,
                "cache_hits": self.cache_hits,
                "dedup_shared": self.dedup_shared,
                "in_flight": len(self._inflight),
                "queue_depth": self._queue.qsize(),
            }
            studies = {"total": len(self._studies), "by_status": by_status}
        store = {
            "hits": self.store.hits,
            "misses": self.store.misses,
            "corrupt": self.store.corrupt,
            "writes": self.store.writes,
            "cache_dir": str(self.store.cache_dir),
        }
        return {
            "uptime_seconds": time.time() - self.started_at,
            "studies": studies,
            "runs": runs,
            "store": store,
        }


class ServiceExecutor:
    """Worker threads draining the registry queue through a shared runner.

    Each unique fingerprint is executed under its shard's advisory lock:
    the runner's own load-miss-execute-store cycle runs inside the lock,
    so a concurrent process computing the same key makes this executor's
    runner *re-read* a cache hit instead of double-running the engine.
    Engine runs happen in-process (the simulation is pure Python); more
    ``workers`` overlap runs across threads.
    """

    def __init__(
        self,
        registry: StudyRegistry,
        *,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"executor workers must be >= 1, got {workers}")
        self.registry = registry
        self.runner = ExperimentRunner(workers=1, store=registry.store)
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self.workers = int(workers)

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for number in range(self.workers):
            thread = threading.Thread(
                target=self._work,
                name=f"sweep-executor-{number}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True) -> None:
        """Stop the workers; with ``wait`` join them (in-flight runs finish)."""
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []

    def _work(self) -> None:
        registry = self.registry
        store = registry.store
        while not self._stop.is_set():
            key = registry.next_key()
            if key is None:
                continue
            spec = registry.spec_for(key)
            if spec is None:
                continue

            def relay(
                spec: RunSpec, result: SimulationResult, cache_hit: bool, _key: str = key
            ) -> None:
                registry.deliver(_key, result, cache_hit)

            try:
                # The shard lock brackets the runner's whole
                # load -> execute -> store cycle: a concurrent process
                # computing the same key serialises here, and the loser's
                # load() inside run() re-reads the winner's entry.
                with store.shard_lock(key):
                    self.runner.run([spec], on_result=relay)
            except Exception as exc:  # noqa: BLE001 - surfaced on the study
                registry.fail_key(key, f"{type(exc).__name__}: {exc}")
