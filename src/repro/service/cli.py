"""Argument parsing for the ``serve`` and ``submit`` subcommands.

Kept out of :mod:`repro.cli` so the experiment CLI's single-positional
parser stays untouched; :func:`repro.cli.main` dispatches here (and to
the ``cache`` maintenance subcommand) before building its own parser.

Examples::

    repro-mapreduce serve --cache-dir ~/.cache/repro-mapreduce --workers 2
    repro-mapreduce submit --spec examples/studies/smoke.toml \\
        --url http://127.0.0.1:8642 --csv smoke.csv
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

__all__ = ["main_serve", "main_submit", "DEFAULT_PORT"]

#: Default TCP port for ``serve``/``submit`` (unassigned by IANA).
DEFAULT_PORT = 8642


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mapreduce serve",
        description=(
            "Run the sweep-service daemon: a local HTTP/JSON API that "
            "accepts study specs, dedupes identical run specs across "
            "concurrent studies, and persists every result to the shared "
            "results cache so killed sweeps resume with only cache misses."
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; the API is unauthenticated)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port to bind (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help=(
            "results-cache directory shared with offline sweeps (created "
            "if missing); the service is content-addressed end to end, so "
            "this flag is required"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="executor threads running simulations concurrently (default 1)",
    )
    return parser


def main_serve(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-mapreduce serve``."""
    args = _serve_parser().parse_args(argv)
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    from repro.service.server import create_service

    try:
        service = create_service(
            args.host,
            args.port,
            cache_dir=args.cache_dir,
            workers=args.workers,
        )
    except OSError as exc:
        raise SystemExit(
            f"cannot bind {args.host}:{args.port}: {exc}"
        ) from None
    service.start()
    print(f"sweep service listening on {service.url} (cache: {args.cache_dir})")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.executor.stop(wait=True)
        service.server_close()
    return 0


def _submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mapreduce submit",
        description=(
            "Submit a study spec file to a running sweep service, poll it "
            "to completion and print/export the results."
        ),
    )
    parser.add_argument(
        "--spec",
        required=True,
        metavar="FILE",
        help="study spec file (.toml or .json), same format as 'sweep --spec'",
    )
    parser.add_argument(
        "--url",
        default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help=f"service base URL (default http://127.0.0.1:{DEFAULT_PORT})",
    )
    parser.add_argument(
        "--csv",
        default=None,
        metavar="FILE",
        help="write the study's CSV export here once completed",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="FILE",
        help="write the study's JSON export here once completed",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="seconds to wait for completion before giving up (default 600)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between status polls (default 0.2)",
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="submit and print the study id without polling to completion",
    )
    return parser


def main_submit(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-mapreduce submit``."""
    args = _submit_parser().parse_args(argv)
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=max(args.timeout, 10.0))
    try:
        summary = client.submit(args.spec)
        study_id = summary["id"]
        print(
            f"submitted study {summary['name']!r} as {study_id} "
            f"({summary['total']} points, {summary['unique_specs']} unique specs)"
        )
        if args.no_wait:
            return 0
        summary = client.wait(study_id, timeout=args.timeout, interval=args.poll)
        print(
            f"study {study_id} completed: "
            f"{summary['slots_from_cache']} from cache, "
            f"{summary['slots_from_runs']} executed, "
            f"fingerprint {summary['resultset_fingerprint'][:16]}..."
        )
        if args.csv:
            data = client.results(study_id, format="csv")
            with open(args.csv, "wb") as handle:
                handle.write(data)
            print(f"wrote {args.csv}")
        if args.json_out:
            data = client.results(study_id, format="json")
            with open(args.json_out, "wb") as handle:
                handle.write(data)
            print(f"wrote {args.json_out}")
    except ServiceError as exc:
        raise SystemExit(f"submit failed: {exc}") from None
    return 0
