"""Stdlib HTTP front end for the sweep service.

A thin, dependency-free serving layer: :class:`SweepService` is a
``ThreadingHTTPServer`` that owns the shared
:class:`~repro.simulation.results_store.ResultsStore`, the
:class:`~repro.service.registry.StudyRegistry` and its
:class:`~repro.service.registry.ServiceExecutor`.  Request handlers only
translate HTTP to registry calls -- all scheduling, dedup and state live
in :mod:`repro.service.registry`.

API surface
-----------
``GET  /healthz``
    ``{"status": "ok"}`` once the executor is running.
``GET  /metrics``
    Global counters: engine runs, cache hits, dedup shares, queue depth,
    store hit/miss/write totals, study counts by status.
``POST /studies``
    Body is a Study spec -- JSON by default, TOML when the
    ``Content-Type`` is ``application/toml`` or ``text/toml``.  Replies
    ``202`` with the study's status summary (including its ``id``).
    Invalid specs are ``400``; uncacheable studies are ``422``.
``GET  /studies``
    Status summaries of every registered study, oldest first.
``GET  /studies/{id}``
    One study's status summary (``404`` for unknown ids).  Completed
    studies include their ``resultset_fingerprint``.
``GET  /studies/{id}/results?format=csv|json[&partial=1]``
    The study's ResultSet export -- byte-identical to the same study's
    offline :meth:`~repro.study.core.Study.run` export.  ``409`` while
    incomplete unless ``partial=1`` asks for the filled slots only.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.service.registry import ServiceExecutor, StudyRegistry, StudySubmitError
from repro.simulation.results_store import ResultsStore
from repro.study.specfile import StudySpecError, study_from_json, study_from_toml

__all__ = ["SweepService", "create_service"]

_TOML_CONTENT_TYPES = ("application/toml", "text/toml")
#: Reject absurd request bodies before reading them (a spec is tiny).
_MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests to the owning :class:`SweepService`'s registry."""

    server: "SweepService"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (the daemon may be long-lived)."""

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._send(status, body, "application/json")

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # -- GET ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        """Serve /healthz, /metrics, /studies, /studies/{id}[/results]."""
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if parts == ["healthz"]:
            self._send_json(200, {"status": "ok"})
        elif parts == ["metrics"]:
            self._send_json(200, self.server.registry.metrics())
        elif parts == ["studies"]:
            self._send_json(200, {"studies": self.server.registry.summaries()})
        elif len(parts) == 2 and parts[0] == "studies":
            state = self.server.registry.get(parts[1])
            if state is None:
                self._send_error_json(404, f"unknown study id {parts[1]!r}")
            else:
                self._send_json(200, state.summary())
        elif len(parts) == 3 and parts[0] == "studies" and parts[2] == "results":
            self._get_results(parts[1], parse_qs(parsed.query))
        else:
            self._send_error_json(404, f"no such endpoint: {parsed.path}")

    def _get_results(self, study_id: str, query: Any) -> None:
        state = self.server.registry.get(study_id)
        if state is None:
            self._send_error_json(404, f"unknown study id {study_id!r}")
            return
        fmt = query.get("format", ["csv"])[0]
        if fmt not in ("csv", "json"):
            self._send_error_json(400, f"format must be csv or json, got {fmt!r}")
            return
        partial = query.get("partial", ["0"])[0] in ("1", "true", "yes")
        if state.status == "failed" and not partial:
            self._send_error_json(409, f"study {study_id} failed: {state.error}")
            return
        if state.status not in ("completed",) and not partial:
            self._send_error_json(
                409,
                f"study {study_id} is {state.status} "
                f"({state.filled}/{state.total} results); "
                "retry later or pass partial=1",
            )
            return
        result_set = state.result_set(partial=partial)
        if fmt == "csv":
            self._send(200, result_set.to_csv().encode("utf-8"), "text/csv")
        else:
            self._send(
                200, result_set.to_json().encode("utf-8"), "application/json"
            )

    # -- POST ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        """Accept a Study spec on /studies (JSON body; TOML by content type)."""
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if parts != ["studies"]:
            self._send_error_json(404, f"no such endpoint: {parsed.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "invalid Content-Length")
            return
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._send_error_json(400, f"body length must be in (0, {_MAX_BODY_BYTES}]")
            return
        text = self.rfile.read(length).decode("utf-8", errors="replace")
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        try:
            if content_type in _TOML_CONTENT_TYPES:
                study = study_from_toml(text)
            else:
                study = study_from_json(text)
        except StudySpecError as exc:
            self._send_error_json(400, f"invalid study spec: {exc}")
            return
        try:
            state = self.server.registry.submit(study)
        except StudySubmitError as exc:
            self._send_error_json(422, str(exc))
            return
        self._send_json(202, state.summary())


class SweepService(ThreadingHTTPServer):
    """The daemon: HTTP server + shared store + registry + executor."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        cache_dir: Union[str, Path],
        workers: int = 1,
    ) -> None:
        super().__init__(address, _Handler)
        self.store = ResultsStore(cache_dir)
        self.registry = StudyRegistry(self.store)
        self.executor = ServiceExecutor(self.registry, workers=workers)

    @property
    def url(self) -> str:
        """The service's base URL (actual bound port, even for port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start the executor threads (serve_forever still needs calling)."""
        self.executor.start()

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, embedding)."""
        self.start()
        thread = threading.Thread(
            target=self.serve_forever, name="sweep-http", daemon=True
        )
        thread.start()
        return thread

    def stop(self, wait: bool = True) -> None:
        """Shut down the HTTP loop and the executor threads."""
        self.shutdown()
        self.executor.stop(wait=wait)
        self.server_close()


def create_service(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache_dir: Union[str, Path],
    workers: int = 1,
) -> SweepService:
    """Build a :class:`SweepService` bound to ``host:port`` (0 = ephemeral)."""
    return SweepService((host, port), cache_dir=cache_dir, workers=workers)
