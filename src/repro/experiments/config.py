"""Shared configuration for the reproduction experiments.

The paper simulates the full Google trace (6064 jobs, 12 000 machines) and
averages ten repetitions.  Running that takes hours in pure Python, so the
experiments default to a *scaled* configuration: the number of jobs and the
number of machines are shrunk by the same factor, which preserves the
offered load -- the quantity scheduling behaviour actually depends on.  The
full-scale configuration remains one constructor call away
(:meth:`ExperimentConfig.paper_full_scale`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.scenarios import ScenarioSpec
from repro.simulation.experiment_runner import (
    ExperimentRunner,
    TraceSpec,
    normalize_workers,
)
from repro.workload.google_trace import (
    GoogleTraceConfig,
    GoogleTraceGenerator,
    TABLE_II_TARGETS,
)
from repro.workload.trace import Trace

__all__ = ["ExperimentConfig", "generate_google_trace"]


def generate_google_trace(trace_config: GoogleTraceConfig, seed: int) -> Trace:
    """Module-level trace factory (picklable by reference for worker processes)."""
    return GoogleTraceGenerator(trace_config).generate(seed=seed)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every figure/table experiment.

    Attributes
    ----------
    scale:
        Fraction of the full trace (jobs) and cluster (machines) to use.
    seeds:
        Replication seeds; the paper uses ten replications, the scaled
        default uses two to keep the benchmark suite fast.
    epsilon, r:
        SRPTMS+C operating point for the comparison figures (the paper picks
        0.6 and 3 after the sweeps of Figures 1 and 2).
    num_machines:
        Cluster size; ``None`` derives it from ``scale`` so the offered load
        matches the paper's.
    trace_seed:
        Seed of the synthetic trace generator (one fixed trace per config,
        replication seeds only vary the simulated task durations).
    within_job_cv:
        Within-job coefficient of variation of task durations.
    workers:
        Worker processes for replicated sweeps: ``1`` runs serially,
        ``None`` and ``0`` (the CLI spelling) both use every usable CPU --
        the value is normalised through
        :func:`repro.simulation.experiment_runner.normalize_workers` at
        construction.  Results are bit-identical either way (see
        :mod:`repro.simulation.experiment_runner`).
    scenario:
        Cluster environment every run of the experiment executes under
        (heterogeneous speeds, dynamic stragglers, failures); ``None`` is
        the paper's homogeneous static cluster.  The CLI sets this from
        ``--scenario`` and its override flags.
    cache_dir:
        Directory of the results cache
        (:class:`~repro.simulation.results_store.ResultsStore`).  When set,
        every simulation cell an experiment executes is persisted there and
        re-invocations (same trace, scheduler, scenario, seed) are served
        from disk byte-equal, with zero engine runs -- this is what lets an
        interrupted sweep resume.  ``None`` disables caching.  The CLI sets
        this from ``--cache-dir`` / ``--no-cache``.
    """

    scale: float = 0.02
    seeds: Tuple[int, ...] = (0, 1)
    epsilon: float = 0.6
    r: float = 3.0
    num_machines: Optional[int] = None
    trace_seed: int = 0
    within_job_cv: float = 0.6
    workers: Optional[int] = 1
    scenario: Optional[ScenarioSpec] = None
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scenario is not None and not isinstance(self.scenario, ScenarioSpec):
            raise TypeError(f"scenario must be a ScenarioSpec, got {self.scenario!r}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not self.seeds:
            raise ValueError("at least one replication seed is required")
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must lie in (0, 1], got {self.epsilon}")
        if self.r < 0:
            raise ValueError(f"r must be non-negative, got {self.r}")
        object.__setattr__(self, "workers", normalize_workers(self.workers))

    # -- presets ------------------------------------------------------------------

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Tiny configuration used by the unit/integration tests."""
        return cls(scale=0.005, seeds=(0,))

    @classmethod
    def default_bench(cls) -> "ExperimentConfig":
        """The configuration the benchmark suite runs by default."""
        return cls(scale=0.02, seeds=(0, 1))

    @classmethod
    def paper_full_scale(cls) -> "ExperimentConfig":
        """The paper's setting: full trace, 12K machines, ten replications."""
        return cls(scale=1.0, seeds=tuple(range(10)))

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    # -- derived quantities -----------------------------------------------------------

    @property
    def machines(self) -> int:
        """Cluster size, derived from ``scale`` unless given explicitly."""
        if self.num_machines is not None:
            return self.num_machines
        return max(1, int(round(TABLE_II_TARGETS["num_machines"] * self.scale)))

    def trace_config(self) -> GoogleTraceConfig:
        """The synthetic-trace configuration for this experiment scale."""
        return GoogleTraceConfig(scale=self.scale, within_job_cv=self.within_job_cv)

    def make_trace(self) -> Trace:
        """Generate the (deterministic, per ``trace_seed``) synthetic trace."""
        return GoogleTraceGenerator(self.trace_config()).generate(seed=self.trace_seed)

    def trace_source(self) -> TraceSpec:
        """Picklable recipe for :meth:`make_trace` (workers rebuild + memoise it)."""
        return TraceSpec(
            factory=generate_google_trace,
            kwargs={"trace_config": self.trace_config(), "seed": self.trace_seed},
        )

    def make_runner(self) -> ExperimentRunner:
        """The experiment runner this configuration asks for."""
        return ExperimentRunner(workers=self.workers, cache_dir=self.cache_dir)

    def study_kwargs(self) -> dict:
        """The scalar knobs a google-trace :class:`~repro.study.core.Study`
        inherits from this config (the one config-to-study mapping, used by
        every study preset and the CLI ``policy`` subcommand)."""
        return dict(
            scenarios=(self.scenario,),
            seeds=self.seeds,
            scale=self.scale,
            epsilon=self.epsilon,
            r=self.r,
            machines=self.num_machines,
            trace_seed=self.trace_seed,
            within_job_cv=self.within_job_cv,
        )
