"""Figure 1 -- SRPTMS+C flowtime as a function of epsilon (r = 0).

The paper sweeps the machine-sharing fraction epsilon from 0.1 to 1.0 with
``r = 0`` and finds that both the unweighted and the weighted average job
flowtime are minimised around ``epsilon = 0.6``: a small epsilon starves the
cluster of parallel jobs (too SRPT-like), a large epsilon spreads machines
too thinly across all alive jobs (too fair-share-like).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_sweep_table

__all__ = ["Figure1Result", "run_figure1", "DEFAULT_EPSILONS"]

#: The paper's Figure 1 x-axis.
DEFAULT_EPSILONS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class Figure1Result:
    """Flowtime metrics for each epsilon value."""

    epsilons: Tuple[float, ...]
    mean_flowtimes: Tuple[float, ...]
    weighted_mean_flowtimes: Tuple[float, ...]
    r: float

    @property
    def best_epsilon_unweighted(self) -> float:
        """Epsilon minimising the unweighted average flowtime."""
        index = min(
            range(len(self.epsilons)), key=lambda i: self.mean_flowtimes[i]
        )
        return self.epsilons[index]

    @property
    def best_epsilon_weighted(self) -> float:
        """Epsilon minimising the weighted average flowtime."""
        index = min(
            range(len(self.epsilons)),
            key=lambda i: self.weighted_mean_flowtimes[i],
        )
        return self.epsilons[index]

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        table = render_sweep_table(
            "epsilon",
            list(self.epsilons),
            {
                "Average job flowtime (s)": list(self.mean_flowtimes),
                "Weighted average flowtime (s)": list(self.weighted_mean_flowtimes),
            },
            title=f"Figure 1 -- flowtime vs epsilon under SRPTMS+C (r={self.r:g})",
        )
        return (
            table
            + f"\nbest epsilon (unweighted): {self.best_epsilon_unweighted:g}"
            + f"\nbest epsilon (weighted)  : {self.best_epsilon_weighted:g}"
        )


def run_figure1(
    config: Optional[ExperimentConfig] = None,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    r: float = 0.0,
) -> Figure1Result:
    """Sweep epsilon for SRPTMS+C and collect both flowtime averages.

    A thin wrapper over the ``figure1`` :class:`~repro.study.core.Study`
    preset (:mod:`repro.study.presets`), which compiles the epsilon axis
    into run specs and executes them under the config's runner settings.
    """
    from repro.study.presets import compute_figure1

    config = config if config is not None else ExperimentConfig.default_bench()
    if not epsilons:
        raise ValueError("epsilons must not be empty")
    return compute_figure1(config, epsilons=epsilons, r=r)
