"""Locality experiment: delay scheduling vs greedy placement on racks.

The rack topology (PR 8) gives placement a cost model the flat cluster
could not express: a copy launched off its task's preferred rack reads its
input over the core switch and runs slower by the scenario's
``remote_slowdown`` factor.  This driver sweeps the allocation axis --
placement-blind ``greedy`` vs delay-scheduling ``delay`` -- with and
without the paper's cloning, on a flat cluster and on a multi-rack
topology under failures, and reports mean flowtimes plus the locality
accounting (local/remote launches).  The sweep itself is the ``locality``
:class:`~repro.study.core.Study` preset, so spec files and the results
cache apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_columns

__all__ = [
    "LocalityResult",
    "run_locality",
    "DEFAULT_LOCALITY_SCHEDULERS",
    "DEFAULT_LOCALITY_WORKLOADS",
    "DEFAULT_TOPOLOGY_SCENARIOS",
    "BASELINE_SCHEDULER",
]

#: The scheduler axis: the allocation policy (placement-blind greedy vs
#: delay scheduling) is the varying factor, each with and without the
#: paper's cloning, over the same SRPT ordering.
DEFAULT_LOCALITY_SCHEDULERS: Tuple[str, ...] = (
    "srpt+greedy+none",
    "srpt+delay+none",
    "srpt+greedy+clone",
    "srpt+delay+clone",
)

#: The baseline the locality verdict is measured against.
BASELINE_SCHEDULER = "srpt+greedy+none"

#: One Poisson stream workload (labelled knob table over
#: :data:`repro.study.core.STREAM_FACTORIES`), small enough for
#: smoke-scale goldens.
DEFAULT_LOCALITY_WORKLOADS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    (
        "poisson",
        {
            "kind": "stream",
            "factory": "poisson",
            "num_jobs": 20,
            "arrival_rate": 0.05,
            "mean_tasks_per_job": 4.0,
            "mean_duration": 15.0,
            "cv": 0.3,
            "seed": 3,
        },
    ),
)

#: The topology axis: the same failure process on a flat cluster and on a
#: four-rack topology with a 2x remote-read slowdown, so the topology is
#: the only varying factor (and the failure kills exercise the delay
#: policy's per-task blacklists).
DEFAULT_TOPOLOGY_SCENARIOS: Tuple[Tuple[str, Dict[str, float]], ...] = (
    ("flat", {"failure_rate": 0.002, "mean_repair": 10.0}),
    (
        "racks",
        {
            "racks": 4,
            "remote_slowdown": 2.0,
            "failure_rate": 0.002,
            "mean_repair": 10.0,
        },
    ),
)

#: Cluster size of the sweep (fixed: the stream workload does not scale
#: with the google-trace ``scale`` knob).  A multiple of the rack count so
#: racks come out equally sized.
DEFAULT_LOCALITY_MACHINES = 12


@dataclass(frozen=True)
class LocalityResult:
    """Per-scenario flowtimes and locality counters of every scheduler."""

    scenarios: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    baseline: str
    #: ``mean_flowtimes[scenario][scheduler]``.
    mean_flowtimes: Dict[str, Dict[str, float]]
    #: ``local_launches[scenario][scheduler]`` -- replication-mean copies
    #: launched on their preferred rack (0 on the flat scenario).
    local_launches: Dict[str, Dict[str, float]]
    #: ``remote_launches[scenario][scheduler]`` -- replication-mean copies
    #: launched off their preferred rack (these pay the slowdown).
    remote_launches: Dict[str, Dict[str, float]]

    def advantage(self, scenario: str, scheduler: str) -> float:
        """Percent mean-flowtime reduction of ``scheduler`` vs the baseline."""
        baseline = self.mean_flowtimes[scenario][self.baseline]
        value = self.mean_flowtimes[scenario][scheduler]
        return 100.0 * (baseline - value) / baseline

    def locality_fraction(self, scenario: str, scheduler: str) -> float:
        """Fraction of topology-priced launches that ran rack-local."""
        local = self.local_launches[scenario][scheduler]
        remote = self.remote_launches[scenario][scheduler]
        total = local + remote
        return local / total if total > 0 else 0.0

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        blocks: List[str] = []
        for scenario in self.scenarios:
            series: Dict[str, Sequence[float]] = {
                "mean flowtime": [
                    self.mean_flowtimes[scenario][name]
                    for name in self.schedulers
                ],
                "vs greedy (%)": [
                    self.advantage(scenario, name) for name in self.schedulers
                ],
                "local launches": [
                    self.local_launches[scenario][name]
                    for name in self.schedulers
                ],
                "remote launches": [
                    self.remote_launches[scenario][name]
                    for name in self.schedulers
                ],
                "local (%)": [
                    100.0 * self.locality_fraction(scenario, name)
                    for name in self.schedulers
                ],
            }
            table = render_columns(
                "scheduler",
                list(self.schedulers),
                series,
                title=f"Locality -- scenario: {scenario}",
                precision=1,
                column_width=18,
                x_width=18,
            )
            blocks.append(table)
        delay = next(
            (n for n in self.schedulers if n.split("+")[1] == "delay"), None
        )
        if delay is not None and len(self.scenarios) > 1:
            rack_scenario = self.scenarios[-1]
            verdict = (
                f"delay scheduling local fraction on '{rack_scenario}': "
                f"{100.0 * self.locality_fraction(rack_scenario, delay):.1f}% "
                f"(greedy: "
                f"{100.0 * self.locality_fraction(rack_scenario, self.baseline):.1f}%)"
            )
            blocks.append(verdict)
        footer = (
            "allocation policy composed as srpt+<allocation>+<redundancy> "
            "(repro.policies); vs greedy (%) = mean-flowtime reduction "
            "relative to srpt+greedy+none, positive is better; local/remote "
            "launches count copies on/off their preferred rack (zero on the "
            "flat scenario by construction)"
        )
        blocks.append(footer)
        return "\n\n".join(blocks)


def run_locality(
    config: Optional[ExperimentConfig] = None,
    *,
    schedulers: Sequence[str] = DEFAULT_LOCALITY_SCHEDULERS,
    scenarios: Sequence[Tuple[str, Dict[str, float]]] = DEFAULT_TOPOLOGY_SCENARIOS,
    workloads: Sequence[Tuple[str, Dict[str, object]]] = DEFAULT_LOCALITY_WORKLOADS,
) -> LocalityResult:
    """Sweep placement policies over a flat and a multi-rack scenario.

    A thin wrapper over the ``locality`` :class:`~repro.study.core.Study`
    preset (:mod:`repro.study.presets`): one axes product of
    ``schedulers x workloads x scenarios x seeds`` through a single
    :meth:`~repro.study.core.Study.run` call, so ``config.workers`` and
    the results cache apply with bit-identical results.
    """
    from repro.study.presets import compute_locality

    config = config if config is not None else ExperimentConfig.default_bench()
    if not schedulers:
        raise ValueError("at least one scheduler is required")
    if not scenarios:
        raise ValueError("at least one scenario is required")
    if not workloads:
        raise ValueError("at least one workload is required")
    return compute_locality(
        config,
        schedulers=tuple(schedulers),
        scenarios=tuple(scenarios),
        workloads=tuple(workloads),
    )
