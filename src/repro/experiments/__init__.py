"""Per-table / per-figure experiment harness.

Every table and figure of the paper's evaluation section has a module here
whose ``run_*`` function regenerates it (on the synthetic Google-like trace,
at a configurable scale).  The benchmark suite under ``benchmarks/`` simply
calls these functions; the command-line interface (``python -m repro``)
renders their text reports.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.baselines import run_scheduler_comparison
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.offline_bound import OfflineBoundResult, run_offline_bound
from repro.experiments.policy_grid import PolicyGridResult, run_policy_grid
from repro.experiments.dag_redundancy import (
    DagRedundancyResult,
    run_dag_redundancy,
)
from repro.experiments.locality import LocalityResult, run_locality
from repro.experiments.scenario_sweep import ScenarioSweepResult, run_scenario_sweep

__all__ = [
    "ScenarioSweepResult",
    "run_scenario_sweep",
    "PolicyGridResult",
    "run_policy_grid",
    "DagRedundancyResult",
    "run_dag_redundancy",
    "LocalityResult",
    "run_locality",
    "ExperimentConfig",
    "run_scheduler_comparison",
    "Table2Result",
    "run_table2",
    "Figure1Result",
    "run_figure1",
    "Figure2Result",
    "run_figure2",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "OfflineBoundResult",
    "run_offline_bound",
]
