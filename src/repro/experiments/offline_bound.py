"""Offline-bound experiment: Theorem 1 and the Remark 2 competitive ratio.

This experiment is not a figure of the paper but validates its analytical
section empirically:

* a bulk-arrival workload (all jobs at time zero) with *deterministic* task
  durations is scheduled by Algorithm 1; Remark 2 then guarantees a
  competitive ratio of at most 2 for the weighted sum of flowtimes, and the
  Theorem 1 bound must hold for every job;
* the same workload with noisy (log-normal) durations is scheduled again;
  Theorem 1 then only holds with probability ``(1 - 1/r^2)^2`` per job, and
  the report shows the measured fraction against that probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.theory import OfflineBoundReport
from repro.experiments.config import ExperimentConfig

__all__ = ["OfflineBoundResult", "run_offline_bound"]

#: Job sizes (task counts) of the default bulk-arrival instance: a mix of
#: many small jobs and a few large ones, as in the paper's motivation.
DEFAULT_JOB_SIZES: Sequence[int] = (2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 30, 40, 60, 80)


@dataclass(frozen=True)
class OfflineBoundResult:
    """Reports for the deterministic and the noisy bulk-arrival runs."""

    deterministic: OfflineBoundReport
    noisy: OfflineBoundReport
    r: float
    num_machines: int

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        return "\n".join(
            [
                f"Offline Algorithm 1 on a bulk arrival ({self.num_machines} machines, r={self.r:g})",
                "-- deterministic task durations (Remark 2 regime) --",
                self.deterministic.render(),
                "-- noisy task durations (Theorem 1 regime) --",
                self.noisy.render(),
            ]
        )


def run_offline_bound(
    config: Optional[ExperimentConfig] = None,
    *,
    job_sizes: Sequence[int] = DEFAULT_JOB_SIZES,
    num_machines: int = 20,
    mean_duration: float = 10.0,
    noisy_cv: float = 0.3,
    r: float = 3.0,
    weights: Optional[Sequence[float]] = None,
) -> OfflineBoundResult:
    """Run Algorithm 1 on deterministic and noisy bulk arrivals and check bounds.

    A thin wrapper over the ``offline-bound``
    :class:`~repro.study.core.Study` preset (:mod:`repro.study.presets`),
    whose workload axis carries the deterministic and noisy bulk-arrival
    instances and whose ``r`` axis carries the two bound regimes.
    """
    from repro.study.presets import compute_offline_bound

    config = config if config is not None else ExperimentConfig.default_bench()
    return compute_offline_bound(
        config,
        job_sizes=job_sizes,
        num_machines=num_machines,
        mean_duration=mean_duration,
        noisy_cv=noisy_cv,
        r=r,
        weights=weights,
    )
