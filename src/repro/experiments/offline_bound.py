"""Offline-bound experiment: Theorem 1 and the Remark 2 competitive ratio.

This experiment is not a figure of the paper but validates its analytical
section empirically:

* a bulk-arrival workload (all jobs at time zero) with *deterministic* task
  durations is scheduled by Algorithm 1; Remark 2 then guarantees a
  competitive ratio of at most 2 for the weighted sum of flowtimes, and the
  Theorem 1 bound must hold for every job;
* the same workload with noisy (log-normal) durations is scheduled again;
  Theorem 1 then only holds with probability ``(1 - 1/r^2)^2`` per job, and
  the report shows the measured fraction against that probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.theory import OfflineBoundReport, offline_bound_check
from repro.core.offline import OfflineSRPTScheduler
from repro.experiments.config import ExperimentConfig
from repro.simulation.runner import run_simulation
from repro.workload.generators import bulk_arrival_trace

__all__ = ["OfflineBoundResult", "run_offline_bound"]

#: Job sizes (task counts) of the default bulk-arrival instance: a mix of
#: many small jobs and a few large ones, as in the paper's motivation.
DEFAULT_JOB_SIZES: Sequence[int] = (2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 30, 40, 60, 80)


@dataclass(frozen=True)
class OfflineBoundResult:
    """Reports for the deterministic and the noisy bulk-arrival runs."""

    deterministic: OfflineBoundReport
    noisy: OfflineBoundReport
    r: float
    num_machines: int

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        return "\n".join(
            [
                f"Offline Algorithm 1 on a bulk arrival ({self.num_machines} machines, r={self.r:g})",
                "-- deterministic task durations (Remark 2 regime) --",
                self.deterministic.render(),
                "-- noisy task durations (Theorem 1 regime) --",
                self.noisy.render(),
            ]
        )


def run_offline_bound(
    config: Optional[ExperimentConfig] = None,
    *,
    job_sizes: Sequence[int] = DEFAULT_JOB_SIZES,
    num_machines: int = 20,
    mean_duration: float = 10.0,
    noisy_cv: float = 0.3,
    r: float = 3.0,
    weights: Optional[Sequence[float]] = None,
) -> OfflineBoundResult:
    """Run Algorithm 1 on deterministic and noisy bulk arrivals and check bounds."""
    config = config if config is not None else ExperimentConfig.default_bench()
    seed = config.seeds[0]

    deterministic_trace = bulk_arrival_trace(
        job_sizes, mean_duration=mean_duration, cv=0.0, weights=weights
    )
    deterministic_result = run_simulation(
        deterministic_trace,
        OfflineSRPTScheduler(r=0.0, seed=seed),
        num_machines,
        seed=seed,
    )
    deterministic_report = offline_bound_check(
        deterministic_result, deterministic_trace, num_machines, r=0.0
    )

    noisy_trace = bulk_arrival_trace(
        job_sizes, mean_duration=mean_duration, cv=noisy_cv, weights=weights
    )
    noisy_result = run_simulation(
        noisy_trace,
        OfflineSRPTScheduler(r=r, seed=seed),
        num_machines,
        seed=seed,
    )
    noisy_report = offline_bound_check(noisy_result, noisy_trace, num_machines, r=r)

    return OfflineBoundResult(
        deterministic=deterministic_report,
        noisy=noisy_report,
        r=r,
        num_machines=num_machines,
    )
