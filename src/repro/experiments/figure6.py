"""Figure 6 -- weighted and unweighted average job flowtime per scheduler.

The paper's headline comparison: SRPTMS+C reduces both the unweighted and
the weighted average job flowtime by roughly 25% relative to Mantri (and is
also ahead of SCA) on the 12K-machine cluster with epsilon = 0.6 and r = 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.comparison import ComparisonTable
from repro.experiments.baselines import run_scheduler_comparison
from repro.experiments.config import ExperimentConfig
from repro.simulation.experiment_runner import ReplicatedResult

__all__ = ["Figure6Result", "run_figure6"]


@dataclass(frozen=True)
class Figure6Result:
    """Per-scheduler flowtime averages and improvements vs the Mantri baseline."""

    table: ComparisonTable
    baseline: str = "Mantri"

    def improvement_over_baseline(
        self, scheduler: str = "SRPTMS+C", weighted: bool = False
    ) -> float:
        """Percent flowtime reduction of ``scheduler`` relative to the baseline."""
        return self.table.improvement_over(scheduler, self.baseline, weighted=weighted)

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        header = "Figure 6 -- average job flowtime per scheduler"
        body = self.table.render(baseline=self.baseline)
        unweighted = self.improvement_over_baseline(weighted=False)
        weighted = self.improvement_over_baseline(weighted=True)
        footer = (
            f"SRPTMS+C vs {self.baseline}: {unweighted:+.1f}% (unweighted), "
            f"{weighted:+.1f}% (weighted)   [paper: ~25% reduction]"
        )
        return "\n".join([header, body, footer])


def run_figure6(
    config: Optional[ExperimentConfig] = None,
    *,
    results: Optional[Dict[str, ReplicatedResult]] = None,
) -> Figure6Result:
    """Compute the Figure 6 comparison (reusing ``results`` when supplied)."""
    config = config if config is not None else ExperimentConfig.default_bench()
    if results is None:
        results = run_scheduler_comparison(config)
    table = ComparisonTable.from_results(results)
    return Figure6Result(table=table)
