"""Shared scheduler-comparison runs used by Figures 4, 5 and 6.

The three comparison figures all evaluate the same three policies --
SRPTMS+C (epsilon = 0.6, r = 3), SCA and Mantri -- on the same trace, so the
runs are performed once here and reused.  Extra reference policies (Fair,
FIFO, SRPT, LATE) can be included for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.core.srptms_c import SRPTMSCScheduler
from repro.experiments.config import ExperimentConfig
from repro.schedulers import (
    FIFOScheduler,
    FairScheduler,
    LATEScheduler,
    MantriScheduler,
    SCAScheduler,
    SRPTScheduler,
)
from repro.simulation.experiment_runner import ReplicatedResult, SchedulerSpec
from repro.simulation.scheduler_api import Scheduler
from repro.workload.trace import Trace

__all__ = ["scheduler_factories", "run_scheduler_comparison"]


def scheduler_factories(
    config: ExperimentConfig, include_extra: bool = False
) -> Dict[str, Callable[[], Scheduler]]:
    """Factories for the paper's three compared policies (plus extras).

    The dictionary order is the order rows appear in reports: the paper's
    algorithm first, then the two baselines it is compared against.  Every
    factory is a picklable :class:`SchedulerSpec`, so comparisons can fan
    out over worker processes.
    """
    factories: Dict[str, Callable[[], Scheduler]] = {
        "SRPTMS+C": SchedulerSpec(
            SRPTMSCScheduler, {"epsilon": config.epsilon, "r": config.r}
        ),
        "SCA": SchedulerSpec(SCAScheduler),
        "Mantri": SchedulerSpec(MantriScheduler),
    }
    if include_extra:
        factories.update(
            {
                "LATE": SchedulerSpec(LATEScheduler),
                "SRPT": SchedulerSpec(SRPTScheduler, {"r": config.r}),
                "Fair": SchedulerSpec(FairScheduler),
                "FIFO": SchedulerSpec(FIFOScheduler),
            }
        )
    return factories


def run_scheduler_comparison(
    config: Optional[ExperimentConfig] = None,
    *,
    trace: Optional[Trace] = None,
    include_extra: bool = False,
    schedulers: Optional[Sequence[str]] = None,
) -> Dict[str, ReplicatedResult]:
    """Run the Figure 4/5/6 comparison and return results keyed by policy name.

    Parameters
    ----------
    config:
        Experiment configuration (defaults to the scaled benchmark config).
    trace:
        Pre-generated trace to reuse; generated from ``config`` otherwise.
    include_extra:
        Also run the additional reference policies (LATE, SRPT, Fair, FIFO).
    schedulers:
        Optional subset of policy names to run.

    A thin wrapper over the ``scheduler-comparison``
    :class:`~repro.study.core.Study` (:mod:`repro.study.presets`), whose
    scheduler axis carries the compared policies.
    """
    from repro.study.presets import compute_comparison

    return compute_comparison(
        config, trace=trace, include_extra=include_extra, schedulers=schedulers
    )
