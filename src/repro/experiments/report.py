"""Plain-text rendering: one generic column renderer for every report.

All tabular experiment output -- the figure sweep tables, the CDF tables
(:mod:`repro.analysis.cdf`), the scenario sweep and the generic
``repro-mapreduce sweep`` report -- renders through :func:`render_columns`:
one row per x value, one right-aligned numeric column per series.  The
thin wrappers (:func:`render_sweep_table`, the CDF table) just pick widths
and formats; :func:`render_resultset` renders a whole tidy
:class:`~repro.study.resultset.ResultSet` (coordinates as leading columns,
seed axis collapsed to statistics), which is what spec-file sweeps print.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "render_columns",
    "render_sweep_table",
    "render_key_values",
    "render_resultset",
]


def _default_x_format(value) -> str:
    return f"{value:g}" if isinstance(value, (int, float)) else str(value)


def render_columns(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    *,
    title: str = "",
    precision: int = 1,
    column_width: int = 24,
    x_width: Optional[int] = None,
    x_format: Optional[Callable[[object], str]] = None,
) -> str:
    """The generic column table: one row per x value, one column per series.

    Every report table in the repository is an instance of this shape;
    the wrappers below only choose widths and x formatting.
    """
    names = list(series.keys())
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )
    if x_width is None:
        x_width = max(12, len(x_label) + 2)
    if x_format is None:
        x_format = _default_x_format
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{x_label:>{x_width}}  " + "  ".join(
        f"{name:>{column_width}}" for name in names
    )
    lines.append(header)
    for index, x in enumerate(x_values):
        row = f"{x_format(x):>{x_width}}  " + "  ".join(
            f"{series[name][index]:>{column_width}.{precision}f}" for name in names
        )
        lines.append(row)
    return "\n".join(lines)


def render_sweep_table(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    title: str = "",
    precision: int = 1,
) -> str:
    """Render a parameter sweep as a text table.

    One row per ``x_values`` entry, one column per series (e.g. unweighted
    and weighted mean flowtime), mirroring the data behind a line plot.
    """
    return render_columns(
        x_label, x_values, series, title=title, precision=precision
    )


def render_key_values(pairs: Dict[str, object], title: str = "") -> str:
    """Render label/value pairs aligned on the label column."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not pairs:
        return "\n".join(lines)
    width = max(len(str(key)) for key in pairs)
    for key, value in pairs.items():
        lines.append(f"{str(key):<{width}}  {value}")
    return "\n".join(lines)


def render_resultset(
    results,
    *,
    title: str = "",
    metrics: Sequence = ("mean_flowtime", "weighted_mean_flowtime"),
    over: str = "seed",
    stats: Sequence[str] = ("mean",),
    precision: int = 1,
) -> str:
    """Render a tidy :class:`~repro.study.resultset.ResultSet` as a table.

    The ``over`` axis (seeds, by default) is collapsed into the requested
    statistics via :meth:`~repro.study.resultset.ResultSet.aggregate`; the
    remaining axes become leading, left-aligned coordinate columns, one
    row per cell of the product.
    """
    if not len(results):
        return title or "(empty result set)"
    rows = results.aggregate(metrics, over=over, stats=stats)
    coord_columns = [axis for axis in results.axis_names if axis != over]
    value_columns = [column for column in rows[0] if column not in coord_columns]
    rendered: Dict[str, List[str]] = {}
    for column in coord_columns:
        rendered[column] = [_default_x_format(row[column]) for row in rows]
    for column in value_columns:
        rendered[column] = [f"{row[column]:.{precision}f}" for row in rows]
    widths = {
        column: max(len(column), *(len(text) for text in rendered[column]))
        for column in rendered
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header_cells = [f"{column:<{widths[column]}}" for column in coord_columns]
    header_cells += [f"{column:>{widths[column]}}" for column in value_columns]
    lines.append("  ".join(header_cells).rstrip())
    for index in range(len(rows)):
        cells = [
            f"{rendered[column][index]:<{widths[column]}}"
            for column in coord_columns
        ]
        cells += [
            f"{rendered[column][index]:>{widths[column]}}"
            for column in value_columns
        ]
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)
