"""Plain-text rendering helpers shared by the experiment reports."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_sweep_table", "render_key_values"]


def render_sweep_table(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    title: str = "",
    precision: int = 1,
) -> str:
    """Render a parameter sweep as a text table.

    One row per ``x_values`` entry, one column per series (e.g. unweighted
    and weighted mean flowtime), mirroring the data behind a line plot.
    """
    names = list(series.keys())
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max(12, len(x_label) + 2)
    header = f"{x_label:>{width}}  " + "  ".join(f"{name:>24}" for name in names)
    lines.append(header)
    for index, x in enumerate(x_values):
        x_text = f"{x:g}" if isinstance(x, (int, float)) else str(x)
        row = f"{x_text:>{width}}  " + "  ".join(
            f"{series[name][index]:>24.{precision}f}" for name in names
        )
        lines.append(row)
    return "\n".join(lines)


def render_key_values(pairs: Dict[str, object], title: str = "") -> str:
    """Render label/value pairs aligned on the label column."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not pairs:
        return "\n".join(lines)
    width = max(len(str(key)) for key in pairs)
    for key, value in pairs.items():
        lines.append(f"{str(key):<{width}}  {value}")
    return "\n".join(lines)
