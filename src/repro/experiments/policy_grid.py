"""Policy-grid experiment: novel policy compositions vs SRPTMS+C.

The policy kernel (:mod:`repro.policies`) splits every scheduler into
ordering x allocation x redundancy; only seven cells of that grid existed
as historical schedulers.  This driver sweeps a dozen *novel* cells --
e.g. SRPT ordering with LATE speculation, FIFO with paper cloning, fair
sharing with Mantri under epsilon shares -- against the paper's SRPTMS+C
across cluster scenarios (homogeneous, uniform-heterogeneous,
Zipf-heterogeneous), and reports which compositions beat SRPTMS+C under
which scenario.  The sweep itself is the ``policy-grid``
:class:`~repro.study.core.Study` preset, so spec files and the results
cache apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_columns

__all__ = [
    "PolicyGridResult",
    "run_policy_grid",
    "DEFAULT_GRID",
    "DEFAULT_GRID_SCENARIOS",
    "REFERENCE_SCHEDULER",
]

#: The novel ordering+allocation+redundancy compositions the grid sweeps
#: (none of these existed as a monolithic scheduler; the seven legacy
#: cells are in :data:`repro.policies.NAMED_COMPOSITIONS`).
DEFAULT_GRID: Tuple[str, ...] = (
    "srpt+greedy+clone",
    "srpt+greedy+late",
    "srpt+greedy+mantri",
    "srpt+share+none",
    "srpt+share+late",
    "srpt+share+sca",
    "fifo+greedy+clone",
    "fifo+greedy+late",
    "fifo+share+clone",
    "fair+greedy+clone",
    "fair+share+clone",
    "fair+share+mantri",
)

#: Scenario presets the grid is evaluated under.
DEFAULT_GRID_SCENARIOS: Tuple[str, ...] = (
    "none",
    "uniform-hetero",
    "zipf-hetero",
)

#: The paper's scheduler, the yardstick every composition is compared to.
REFERENCE_SCHEDULER = "SRPTMS+C"


@dataclass(frozen=True)
class PolicyGridResult:
    """Per-scenario flowtimes of every composition and the reference."""

    scenarios: Tuple[str, ...]
    compositions: Tuple[str, ...]
    reference: str
    #: ``mean_flowtimes[scenario][name]`` -- replication-mean flowtime.
    mean_flowtimes: Dict[str, Dict[str, float]]
    #: ``weighted_mean_flowtimes[scenario][name]`` -- weighted counterpart.
    weighted_mean_flowtimes: Dict[str, Dict[str, float]]
    #: ``redundant_copies[scenario][name]`` -- replication-mean redundant
    #: copies launched (clones + speculative duplicates).
    redundant_copies: Dict[str, Dict[str, float]]

    def advantage(self, scenario: str, name: str) -> float:
        """Percent mean-flowtime reduction of ``name`` vs the reference."""
        reference = self.mean_flowtimes[scenario][self.reference]
        value = self.mean_flowtimes[scenario][name]
        return 100.0 * (reference - value) / reference

    def winners(self, scenario: str) -> List[str]:
        """Compositions beating the reference, best advantage first."""
        ahead = [
            name
            for name in self.compositions
            if self.mean_flowtimes[scenario][name]
            < self.mean_flowtimes[scenario][self.reference]
        ]
        return sorted(ahead, key=lambda name: -self.advantage(scenario, name))

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        names = (self.reference,) + self.compositions
        blocks: List[str] = []
        for scenario in self.scenarios:
            series: Dict[str, Sequence[float]] = {
                "mean flowtime": [
                    self.mean_flowtimes[scenario][name] for name in names
                ],
                "weighted mean": [
                    self.weighted_mean_flowtimes[scenario][name] for name in names
                ],
                "vs SRPTMS+C (%)": [
                    self.advantage(scenario, name) for name in names
                ],
                "redundant copies": [
                    self.redundant_copies[scenario][name] for name in names
                ],
            }
            table = render_columns(
                "policy",
                list(names),
                series,
                title=f"Policy grid -- scenario: {scenario}",
                precision=1,
                column_width=18,
                x_width=24,
            )
            winners = self.winners(scenario)
            verdict = (
                "beats SRPTMS+C: " + ", ".join(winners)
                if winners
                else "beats SRPTMS+C: (none)"
            )
            blocks.append(table + "\n" + verdict)
        footer = (
            "policy = <ordering>+<allocation>+<redundancy> "
            "(repro.policies); vs SRPTMS+C (%) = mean-flowtime reduction "
            "relative to the paper's scheduler, positive is better"
        )
        blocks.append(footer)
        return "\n\n".join(blocks)


def run_policy_grid(
    config: Optional[ExperimentConfig] = None,
    *,
    grid: Sequence[str] = DEFAULT_GRID,
    scenarios: Sequence[str] = DEFAULT_GRID_SCENARIOS,
) -> PolicyGridResult:
    """Sweep the composition grid across scenarios and compare to SRPTMS+C.

    A thin wrapper over the ``policy-grid`` :class:`~repro.study.core.Study`
    preset (:mod:`repro.study.presets`): one axes product of
    ``(reference + grid) x scenarios x seeds`` through a single
    :meth:`~repro.study.core.Study.run` call, so ``config.workers`` and the
    results cache apply with bit-identical results.
    """
    from repro.study.presets import compute_policy_grid

    config = config if config is not None else ExperimentConfig.default_bench()
    if not grid:
        raise ValueError("the composition grid needs at least one entry")
    if not scenarios:
        raise ValueError("at least one scenario is required")
    return compute_policy_grid(config, grid=tuple(grid), scenarios=tuple(scenarios))
