"""Figure 3 -- SRPTMS+C flowtime as a function of the cluster size.

The paper scales the cluster from 6K to 12K machines (epsilon = 0.6, r = 3)
and observes a knee around 8K machines: beyond that point the cluster has
enough spare capacity to clone the small jobs, and adding machines brings no
further flowtime reduction.  The reproduction sweeps the same *fractions* of
the full cluster so the experiment works at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_sweep_table

__all__ = ["Figure3Result", "run_figure3", "DEFAULT_MACHINE_FRACTIONS"]

#: The paper's Figure 3 x-axis (6K..12K machines) expressed as fractions of 12K.
DEFAULT_MACHINE_FRACTIONS: Tuple[float, ...] = (
    0.5,
    0.5833,
    0.6667,
    0.75,
    0.8333,
    0.9167,
    1.0,
)


@dataclass(frozen=True)
class Figure3Result:
    """Flowtime metrics for each cluster size."""

    machine_counts: Tuple[int, ...]
    mean_flowtimes: Tuple[float, ...]
    weighted_mean_flowtimes: Tuple[float, ...]
    epsilon: float
    r: float

    @property
    def knee_machine_count(self) -> int:
        """Smallest cluster whose unweighted flowtime is within 10% of the largest's."""
        reference = self.mean_flowtimes[-1]
        for count, value in zip(self.machine_counts, self.mean_flowtimes):
            if value <= 1.10 * reference:
                return count
        return self.machine_counts[-1]

    def render(self) -> str:
        """Human-readable report of this experiment's results."""
        table = render_sweep_table(
            "machines",
            list(self.machine_counts),
            {
                "Average job flowtime (s)": list(self.mean_flowtimes),
                "Weighted average flowtime (s)": list(self.weighted_mean_flowtimes),
            },
            title=(
                "Figure 3 -- flowtime vs cluster size under SRPTMS+C "
                f"(epsilon={self.epsilon:g}, r={self.r:g})"
            ),
        )
        return table + (
            f"\nknee: {self.knee_machine_count} machines already within 10% of the "
            f"largest cluster's flowtime"
        )


def run_figure3(
    config: Optional[ExperimentConfig] = None,
    machine_fractions: Sequence[float] = DEFAULT_MACHINE_FRACTIONS,
) -> Figure3Result:
    """Sweep the cluster size for SRPTMS+C and collect both flowtime averages.

    A thin wrapper over the ``figure3`` :class:`~repro.study.core.Study`
    preset (:mod:`repro.study.presets`), whose ``machine_fraction`` axis
    scales the study's base cluster per point.
    """
    from repro.study.presets import compute_figure3

    config = config if config is not None else ExperimentConfig.default_bench()
    if not machine_fractions:
        raise ValueError("machine_fractions must not be empty")
    if any(fraction <= 0 for fraction in machine_fractions):
        raise ValueError("machine fractions must be positive")
    return compute_figure3(config, machine_fractions=machine_fractions)
